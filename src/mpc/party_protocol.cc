#include "mpc/party_protocol.h"

#include <algorithm>
#include <chrono>
#include <numeric>

#include "core/logging.h"
#include "mpc/beaver.h"
#include "obs/trace.h"

namespace sqm {
namespace {

/// Replays the driver's per-party Split sequence and keeps stream `me`:
/// BgwProtocol's constructor does root.Split(j) for j = 0..n-1 in order,
/// and each Split consumes parent draws, so the prefix must be consumed
/// identically for stream `me` to match the driver's party_rngs_[me].
Rng DeriveMyStream(uint64_t seed, size_t me) {
  Rng root(seed);
  for (size_t j = 0; j < me; ++j) {
    (void)root.Split(j);
  }
  return root.Split(me);
}

/// Resume-barrier marker words. Both exceed the field modulus 2^61 - 1, so
/// no share or opening payload can contain them; census votes are size-1
/// payloads and markers are size-3, so those cannot collide either.
constexpr uint64_t kRecoveryMagic0 = 0x53514d5245434f56ULL;  // "SQMRECOV"
constexpr uint64_t kRecoveryMagic1 = 0xfa11bacca5e00001ULL;

}  // namespace

PartyProtocol::PartyProtocol(ShamirScheme scheme, Transport* transport,
                             uint64_t seed, size_t me)
    : scheme_(std::move(scheme)),
      network_(transport),
      me_(me),
      my_rng_(DeriveMyStream(seed, me)) {
  SQM_CHECK(network_ != nullptr);
  SQM_CHECK(network_->num_parties() == scheme_.num_parties());
  SQM_CHECK(me_ < scheme_.num_parties());
  SQM_CHECK(scheme_.num_parties() <= 64);  // Census masks are one u64.
  std::vector<size_t> all(2 * scheme_.threshold() + 1);
  std::iota(all.begin(), all.end(), 0);
  degree2t_lagrange_ = scheme_.LagrangeAtZero(all);
}

void PartyProtocol::EndRound() {
  if (round_fn_) {
    round_fn_();
  } else {
    network_->EndRound();
  }
}

bool PartyProtocol::IsRecoveryMarker(const Transport::Payload& payload) {
  return payload.size() == 3 && payload[0] == kRecoveryMagic0 &&
         payload[1] == kRecoveryMagic1;
}

Result<Transport::Payload> PartyProtocol::RecvData(size_t from) {
  for (;;) {
    Result<Transport::Payload> received = network_->Receive(from, me_);
    if (!received.ok()) return received;
    if (recovery_mode_ && IsRecoveryMarker(received.ValueOrDie())) {
      // A peer that left the resume barrier before us pushed one final
      // marker round into this phase; it carries no protocol data.
      continue;
    }
    return received;
  }
}

void PartyProtocol::RecordRecvFailure(size_t party, StatusCode code) {
  // Under recovery, declaring a party dead is the TRANSPORT's call alone:
  // a receive timeout fails the level (the full-quorum census turns it
  // into a resume barrier) but must not kill the peer — it may be seconds
  // from a supervised rejoin, and the timeout-count heuristic would
  // declare it dead before its reconnect + rejoin window is anywhere near
  // spent. kUnavailable IS that window expiring, i.e. positive death.
  if (recovery_mode_ && code != StatusCode::kUnavailable) return;
  liveness_->RecordFailure(party, code);
}

Result<PartyProtocol::Shares> PartyProtocol::ShareFromParty(
    size_t dealer, const std::vector<Field::Element>& values, size_t count,
    const std::string& phase_label) {
  const size_t n = num_parties();
  SQM_CHECK(dealer < n);
  if (liveness_ != nullptr && PartyDead(dealer)) {
    return Status::Unavailable("input sharing impossible: dealer party " +
                               std::to_string(dealer) + " is dead");
  }
  PhaseScope phase(network_, phase_label);
  obs::Span span("bgw.share", "mpc", static_cast<int32_t>(me_));
  span.AddArg("party", static_cast<int64_t>(dealer));
  span.AddArg("elements", static_cast<int64_t>(count));
  if (dealer == me_) {
    SQM_CHECK(values.size() == count);
    std::vector<std::vector<Field::Element>> outbound =
        scheme_.ShareBatch(values, my_rng_);
    for (size_t j = 0; j < n; ++j) {
      if (liveness_ != nullptr && j != me_ && PartyDead(j)) continue;
      network_->Send(me_, j, std::move(outbound[j]));
    }
  }
  EndRound();

  Result<Transport::Payload> received = RecvData(dealer);
  if (!received.ok()) {
    if (liveness_ != nullptr) {
      RecordRecvFailure(dealer, received.status().code());
      return Status::Unavailable(
          "input sharing from party " + std::to_string(dealer) + " failed (" +
          received.status().message() +
          "); inputs cannot be reconstructed by a quorum");
    }
    return received.status();
  }
  if (received.ValueOrDie().size() != count) {
    if (recovery_mode_) {
      // Lost-frame skew (see MulQuorum): fail the phase retryably so the
      // resume barrier can flush and redo it, instead of treating the
      // dealer's next frame as a forgery.
      return Status::Unavailable(
          "input dealing from party " + std::to_string(dealer) +
          " skewed by a lost frame (" +
          std::to_string(received.ValueOrDie().size()) + " elements, " +
          "expected " + std::to_string(count) + "); retry via barrier");
    }
    return Status::IntegrityViolation(
        "input dealing from party " + std::to_string(dealer) + " has " +
        std::to_string(received.ValueOrDie().size()) +
        " elements, expected " + std::to_string(count));
  }
  if (liveness_ != nullptr) liveness_->RecordSuccess(dealer);
  return std::move(received).ValueOrDie();
}

PartyProtocol::Shares PartyProtocol::SharePublic(
    const std::vector<Field::Element>& values) const {
  // Degree-0 sharing: every party's share is the value itself.
  return values;
}

Result<PartyProtocol::Shares> PartyProtocol::Add(const Shares& a,
                                                 const Shares& b) const {
  if (a.size() != b.size()) {
    return Status::InvalidArgument("Add: shape mismatch");
  }
  Shares out(a.size());
  Field::AddVec(a.data(), b.data(), out.data(), a.size());
  return out;
}

Result<PartyProtocol::Shares> PartyProtocol::Sub(const Shares& a,
                                                 const Shares& b) const {
  if (a.size() != b.size()) {
    return Status::InvalidArgument("Sub: shape mismatch");
  }
  Shares out(a.size());
  Field::SubVec(a.data(), b.data(), out.data(), a.size());
  return out;
}

PartyProtocol::Shares PartyProtocol::ScaleConst(const Shares& a,
                                                Field::Element c) const {
  Shares out(a.size());
  Field::ScaleVec(a.data(), c, out.data(), a.size());
  return out;
}

Result<PartyProtocol::Shares> PartyProtocol::Mul(const Shares& a,
                                                 const Shares& b) {
  if (a.size() != b.size()) {
    return Status::InvalidArgument("Mul: shape mismatch");
  }
  if (beaver_pool_ != nullptr) return MulBeaver(a, b);
  if (liveness_ != nullptr) return MulQuorum(a, b);
  const size_t n = num_parties();
  const size_t k = a.size();
  PhaseScope phase(network_, "mul");
  obs::Span span("bgw.mul", "mpc", static_cast<int32_t>(me_));
  span.AddArg("elements", static_cast<int64_t>(k));

  // Local product batch (shares of a degree-2t sharing), re-shared at
  // degree t with this party's driver-identical randomness stream.
  std::vector<Field::Element> products(k);
  Field::MulVec(a.data(), b.data(), products.data(), k);
  std::vector<std::vector<Field::Element>> outbound =
      scheme_.ShareBatch(products, my_rng_);
  for (size_t r = 0; r < n; ++r) {
    network_->Send(me_, r, std::move(outbound[r]));
  }
  EndRound();

  // Recombine the first 2t+1 dealers with the precomputed degree-2t
  // weights; later dealers' batches are received and discarded, exactly as
  // in the driver.
  const size_t needed = 2 * scheme_.threshold() + 1;
  Shares out(k, 0);
  for (size_t j = 0; j < n; ++j) {
    SQM_ASSIGN_OR_RETURN(const std::vector<Field::Element> received,
                         RecvData(j));
    if (received.size() != k) {
      return Status::IntegrityViolation(
          "Mul sub-share batch from dealer " + std::to_string(j) +
          " to party " + std::to_string(me_) + " has " +
          std::to_string(received.size()) + " elements, expected " +
          std::to_string(k) + " (replayed or stale message)");
    }
    if (j >= needed) continue;
    Field::MulAddVec(out.data(), received.data(), degree2t_lagrange_[j], k);
  }
  return out;
}

Result<PartyProtocol::Shares> PartyProtocol::MulQuorum(const Shares& a,
                                                       const Shares& b) {
  const size_t n = num_parties();
  const size_t k = a.size();
  const size_t needed = 2 * scheme_.threshold() + 1;
  PhaseScope phase(network_, "mul");
  obs::Span span("bgw.mul", "mpc", static_cast<int32_t>(me_));
  span.AddArg("elements", static_cast<int64_t>(k));
  span.AddArg("quorum", 1);

  // Deal to the parties this party believes alive.
  {
    std::vector<Field::Element> products(k);
    Field::MulVec(a.data(), b.data(), products.data(), k);
    std::vector<std::vector<Field::Element>> outbound =
        scheme_.ShareBatch(products, my_rng_);
    for (size_t r = 0; r < n; ++r) {
      if (r != me_ && PartyDead(r)) continue;
      network_->Send(me_, r, std::move(outbound[r]));
    }
  }
  EndRound();

  // Collect sub-share batches; the receipt bitmask is this party's census
  // vote.
  uint64_t my_mask = 0;
  std::vector<std::vector<Field::Element>> payloads(n);
  for (size_t j = 0; j < n; ++j) {
    if (PartyDead(j)) continue;
    Result<Transport::Payload> received = RecvData(j);
    if (!received.ok()) {
      RecordRecvFailure(j, received.status().code());
      if (obs::Enabled()) {
        obs::TraceEvent event;
        event.name = "bgw.mul.dealer_failed";
        event.category = "mpc";
        event.AddArg("dealer", static_cast<int64_t>(j));
        event.AddArg("recipient", static_cast<int64_t>(me_));
        obs::Tracer::Global().Instant(event);
      }
      continue;
    }
    if (received.ValueOrDie().size() != k) {
      if (recovery_mode_) {
        // Not an attack: when chaos (or a crash) eats the dealer's batch
        // and the link comes back, the dealer's NEXT frame — typically its
        // census vote — arrives where the batch was expected. Consuming it
        // keeps this channel aligned with the dealer's send stream, and
        // leaving dealer j out of my_mask makes the census fail the level
        // for everyone; the resume barrier then flushes both sides.
        continue;
      }
      return Status::IntegrityViolation(
          "quorum Mul sub-share batch from dealer " + std::to_string(j) +
          " to party " + std::to_string(me_) + " has " +
          std::to_string(received.ValueOrDie().size()) +
          " elements, expected " + std::to_string(k) +
          " (replayed or stale message)");
    }
    payloads[j] = std::move(received).ValueOrDie();
    my_mask |= uint64_t{1} << j;
  }

  // Census round: every survivor broadcasts which dealers it received and
  // the intersection becomes the agreed dealer set. The driver gets this
  // agreement for free (one process sees every channel); distributed
  // parties must exchange it, or two survivors could recombine over
  // different dealer subsets and the result would not be a consistent
  // degree-t sharing. A voter that fails to deliver its mask is treated as
  // failed for this round and excluded from the electorate.
  uint64_t agreed = my_mask;
  size_t voters = 0;
  {
    PhaseScope census_phase(network_, "census");
    for (size_t r = 0; r < n; ++r) {
      if (r != me_ && PartyDead(r)) continue;
      network_->Send(me_, r, Transport::Payload{my_mask});
    }
    EndRound();
    for (size_t r = 0; r < n; ++r) {
      if (PartyDead(r)) continue;
      Result<Transport::Payload> vote = RecvData(r);
      if (!vote.ok()) {
        RecordRecvFailure(r, vote.status().code());
        continue;
      }
      if (vote.ValueOrDie().size() != 1) {
        if (recovery_mode_) {
          // Mis-sized under recovery = the voter's stream lost a frame
          // upstream (see the batch-collect case above); excluding the
          // voter fails the full-quorum check below, which is the safe
          // symmetric outcome.
          continue;
        }
        return Status::IntegrityViolation(
            "census vote from party " + std::to_string(r) + " has " +
            std::to_string(vote.ValueOrDie().size()) +
            " elements, expected 1");
      }
      agreed &= vote.ValueOrDie()[0];
      ++voters;
    }
  }

  if (recovery_mode_) {
    // Full-quorum rule: every party not positively dead must have dealt to
    // everyone (agreed covers it) AND voted. Anything less fails the level
    // for EVERY party — the degraded-majority shortcut is forbidden, since
    // it would let survivors recombine a level the restarted party never
    // participated in and leave it permanently behind the resume barrier.
    // A party the transport positively declared dead (kUnavailable, i.e.
    // restarts exhausted) is excluded, which is exactly the escalation to
    // the classic degrade path.
    uint64_t full = 0;
    size_t alive = 0;
    for (size_t j = 0; j < n; ++j) {
      if (!PartyDead(j)) {
        full |= uint64_t{1} << j;
        ++alive;
      }
    }
    if (agreed != full || voters != alive) {
      return Status::Unavailable(
          "Mul full-quorum failure under recovery: census agreed 0x" +
          std::to_string(agreed) + " of expected 0x" + std::to_string(full) +
          ", " + std::to_string(voters) + "/" + std::to_string(alive) +
          " alive parties voted; failing the level for a resume barrier");
    }
  }

  std::vector<size_t> usable;
  for (size_t j = 0; j < n; ++j) {
    if ((agreed >> j) & 1) {
      usable.push_back(j);
      liveness_->RecordSuccess(j);
    }
  }
  if (usable.size() < needed) {
    return Status::Unavailable(
        "Mul quorum shortfall: degree-2t recombination needs 2t+1 = " +
        std::to_string(needed) + " dealers, only " +
        std::to_string(usable.size()) + " of " + std::to_string(n) +
        " agreed by census (dead: " + std::to_string(liveness_->num_dead()) +
        ")");
  }

  // First 2t+1 agreed dealers, fresh Lagrange weights for exactly those
  // evaluation points — the same selection rule as the driver's quorum
  // path, so degraded outputs equal the no-crash outputs.
  const std::vector<size_t> dealers(usable.begin(), usable.begin() + needed);
  const std::vector<Field::Element> weights = scheme_.LagrangeAtZero(dealers);
  Shares out(k, 0);
  for (size_t d = 0; d < dealers.size(); ++d) {
    Field::MulAddVec(out.data(), payloads[dealers[d]].data(), weights[d], k);
  }
  return out;
}

Result<std::vector<Field::Element>> PartyProtocol::Open(const Shares& a) {
  PhaseScope phase(network_, "open");
  return OpenInPhase(a);
}

Result<std::vector<Field::Element>> PartyProtocol::OpenInPhase(
    const Shares& a) {
  const size_t n = num_parties();
  obs::Span span("bgw.open", "mpc", static_cast<int32_t>(me_));
  span.AddArg("elements", static_cast<int64_t>(a.size()));
  for (size_t r = 0; r < n; ++r) {
    if (liveness_ != nullptr && r != me_ && PartyDead(r)) continue;
    network_->Send(me_, r, a);
  }
  EndRound();

  if (liveness_ == nullptr) {
    std::vector<std::vector<Field::Element>> all(n);
    for (size_t j = 0; j < n; ++j) {
      SQM_ASSIGN_OR_RETURN(all[j], RecvData(j));
      if (all[j].size() != a.size()) {
        return Status::IntegrityViolation(
            "opened broadcast from party " + std::to_string(j) + " has " +
            std::to_string(all[j].size()) + " elements, expected " +
            std::to_string(a.size()));
      }
    }
    return scheme_.ReconstructBatch(all);
  }

  // Quorum opening: collect whichever survivors deliver and interpolate
  // over their evaluation points. Any t+1 shares of a consistent sharing
  // agree on the value, so every party — and the driver — opens the same
  // plaintext regardless of which subset delivered to it.
  std::vector<bool> have(n, false);
  std::vector<std::vector<Field::Element>> all(n);
  std::vector<size_t> survivors;
  size_t expected = 0;
  for (size_t j = 0; j < n; ++j) {
    if (PartyDead(j)) continue;
    ++expected;
    Result<Transport::Payload> received = RecvData(j);
    if (!received.ok()) {
      RecordRecvFailure(j, received.status().code());
      continue;
    }
    if (received.ValueOrDie().size() != a.size()) {
      if (recovery_mode_) {
        // Same lost-frame skew as in MulQuorum: consume the stray frame
        // to realign with party j's send stream and count j undelivered,
        // which fails the full-quorum check below.
        continue;
      }
      return Status::IntegrityViolation(
          "opened broadcast from party " + std::to_string(j) + " has " +
          std::to_string(received.ValueOrDie().size()) +
          " elements, expected " + std::to_string(a.size()));
    }
    liveness_->RecordSuccess(j);
    have[j] = true;
    all[j] = std::move(received).ValueOrDie();
    survivors.push_back(j);
  }
  if (recovery_mode_ && survivors.size() != expected) {
    // Full-quorum rule, Open edition. The output opening is the LAST
    // exchange, so it is the one place a delivery asymmetry cannot
    // self-heal through the next level's census: any t+1 shares open the
    // same value, so parties that did receive enough would release and
    // exit while a party missing one broadcast fails alone, with nobody
    // left to answer its resume barrier. Failing the open for everyone
    // whenever any non-dead party did not deliver keeps the level-failure
    // decision symmetric (the laggard's own broadcast is late or its link
    // is mid-reconnect in BOTH directions), so all parties converge on
    // the barrier and re-open together.
    return Status::Unavailable(
        "open full-quorum failure under recovery: " +
        std::to_string(survivors.size()) + "/" + std::to_string(expected) +
        " non-dead parties delivered; failing for a resume barrier");
  }
  if (survivors.empty()) {
    return Status::Unavailable("open impossible: no broadcast delivered");
  }
  return scheme_.ReconstructBatchFromSurvivors(all, survivors,
                                               scheme_.threshold());
}

Result<PartyProtocol::Shares> PartyProtocol::MulBeaver(const Shares& a,
                                                       const Shares& b) {
  const size_t k = a.size();
  PhaseScope phase(network_, "mul");
  obs::Span span("bgw.mul", "mpc", static_cast<int32_t>(me_));
  span.AddArg("elements", static_cast<int64_t>(k));
  span.AddArg("beaver", 1);

  BeaverTriplePool::TripleBatch triples;
  SQM_ASSIGN_OR_RETURN(triples, beaver_pool_->Take(k));
  beaver_triples_used_ += k;
  const std::vector<Field::Element>& ta = triples.a.shares(me_);
  const std::vector<Field::Element>& tb = triples.b.shares(me_);
  const std::vector<Field::Element>& tc = triples.c.shares(me_);

  // One round: jointly open [x - a | y - b], packed so the batch costs a
  // single broadcast tagged to the "mul" phase. The opened values are
  // public, so even on the quorum path any t+1 survivor shares agree and
  // no census round is needed — this is where Beaver halves the per-Mul
  // round count relative to GRR's sub-share + census exchanges.
  Shares packed(2 * k);
  Field::SubVec(a.data(), ta.data(), packed.data(), k);
  Field::SubVec(b.data(), tb.data(), packed.data() + k, k);
  SQM_ASSIGN_OR_RETURN(const std::vector<Field::Element> opened,
                       OpenInPhase(packed));

  // [xy] = [c] + d*[b] + e*[a] + d*e, accumulated in the same order as the
  // driver's combine so releases are bit-identical across execution modes.
  const Field::Element* d = opened.data();
  const Field::Element* e = opened.data() + k;
  Shares out = tc;
  std::vector<Field::Element> term(k);
  Field::MulVec(d, tb.data(), term.data(), k);
  Field::AddVec(out.data(), term.data(), out.data(), k);
  Field::MulVec(e, ta.data(), term.data(), k);
  Field::AddVec(out.data(), term.data(), out.data(), k);
  Field::MulVec(d, e, term.data(), k);
  Field::AddVec(out.data(), term.data(), out.data(), k);
  return out;
}

Result<std::vector<int64_t>> PartyProtocol::OpenSigned(const Shares& a) {
  SQM_ASSIGN_OR_RETURN(const std::vector<Field::Element> opened, Open(a));
  return Field::DecodeVector(opened);
}

size_t PartyProtocol::DrainPending() {
  const size_t n = num_parties();
  size_t drained = 0;
  for (size_t j = 0; j < n; ++j) {
    while (network_->HasPending(j, me_)) {
      Result<Transport::Payload> stale = network_->Receive(j, me_);
      if (!stale.ok()) break;
      ++drained;
    }
  }
  return drained;
}

Result<uint64_t> PartyProtocol::ResumeBarrier(double deadline_seconds,
                                              uint64_t my_encoded_level) {
  SQM_CHECK(liveness_ != nullptr);
  const size_t n = num_parties();
  using Clock = std::chrono::steady_clock;
  const Clock::time_point deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(deadline_seconds));
  PhaseScope phase(network_, "recover");
  obs::Span span("bgw.resume_barrier", "mpc", static_cast<int32_t>(me_));
  span.AddArg("encoded_level", static_cast<int64_t>(my_encoded_level));

  const Transport::Payload marker{kRecoveryMagic0, kRecoveryMagic1,
                                  my_encoded_level};
  std::vector<bool> resolved(n, false);
  std::vector<bool> via_marker(n, false);
  uint64_t min_level = my_encoded_level;
  resolved[me_] = true;
  // Flush the self channel. Wire channels are flushed below by discarding
  // everything ahead of each peer's marker, but self-sends bypass the
  // wire: a level aborted between its self-send and the matching receive
  // (e.g. an integrity violation on an earlier dealer's batch) leaves the
  // self inbox misaligned, and every later receive on it would be off by
  // one frame. Between levels the self channel is empty by construction,
  // so anything pending here is stale.
  {
    size_t self_stale = 0;
    while (network_->HasPending(me_, me_)) {
      if (!network_->Receive(me_, me_).ok()) break;
      ++self_stale;
    }
    if (self_stale > 0) {
      SQM_LOG(kInfo) << "party " << me_ << " resume barrier: discarded "
                     << self_stale << " stale self-channel frame(s)";
    }
  }
  for (size_t j = 0; j < n; ++j) {
    if (j != me_ && PartyDead(j)) resolved[j] = true;  // Stays dead.
  }

  auto all_resolved = [&resolved] {
    for (size_t j = 0; j < resolved.size(); ++j) {
      if (!resolved[j]) return false;
    }
    return true;
  };

  // Resend/receive passes: each pass re-sends the marker to every
  // unresolved peer — a send to a down link vanishes, and a restarted
  // peer's link comes up at an unpredictable point inside the window, so
  // one send is never enough — then waits up to one transport
  // receive-timeout per unresolved peer. Stale pre-barrier payloads
  // arrive ahead of a peer's marker (links are FIFO) and are discarded
  // here, which is what flushes the in-flight state of the failed level.
  // Deliberately no EndRound inside the loop: the barrier is a recovery
  // exchange, not a protocol round, and passes are not synchronized
  // across parties.
  while (!all_resolved() && Clock::now() < deadline) {
    for (size_t j = 0; j < n; ++j) {
      if (!resolved[j]) network_->Send(me_, j, marker);
    }
    for (size_t j = 0; j < n; ++j) {
      if (resolved[j]) continue;
      Result<Transport::Payload> received = network_->Receive(j, me_);
      if (!received.ok()) {
        if (received.status().code() == StatusCode::kUnavailable) {
          // Positively dead: reconnect + rejoin window exhausted, i.e.
          // the supervisor's restarts for this peer are spent (or it was
          // never supervised).
          liveness_->MarkDead(j);
          resolved[j] = true;
        }
        continue;  // Timeout: retry on the next pass.
      }
      const Transport::Payload& payload = received.ValueOrDie();
      if (!IsRecoveryMarker(payload)) continue;  // Stale; discard.
      resolved[j] = true;
      via_marker[j] = true;
      min_level = std::min(min_level, payload[2]);
    }
  }

  size_t timed_out = 0;
  for (size_t j = 0; j < n; ++j) {
    if (!resolved[j]) {
      liveness_->MarkDead(j);
      ++timed_out;
    }
  }
  // Marker-resolved peers proved themselves alive at this barrier. The
  // levels from min_level on are redone by everyone, so reviving them
  // cannot mix a pre-crash share of theirs into any quorum.
  for (size_t j = 0; j < n; ++j) {
    if (via_marker[j]) liveness_->Revive(j);
  }
  // One final marker round to the peers that answered: a peer whose link
  // only just came up may have missed every earlier send (dropped on the
  // down link) yet already delivered ITS marker to us — without this
  // round it would sit at its own barrier until its deadline. Peers that
  // already moved on discard the extra marker at their receive sites.
  for (size_t j = 0; j < n; ++j) {
    if (via_marker[j]) network_->Send(me_, j, marker);
  }
  SQM_LOG(kInfo) << "party " << me_ << " resume barrier done: min level code "
                 << min_level << ", " << timed_out
                 << " peer(s) timed out and declared dead, "
                 << liveness_->num_alive() << "/" << n << " alive";
  return min_level;
}

PartyEngine::PartyEngine(ShamirScheme scheme, Transport* network,
                         uint64_t seed, size_t me)
    : protocol_(std::move(scheme), network, seed, me) {}

Result<PartyProtocol::Shares> PartyEngine::EvaluateToShares(
    const Circuit& circuit, const std::vector<int64_t>& my_inputs,
    PartyCheckpoint* checkpoint) {
  const size_t n = protocol_.num_parties();
  const size_t me = protocol_.me();
  SQM_RETURN_NOT_OK(circuit.Validate(n));
  if (my_inputs.size() != circuit.NumInputsForParty(me)) {
    return Status::InvalidArgument(
        "party " + std::to_string(me) + " supplied " +
        std::to_string(my_inputs.size()) + " inputs, circuit expects " +
        std::to_string(circuit.NumInputsForParty(me)));
  }

  PartyCheckpoint scratch;
  PartyCheckpoint* ckpt = checkpoint != nullptr ? checkpoint : &scratch;
  const bool resuming = ckpt->valid;
  const auto& gates = circuit.gates();

  obs::Span evaluate("bgw.evaluate", "mpc", static_cast<int32_t>(me));
  evaluate.AddArg("gates", static_cast<int64_t>(gates.size()));
  evaluate.AddArg("resuming", resuming ? 1 : 0);

  if (!resuming) {
    ckpt->next_level = 0;
    ckpt->mul_rounds_done = 0;
    ckpt->wire_shares.assign(gates.size(), 0);

    // Phase 1: one sharing round per contributing dealer, in party order —
    // the same schedule as the driver, with every other dealer's input
    // count read from the public circuit structure.
    for (size_t j = 0; j < n; ++j) {
      const size_t count = circuit.NumInputsForParty(j);
      if (count == 0) continue;
      std::vector<Field::Element> encoded;
      if (j == me) encoded = Field::EncodeVector(my_inputs);
      SQM_ASSIGN_OR_RETURN(
          const PartyProtocol::Shares shared,
          protocol_.ShareFromParty(j, encoded, count));
      for (size_t w = 0; w < gates.size(); ++w) {
        const Circuit::Gate& gate = gates[w];
        if (gate.kind == Circuit::GateKind::kInput && gate.owner == j) {
          ckpt->wire_shares[w] = shared[gate.input_index];
        }
      }
    }
    ckpt->valid = true;
    if (checkpoint_sink_) checkpoint_sink_(*ckpt);
  } else {
    SQM_CHECK(ckpt->wire_shares.size() == gates.size());
    // In recovery mode the resume barrier already flushed the failed
    // level's in-flight state, and a fast peer may ALREADY have dealt
    // fresh sub-shares for the redo level — draining here would eat them.
    if (!protocol_.recovery_mode()) protocol_.DrainPending();
  }

  std::vector<Field::Element>& shares = ckpt->wire_shares;

  // Phase 2: identical level schedule to BgwEngine — depth assignment and
  // wire order determine the message pattern, and both are pure functions
  // of the circuit.
  std::vector<size_t> depth(gates.size(), 0);
  size_t max_depth = 0;
  for (size_t i = 0; i < gates.size(); ++i) {
    const Circuit::Gate& gate = gates[i];
    switch (gate.kind) {
      case Circuit::GateKind::kInput:
      case Circuit::GateKind::kConstant:
        break;
      case Circuit::GateKind::kAdd:
      case Circuit::GateKind::kSub:
        depth[i] = std::max(depth[gate.lhs], depth[gate.rhs]);
        break;
      case Circuit::GateKind::kMulConst:
        depth[i] = depth[gate.lhs];
        break;
      case Circuit::GateKind::kMul:
        depth[i] = std::max(depth[gate.lhs], depth[gate.rhs]) + 1;
        break;
    }
    max_depth = std::max(max_depth, depth[i]);
  }

  for (size_t level = ckpt->next_level; level <= max_depth; ++level) {
    if (level > 0) {
      std::vector<size_t> mul_wires;
      for (size_t w = 0; w < gates.size(); ++w) {
        if (gates[w].kind == Circuit::GateKind::kMul && depth[w] == level) {
          mul_wires.push_back(w);
        }
      }
      if (!mul_wires.empty()) {
        if (mul_level_hook_) mul_level_hook_(level);
        PartyProtocol::Shares lhs(mul_wires.size());
        PartyProtocol::Shares rhs(mul_wires.size());
        for (size_t i = 0; i < mul_wires.size(); ++i) {
          lhs[i] = shares[gates[mul_wires[i]].lhs];
          rhs[i] = shares[gates[mul_wires[i]].rhs];
        }
        SQM_ASSIGN_OR_RETURN(const PartyProtocol::Shares products,
                             protocol_.Mul(lhs, rhs));
        for (size_t i = 0; i < mul_wires.size(); ++i) {
          shares[mul_wires[i]] = products[i];
        }
        ++ckpt->mul_rounds_done;
      }
    }
    for (size_t w = 0; w < gates.size(); ++w) {
      const Circuit::Gate& gate = gates[w];
      if (gate.kind == Circuit::GateKind::kMul ||
          gate.kind == Circuit::GateKind::kInput || depth[w] != level) {
        continue;
      }
      switch (gate.kind) {
        case Circuit::GateKind::kConstant:
          shares[w] = Field::Reduce(gate.constant);
          break;
        case Circuit::GateKind::kAdd:
          shares[w] = Field::Add(shares[gate.lhs], shares[gate.rhs]);
          break;
        case Circuit::GateKind::kSub:
          shares[w] = Field::Sub(shares[gate.lhs], shares[gate.rhs]);
          break;
        case Circuit::GateKind::kMulConst:
          shares[w] = Field::Mul(shares[gate.lhs],
                                 Field::Reduce(gate.constant));
          break;
        case Circuit::GateKind::kInput:
        case Circuit::GateKind::kMul:
          break;
      }
    }
    ckpt->next_level = level + 1;
    if (checkpoint_sink_) checkpoint_sink_(*ckpt);
  }

  PartyProtocol::Shares out(circuit.outputs().size());
  for (size_t i = 0; i < circuit.outputs().size(); ++i) {
    out[i] = shares[circuit.outputs()[i]];
  }
  return out;
}

Result<std::vector<int64_t>> PartyEngine::OpenOutputs(
    const PartyProtocol::Shares& out_shares) {
  return protocol_.OpenSigned(out_shares);
}

}  // namespace sqm
