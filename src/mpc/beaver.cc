#include "mpc/beaver.h"

#include "core/logging.h"
#include "mpc/field.h"
#include "obs/metrics.h"

namespace sqm {

BeaverTripleDealer::BeaverTripleDealer(ShamirScheme scheme, uint64_t seed)
    : scheme_(std::move(scheme)), rng_(seed) {}

BeaverTripleDealer::TripleShares BeaverTripleDealer::Deal() {
  const Field::Element a = rng_.NextBounded(Field::kModulus);
  const Field::Element b = rng_.NextBounded(Field::kModulus);
  const Field::Element c = Field::Mul(a, b);
  TripleShares shares;
  shares.a_shares = scheme_.Share(a, rng_);
  shares.b_shares = scheme_.Share(b, rng_);
  shares.c_shares = scheme_.Share(c, rng_);
  return shares;
}

std::vector<BeaverTripleDealer::TripleShares> BeaverTripleDealer::DealBatch(
    size_t count) {
  std::vector<TripleShares> batch;
  batch.reserve(count);
  for (size_t i = 0; i < count; ++i) batch.push_back(Deal());
  return batch;
}

BeaverTriplePool::BeaverTriplePool(ShamirScheme scheme, uint64_t seed,
                                   size_t capacity)
    : scheme_(std::move(scheme)),
      rng_(seed),
      a_rows_(scheme_.num_parties()),
      b_rows_(scheme_.num_parties()),
      c_rows_(scheme_.num_parties()) {
  DealInto(capacity);
}

void BeaverTriplePool::DealInto(size_t count) {
  const size_t n = scheme_.num_parties();
  for (size_t j = 0; j < n; ++j) {
    a_rows_[j].reserve(dealt_ + count);
    b_rows_[j].reserve(dealt_ + count);
    c_rows_[j].reserve(dealt_ + count);
  }
  // Same draw order as BeaverTripleDealer::Deal, so a pool and a dealer
  // with equal seeds produce byte-identical triple streams (pinned by
  // golden_stream_test).
  for (size_t i = 0; i < count; ++i) {
    const Field::Element a = rng_.NextBounded(Field::kModulus);
    const Field::Element b = rng_.NextBounded(Field::kModulus);
    const Field::Element c = Field::Mul(a, b);
    const std::vector<Field::Element> a_shares = scheme_.Share(a, rng_);
    const std::vector<Field::Element> b_shares = scheme_.Share(b, rng_);
    const std::vector<Field::Element> c_shares = scheme_.Share(c, rng_);
    for (size_t j = 0; j < n; ++j) {
      a_rows_[j].push_back(a_shares[j]);
      b_rows_[j].push_back(b_shares[j]);
      c_rows_[j].push_back(c_shares[j]);
    }
  }
  dealt_ += count;
  SQM_OBS_GAUGE_SET("mpc.beaver.pool_remaining", available());
}

Result<BeaverTriplePool::TripleBatch> BeaverTriplePool::Take(size_t count) {
  if (count > available()) {
    return Status::FailedPrecondition(
        "Beaver pool exhausted: online Mul needs " + std::to_string(count) +
        " triples, " + std::to_string(available()) + " of " +
        std::to_string(dealt_) + " remain; refusing to deal online "
        "(refill offline via Refill)");
  }
  const size_t n = scheme_.num_parties();
  TripleBatch batch;
  batch.a = SharedVector(n, count);
  batch.b = SharedVector(n, count);
  batch.c = SharedVector(n, count);
  for (size_t j = 0; j < n; ++j) {
    const auto begin = static_cast<std::ptrdiff_t>(cursor_);
    const auto end = static_cast<std::ptrdiff_t>(cursor_ + count);
    batch.a.shares(j).assign(a_rows_[j].begin() + begin,
                             a_rows_[j].begin() + end);
    batch.b.shares(j).assign(b_rows_[j].begin() + begin,
                             b_rows_[j].begin() + end);
    batch.c.shares(j).assign(c_rows_[j].begin() + begin,
                             c_rows_[j].begin() + end);
  }
  cursor_ += count;
  // Live pool depth for the fleet telemetry view (sqm-top's "pool" column
  // and fleet_metrics.json's beaver_pool_depth).
  SQM_OBS_GAUGE_SET("mpc.beaver.pool_remaining", available());
  return batch;
}

Status BeaverTriplePool::Refill(size_t count) {
  DealInto(count);
  return Status::OK();
}

Status BeaverTriplePool::Refill(size_t count,
                                const std::vector<size_t>& survivors) {
  const size_t needed = 2 * scheme_.threshold() + 1;
  size_t distinct = 0;
  std::vector<bool> seen(scheme_.num_parties(), false);
  for (size_t party : survivors) {
    if (party >= scheme_.num_parties() || seen[party]) continue;
    seen[party] = true;
    ++distinct;
  }
  if (distinct < needed) {
    return Status::FailedPrecondition(
        "Beaver refill refused: dealing degree-t triples that recombine "
        "under MulQuorum needs 2t+1 = " + std::to_string(needed) +
        " surviving dealers, have " + std::to_string(distinct));
  }
  return Refill(count);
}

BeaverMultiplier::BeaverMultiplier(BgwProtocol* protocol,
                                   BeaverTripleDealer* dealer)
    : protocol_(protocol), dealer_(dealer) {
  SQM_CHECK(protocol != nullptr && dealer != nullptr);
}

BeaverMultiplier::BeaverMultiplier(BgwProtocol* protocol,
                                   BeaverTriplePool* pool)
    : protocol_(protocol), pool_(pool) {
  SQM_CHECK(protocol != nullptr && pool != nullptr);
}

Result<SharedVector> BeaverMultiplier::Mul(const SharedVector& x,
                                           const SharedVector& y) {
  if (x.size() != y.size() || x.num_parties() != y.num_parties()) {
    return Status::InvalidArgument("Beaver Mul: shape mismatch");
  }
  const size_t n = protocol_->num_parties();
  const size_t k = x.size();
  BeaverTriplePool::TripleBatch batch;
  if (pool_ != nullptr) {
    SQM_ASSIGN_OR_RETURN(batch, pool_->Take(k));
  } else {
    // Legacy inline dealing: online timing includes the dealer's work.
    const std::vector<BeaverTripleDealer::TripleShares> triples =
        dealer_->DealBatch(k);
    batch.a = SharedVector(n, k);
    batch.b = SharedVector(n, k);
    batch.c = SharedVector(n, k);
    for (size_t j = 0; j < n; ++j) {
      for (size_t i = 0; i < k; ++i) {
        batch.a.shares(j)[i] = triples[i].a_shares[j];
        batch.b.shares(j)[i] = triples[i].b_shares[j];
        batch.c.shares(j)[i] = triples[i].c_shares[j];
      }
    }
  }
  triples_used_ += k;
  const SharedVector& a = batch.a;
  const SharedVector& b = batch.b;
  const SharedVector& c = batch.c;

  // One round: jointly open d = x - a and e = y - b (packed together so a
  // batch costs a single opening).
  SQM_ASSIGN_OR_RETURN(const SharedVector dx, protocol_->Sub(x, a));
  SQM_ASSIGN_OR_RETURN(const SharedVector ey, protocol_->Sub(y, b));
  SharedVector packed(n, 2 * k);
  for (size_t j = 0; j < n; ++j) {
    auto& dst = packed.shares(j);
    const auto& sx = dx.shares(j);
    const auto& sy = ey.shares(j);
    for (size_t i = 0; i < k; ++i) {
      dst[i] = sx[i];
      dst[k + i] = sy[i];
    }
  }
  const std::vector<Field::Element> opened = protocol_->Open(packed);

  // Local combination: [xy] = [c] + d*[b] + e*[a] + d*e, as three batched
  // multiply-accumulate sweeps over the opened (d, e) halves.
  const Field::Element* d = opened.data();
  const Field::Element* e = opened.data() + k;
  std::vector<Field::Element> de(k);
  Field::MulVec(d, e, de.data(), k);
  SharedVector out(n, k);
  std::vector<Field::Element> term(k);
  for (size_t j = 0; j < n; ++j) {
    auto& dst = out.shares(j);
    dst = c.shares(j);
    Field::MulVec(d, b.shares(j).data(), term.data(), k);
    Field::AddVec(dst.data(), term.data(), dst.data(), k);
    Field::MulVec(e, a.shares(j).data(), term.data(), k);
    Field::AddVec(dst.data(), term.data(), dst.data(), k);
    Field::AddVec(dst.data(), de.data(), dst.data(), k);
  }
  return out;
}

}  // namespace sqm
