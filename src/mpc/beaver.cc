#include "mpc/beaver.h"

#include "core/logging.h"
#include "mpc/field.h"

namespace sqm {

BeaverTripleDealer::BeaverTripleDealer(ShamirScheme scheme, uint64_t seed)
    : scheme_(std::move(scheme)), rng_(seed) {}

BeaverTripleDealer::TripleShares BeaverTripleDealer::Deal() {
  const Field::Element a = rng_.NextBounded(Field::kModulus);
  const Field::Element b = rng_.NextBounded(Field::kModulus);
  const Field::Element c = Field::Mul(a, b);
  TripleShares shares;
  shares.a_shares = scheme_.Share(a, rng_);
  shares.b_shares = scheme_.Share(b, rng_);
  shares.c_shares = scheme_.Share(c, rng_);
  return shares;
}

std::vector<BeaverTripleDealer::TripleShares> BeaverTripleDealer::DealBatch(
    size_t count) {
  std::vector<TripleShares> batch;
  batch.reserve(count);
  for (size_t i = 0; i < count; ++i) batch.push_back(Deal());
  return batch;
}

BeaverMultiplier::BeaverMultiplier(BgwProtocol* protocol,
                                   BeaverTripleDealer* dealer)
    : protocol_(protocol), dealer_(dealer) {
  SQM_CHECK(protocol != nullptr && dealer != nullptr);
}

Result<SharedVector> BeaverMultiplier::Mul(const SharedVector& x,
                                           const SharedVector& y) {
  if (x.size() != y.size() || x.num_parties() != y.num_parties()) {
    return Status::InvalidArgument("Beaver Mul: shape mismatch");
  }
  const size_t n = protocol_->num_parties();
  const size_t k = x.size();
  const std::vector<BeaverTripleDealer::TripleShares> triples =
      dealer_->DealBatch(k);
  triples_used_ += k;

  // Assemble [a], [b], [c] as SharedVectors.
  SharedVector a(n, k);
  SharedVector b(n, k);
  SharedVector c(n, k);
  for (size_t j = 0; j < n; ++j) {
    for (size_t i = 0; i < k; ++i) {
      a.shares(j)[i] = triples[i].a_shares[j];
      b.shares(j)[i] = triples[i].b_shares[j];
      c.shares(j)[i] = triples[i].c_shares[j];
    }
  }

  // One round: jointly open d = x - a and e = y - b (packed together so a
  // batch costs a single opening).
  SQM_ASSIGN_OR_RETURN(const SharedVector dx, protocol_->Sub(x, a));
  SQM_ASSIGN_OR_RETURN(const SharedVector ey, protocol_->Sub(y, b));
  SharedVector packed(n, 2 * k);
  for (size_t j = 0; j < n; ++j) {
    auto& dst = packed.shares(j);
    const auto& sx = dx.shares(j);
    const auto& sy = ey.shares(j);
    for (size_t i = 0; i < k; ++i) {
      dst[i] = sx[i];
      dst[k + i] = sy[i];
    }
  }
  const std::vector<Field::Element> opened = protocol_->Open(packed);

  // Local combination: [xy] = [c] + d*[b] + e*[a] + d*e.
  SharedVector out(n, k);
  for (size_t j = 0; j < n; ++j) {
    auto& dst = out.shares(j);
    for (size_t i = 0; i < k; ++i) {
      const Field::Element d = opened[i];
      const Field::Element e = opened[k + i];
      Field::Element acc = c.shares(j)[i];
      acc = Field::Add(acc, Field::Mul(d, b.shares(j)[i]));
      acc = Field::Add(acc, Field::Mul(e, a.shares(j)[i]));
      acc = Field::Add(acc, Field::Mul(d, e));
      dst[i] = acc;
    }
  }
  return out;
}

}  // namespace sqm
