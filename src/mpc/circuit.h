#ifndef SQM_MPC_CIRCUIT_H_
#define SQM_MPC_CIRCUIT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/status.h"
#include "mpc/field.h"

namespace sqm {

/// Arithmetic-circuit intermediate representation for the BGW engine.
///
/// Wires are created in topological order by the builder methods, so gate id
/// order is already a valid evaluation order. The engine schedules all
/// multiplications whose operands are ready into a single communication
/// round, so the number of rounds is the multiplicative depth plus the input
/// and output rounds.
class Circuit {
 public:
  using WireId = uint32_t;

  enum class GateKind : uint8_t {
    kInput,     ///< Private input owned by one party.
    kConstant,  ///< Public field constant.
    kAdd,       ///< lhs + rhs.
    kSub,       ///< lhs - rhs.
    kMulConst,  ///< lhs * public constant.
    kMul,       ///< lhs * rhs (interactive).
  };

  struct Gate {
    GateKind kind;
    WireId lhs = 0;
    WireId rhs = 0;
    Field::Element constant = 0;  ///< kConstant / kMulConst payload.
    size_t owner = 0;             ///< kInput: owning party.
    size_t input_index = 0;       ///< kInput: index into that party's inputs.
  };

  /// Declares a private input for `party`. Inputs are consumed from each
  /// party's input vector in declaration order.
  WireId AddInput(size_t party);

  /// Public constant wire.
  WireId AddConstant(Field::Element value);

  WireId AddAdd(WireId lhs, WireId rhs);
  WireId AddSub(WireId lhs, WireId rhs);
  WireId AddMulConst(WireId lhs, Field::Element constant);
  WireId AddMul(WireId lhs, WireId rhs);

  /// Marks a wire as a protocol output (opened to everyone at the end).
  void MarkOutput(WireId wire);

  const std::vector<Gate>& gates() const { return gates_; }
  const std::vector<WireId>& outputs() const { return outputs_; }

  size_t num_gates() const { return gates_.size(); }
  size_t num_multiplications() const { return num_mul_; }

  /// Number of inputs declared for `party`.
  size_t NumInputsForParty(size_t party) const;

  /// Longest chain of kMul gates — the protocol's round-depth driver.
  size_t MultiplicativeDepth() const;

  /// Structural sanity: wire references in range, outputs exist.
  Status Validate(size_t num_parties) const;

  std::string Summary() const;

 private:
  WireId Push(Gate gate);

  std::vector<Gate> gates_;
  std::vector<WireId> outputs_;
  size_t num_mul_ = 0;
};

}  // namespace sqm

#endif  // SQM_MPC_CIRCUIT_H_
