#include "mpc/ops.h"

#include "core/logging.h"
#include "mpc/field.h"

namespace sqm {

SecureOps::SecureOps(BgwProtocol* protocol) : protocol_(protocol) {
  SQM_CHECK(protocol != nullptr);
}

Result<std::vector<SharedVector>> SecureOps::ShareColumns(
    const std::vector<std::vector<int64_t>>& columns) {
  if (columns.size() != protocol_->num_parties()) {
    return Status::InvalidArgument(
        "ShareColumns: need exactly one column per party");
  }
  const size_t m = columns.empty() ? 0 : columns[0].size();
  std::vector<SharedVector> shared;
  shared.reserve(columns.size());
  for (size_t j = 0; j < columns.size(); ++j) {
    if (columns[j].size() != m) {
      return Status::InvalidArgument("ShareColumns: ragged columns");
    }
    shared.push_back(
        protocol_->ShareFromParty(j, Field::EncodeVector(columns[j])));
  }
  return shared;
}

Result<std::vector<int64_t>> SecureOps::NoisySum(
    const std::vector<std::vector<int64_t>>& contributions,
    const std::vector<std::vector<int64_t>>& noise_per_client) {
  const size_t parties = protocol_->num_parties();
  if (contributions.size() != parties ||
      noise_per_client.size() != parties) {
    return Status::InvalidArgument(
        "NoisySum: need one contribution and one noise vector per party");
  }
  const size_t d = contributions[0].size();
  SharedVector total(parties, d);
  for (size_t j = 0; j < parties; ++j) {
    if (contributions[j].size() != d || noise_per_client[j].size() != d) {
      return Status::InvalidArgument("NoisySum: ragged inputs");
    }
    // Each party inputs its contribution already perturbed by its own
    // noise share — one sharing per party, as in Algorithm 1.
    std::vector<int64_t> noisy = contributions[j];
    for (size_t t = 0; t < d; ++t) noisy[t] += noise_per_client[j][t];
    const SharedVector share =
        protocol_->ShareFromParty(j, Field::EncodeVector(noisy));
    SQM_ASSIGN_OR_RETURN(total, protocol_->Add(total, share));
  }
  return protocol_->OpenSigned(total);
}

Result<std::vector<int64_t>> SecureOps::NoisyCovarianceUpper(
    const std::vector<std::vector<int64_t>>& columns,
    const std::vector<std::vector<int64_t>>& noise_per_client) {
  const size_t n = protocol_->num_parties();
  if (columns.size() != n) {
    return Status::InvalidArgument(
        "NoisyCovarianceUpper: one column per client required");
  }
  const size_t m = columns[0].size();
  const size_t d = n * (n + 1) / 2;
  if (noise_per_client.size() != n) {
    return Status::InvalidArgument(
        "NoisyCovarianceUpper: one noise vector per client required");
  }
  for (const auto& noise : noise_per_client) {
    if (noise.size() != d) {
      return Status::InvalidArgument(
          "NoisyCovarianceUpper: noise must have n(n+1)/2 entries");
    }
  }

  SQM_ASSIGN_OR_RETURN(const std::vector<SharedVector> cols,
                       ShareColumns(columns));

  // Batch every pair product (i <= j, all m records) into one Mul round.
  SharedVector lhs(n, d * m);
  SharedVector rhs(n, d * m);
  {
    size_t offset = 0;
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i; j < n; ++j) {
        for (size_t party = 0; party < n; ++party) {
          const auto& ci = cols[i].shares(party);
          const auto& cj = cols[j].shares(party);
          auto& l = lhs.shares(party);
          auto& r = rhs.shares(party);
          for (size_t rrow = 0; rrow < m; ++rrow) {
            l[offset + rrow] = ci[rrow];
            r[offset + rrow] = cj[rrow];
          }
        }
        offset += m;
      }
    }
  }
  SQM_ASSIGN_OR_RETURN(const SharedVector products,
                       protocol_->Mul(lhs, rhs));

  // Local per-pair summation over the m records.
  SharedVector gram(n, d);
  for (size_t party = 0; party < n; ++party) {
    const auto& prod = products.shares(party);
    auto& out = gram.shares(party);
    for (size_t pair = 0; pair < d; ++pair) {
      out[pair] = Field::SumVec(prod.data() + pair * m, m);
    }
  }

  // Add the clients' noise shares (one sharing round per client).
  for (size_t j = 0; j < n; ++j) {
    const SharedVector noise = protocol_->ShareFromParty(
        j, Field::EncodeVector(noise_per_client[j]));
    SQM_ASSIGN_OR_RETURN(gram, protocol_->Add(gram, noise));
  }
  return protocol_->OpenSigned(gram);
}

Result<std::vector<int64_t>> SecureOps::NoisyLogisticGradient(
    const LogisticGradientInputs& inputs) {
  const size_t parties = protocol_->num_parties();
  const size_t d = inputs.feature_columns.size();
  if (parties != d + 1) {
    return Status::InvalidArgument(
        "NoisyLogisticGradient: need d feature clients + 1 label client");
  }
  const size_t m = inputs.labels.size();
  for (const auto& col : inputs.feature_columns) {
    if (col.size() != m) {
      return Status::InvalidArgument(
          "NoisyLogisticGradient: ragged feature columns");
    }
  }
  if (inputs.weights.size() != d) {
    return Status::InvalidArgument(
        "NoisyLogisticGradient: weights must have d entries");
  }
  if (inputs.noise_per_client.size() != parties) {
    return Status::InvalidArgument(
        "NoisyLogisticGradient: one noise vector per party required");
  }
  for (const auto& noise : inputs.noise_per_client) {
    if (noise.size() != d) {
      return Status::InvalidArgument(
          "NoisyLogisticGradient: noise must have d entries");
    }
  }

  // Share the private inputs: feature columns from clients 0..d-1, labels
  // from the label client d.
  std::vector<SharedVector> x_cols;
  x_cols.reserve(d);
  for (size_t j = 0; j < d; ++j) {
    x_cols.push_back(protocol_->ShareFromParty(
        j, Field::EncodeVector(inputs.feature_columns[j])));
  }
  const SharedVector y =
      protocol_->ShareFromParty(d, Field::EncodeVector(inputs.labels));

  // u_i = sum_j w-hat[j] * x-hat_{i,j}: public weights => local on shares.
  SharedVector u(parties, m);
  for (size_t j = 0; j < d; ++j) {
    const SharedVector scaled =
        protocol_->ScaleConst(x_cols[j], Field::Encode(inputs.weights[j]));
    SQM_ASSIGN_OR_RETURN(u, protocol_->Add(u, scaled));
  }

  // One batched multiplication round covering both product families:
  //   block 0..d-1   : u_i * x_{i,t}
  //   block d..2d-1  : y_i * x_{i,t}
  SharedVector lhs(parties, 2 * d * m);
  SharedVector rhs(parties, 2 * d * m);
  for (size_t party = 0; party < parties; ++party) {
    const auto& u_sh = u.shares(party);
    const auto& y_sh = y.shares(party);
    auto& l = lhs.shares(party);
    auto& r = rhs.shares(party);
    for (size_t t = 0; t < d; ++t) {
      const auto& x_sh = x_cols[t].shares(party);
      for (size_t i = 0; i < m; ++i) {
        l[t * m + i] = u_sh[i];
        r[t * m + i] = x_sh[i];
        l[(d + t) * m + i] = y_sh[i];
        r[(d + t) * m + i] = x_sh[i];
      }
    }
  }
  SQM_ASSIGN_OR_RETURN(const SharedVector products,
                       protocol_->Mul(lhs, rhs));

  // grad[t] = sum_i (c-hat x_{i,t} + (u x)_{i,t} + l-hat (y x)_{i,t}).
  const Field::Element c_hat = Field::Encode(inputs.half_coefficient);
  const Field::Element l_hat = Field::Encode(inputs.label_coefficient);
  SharedVector grad(parties, d);
  std::vector<Field::Element> row(m);
  for (size_t party = 0; party < parties; ++party) {
    const auto& prod = products.shares(party);
    auto& out = grad.shares(party);
    for (size_t t = 0; t < d; ++t) {
      const auto& x_sh = x_cols[t].shares(party);
      Field::ScaleVec(x_sh.data(), c_hat, row.data(), m);
      Field::AddVec(row.data(), prod.data() + t * m, row.data(), m);
      Field::MulAddVec(row.data(), prod.data() + (d + t) * m, l_hat, m);
      out[t] = Field::SumVec(row.data(), m);
    }
  }

  // Inject the per-client noise shares.
  for (size_t j = 0; j < parties; ++j) {
    const SharedVector noise = protocol_->ShareFromParty(
        j, Field::EncodeVector(inputs.noise_per_client[j]));
    SQM_ASSIGN_OR_RETURN(grad, protocol_->Add(grad, noise));
  }
  return protocol_->OpenSigned(grad);
}


Result<std::vector<int64_t>> SecureOps::NoisyLinearGradient(
    const LinearGradientInputs& inputs) {
  const size_t parties = protocol_->num_parties();
  const size_t d = inputs.feature_columns.size();
  if (parties != d + 1) {
    return Status::InvalidArgument(
        "NoisyLinearGradient: need d feature clients + 1 target client");
  }
  const size_t m = inputs.targets.size();
  for (const auto& col : inputs.feature_columns) {
    if (col.size() != m) {
      return Status::InvalidArgument(
          "NoisyLinearGradient: ragged feature columns");
    }
  }
  if (inputs.weights.size() != d ||
      inputs.noise_per_client.size() != parties) {
    return Status::InvalidArgument(
        "NoisyLinearGradient: weights must have d entries and noise one "
        "vector per party");
  }
  for (const auto& noise : inputs.noise_per_client) {
    if (noise.size() != d) {
      return Status::InvalidArgument(
          "NoisyLinearGradient: noise must have d entries");
    }
  }

  std::vector<SharedVector> x_cols;
  x_cols.reserve(d);
  for (size_t j = 0; j < d; ++j) {
    x_cols.push_back(protocol_->ShareFromParty(
        j, Field::EncodeVector(inputs.feature_columns[j])));
  }
  const SharedVector y =
      protocol_->ShareFromParty(d, Field::EncodeVector(inputs.targets));

  // u_i = <w-hat, x-hat_i>: local, public weights.
  SharedVector u(parties, m);
  for (size_t j = 0; j < d; ++j) {
    const SharedVector scaled =
        protocol_->ScaleConst(x_cols[j], Field::Encode(inputs.weights[j]));
    SQM_ASSIGN_OR_RETURN(u, protocol_->Add(u, scaled));
  }

  // One batched round: blocks [u * x_t] and [y * x_t].
  SharedVector lhs(parties, 2 * d * m);
  SharedVector rhs(parties, 2 * d * m);
  for (size_t party = 0; party < parties; ++party) {
    const auto& u_sh = u.shares(party);
    const auto& y_sh = y.shares(party);
    auto& l = lhs.shares(party);
    auto& r = rhs.shares(party);
    for (size_t t = 0; t < d; ++t) {
      const auto& x_sh = x_cols[t].shares(party);
      for (size_t i = 0; i < m; ++i) {
        l[t * m + i] = u_sh[i];
        r[t * m + i] = x_sh[i];
        l[(d + t) * m + i] = y_sh[i];
        r[(d + t) * m + i] = x_sh[i];
      }
    }
  }
  SQM_ASSIGN_OR_RETURN(const SharedVector products,
                       protocol_->Mul(lhs, rhs));

  const Field::Element t_hat = Field::Encode(inputs.target_coefficient);
  SharedVector grad(parties, d);
  std::vector<Field::Element> row(m);
  for (size_t party = 0; party < parties; ++party) {
    const auto& prod = products.shares(party);
    auto& out = grad.shares(party);
    for (size_t t = 0; t < d; ++t) {
      row.assign(prod.begin() + static_cast<std::ptrdiff_t>(t * m),
                 prod.begin() + static_cast<std::ptrdiff_t>((t + 1) * m));
      Field::MulAddVec(row.data(), prod.data() + (d + t) * m, t_hat, m);
      out[t] = Field::SumVec(row.data(), m);
    }
  }
  for (size_t j = 0; j < parties; ++j) {
    const SharedVector noise = protocol_->ShareFromParty(
        j, Field::EncodeVector(inputs.noise_per_client[j]));
    SQM_ASSIGN_OR_RETURN(grad, protocol_->Add(grad, noise));
  }
  return protocol_->OpenSigned(grad);
}

}  // namespace sqm
