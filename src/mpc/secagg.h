#ifndef SQM_MPC_SECAGG_H_
#define SQM_MPC_SECAGG_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "core/status.h"
#include "mpc/field.h"
#include "net/transport.h"

namespace sqm {

/// Pairwise-masking secure aggregation (Bonawitz et al., the paper's
/// reference [45]) — the workhorse of *horizontal* federated learning
/// with distributed DP [39-41].
///
/// Each pair of clients (i, j) derives a shared mask m_ij from a common
/// seed; client i adds +m_ij and client j adds -m_ij to its input vector,
/// so the masks cancel in the sum and the server learns exactly
/// sum_j x_j and nothing else (semi-honest). Dropouts are tolerated via
/// AggregateWithDropouts: survivors reveal their pairwise masks towards
/// the dropped clients so the residual masks can be removed, and the
/// server obtains the partial sum over the survivor set.
///
/// Included to make the paper's gap concrete: SecAgg reveals only a LINEAR
/// function of the clients' vectors. In VFL the function of interest is a
/// polynomial ACROSS clients' attributes (x_i * x_j lives in no single
/// client's input), which additive masking cannot compute — that is
/// exactly why SQM needs a general MPC underneath. The tests demonstrate
/// both the capability (exact sums, mask cancellation) and the limitation
/// (no cross-client products).
class SecureAggregation {
 public:
  /// `num_clients` >= 2; `seed` drives all pairwise masks; `network`
  /// (optional, any Transport) counts the traffic of the masked uploads.
  SecureAggregation(size_t num_clients, uint64_t seed,
                    Transport* network = nullptr);

  /// The masked vector client `client` uploads for its private input
  /// (values as centered signed integers). Uniformly distributed in the
  /// field element-wise — individually it reveals nothing.
  Result<std::vector<Field::Element>> MaskedUpload(
      size_t client, const std::vector<int64_t>& values);

  /// Server-side aggregation of all clients' uploads: masks cancel,
  /// returning sum_j x_j exactly. Requires exactly one upload per client,
  /// all of equal length (use AggregateWithDropouts when uploads may be
  /// missing).
  Result<std::vector<int64_t>> Aggregate(
      const std::vector<std::vector<Field::Element>>& uploads) const;

  /// Dropout-tolerant aggregation result: the partial sum over the
  /// survivors plus exactly who contributed.
  struct SecAggResult {
    std::vector<int64_t> sum;       ///< sum over survivors' inputs.
    std::vector<size_t> survivors;  ///< Clients whose upload arrived.
    size_t num_dropped = 0;
  };

  /// Aggregates with missing uploads (std::nullopt = dropped client).
  /// Survivors' residual masks towards each dropped client are
  /// reconstructed from the pair seeds and removed (the unmask round of
  /// Bonawitz et al.; its traffic is modeled on the transport when one is
  /// attached). Masks between two dropped clients never entered any
  /// upload. Needs >= 2 survivors: a single survivor's "sum" would be its
  /// bare input, which the protocol must never reveal.
  Result<SecAggResult> AggregateWithDropouts(
      const std::vector<std::optional<std::vector<Field::Element>>>& uploads)
      const;

  size_t num_clients() const { return num_clients_; }

  /// Wire-integrity digest over a masked upload: a Horner-evaluated
  /// polynomial hash keyed by a fixed public point and bound to the
  /// uploading client's index. Linear masking carries no redundancy of its
  /// own — any single flipped or perturbed element silently shifts the
  /// aggregate — so transport-integrated uploads append this tag and the
  /// server recomputes it on receipt. This detects transmission-level
  /// corruption (the adversary model of tests/adversary_test.cc); a
  /// byzantine client lying about its *own* input is out of scope, exactly
  /// as in Bonawitz et al.'s semi-honest setting.
  static Field::Element UploadDigest(size_t client,
                                     const std::vector<Field::Element>& masked);

  /// Masks `values` and sends the upload (digest appended) to the server
  /// (party 0) over the attached transport. Requires a transport.
  Status UploadOverTransport(size_t client,
                             const std::vector<int64_t>& values);

  /// Server side of UploadOverTransport: receives one upload per client
  /// from the transport, verifies each digest (mismatch or wrong length
  /// fails with kIntegrityViolation naming the client), strips the tags and
  /// returns the masked uploads ready for Aggregate(). Call
  /// network->EndRound() between the uploads and this on a lockstep
  /// transport.
  Result<std::vector<std::vector<Field::Element>>> CollectUploads(
      size_t vector_length);

 private:
  /// Deterministic mask stream for the ordered pair (i < j), expanded per
  /// vector element.
  std::vector<Field::Element> PairMask(size_t i, size_t j,
                                       size_t length) const;

  /// The pairwise-masked field vector for `client`'s input (no traffic).
  std::vector<Field::Element> MaskVector(
      size_t client, const std::vector<int64_t>& values) const;

  size_t num_clients_;
  uint64_t seed_;
  Transport* network_;
};

}  // namespace sqm

#endif  // SQM_MPC_SECAGG_H_
