#ifndef SQM_MPC_SECAGG_H_
#define SQM_MPC_SECAGG_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "core/status.h"
#include "mpc/field.h"
#include "net/transport.h"

namespace sqm {

/// Pairwise-masking secure aggregation (Bonawitz et al., the paper's
/// reference [45]) — the workhorse of *horizontal* federated learning
/// with distributed DP [39-41].
///
/// Each pair of clients (i, j) derives a shared mask m_ij from a common
/// seed; client i adds +m_ij and client j adds -m_ij to its input vector,
/// so the masks cancel in the sum and the server learns exactly
/// sum_j x_j and nothing else (semi-honest). Dropouts are tolerated via
/// AggregateWithDropouts: survivors reveal their pairwise masks towards
/// the dropped clients so the residual masks can be removed, and the
/// server obtains the partial sum over the survivor set.
///
/// Included to make the paper's gap concrete: SecAgg reveals only a LINEAR
/// function of the clients' vectors. In VFL the function of interest is a
/// polynomial ACROSS clients' attributes (x_i * x_j lives in no single
/// client's input), which additive masking cannot compute — that is
/// exactly why SQM needs a general MPC underneath. The tests demonstrate
/// both the capability (exact sums, mask cancellation) and the limitation
/// (no cross-client products).
class SecureAggregation {
 public:
  /// `num_clients` >= 2; `seed` drives all pairwise masks; `network`
  /// (optional, any Transport) counts the traffic of the masked uploads.
  SecureAggregation(size_t num_clients, uint64_t seed,
                    Transport* network = nullptr);

  /// The masked vector client `client` uploads for its private input
  /// (values as centered signed integers). Uniformly distributed in the
  /// field element-wise — individually it reveals nothing.
  Result<std::vector<Field::Element>> MaskedUpload(
      size_t client, const std::vector<int64_t>& values);

  /// Server-side aggregation of all clients' uploads: masks cancel,
  /// returning sum_j x_j exactly. Requires exactly one upload per client,
  /// all of equal length (use AggregateWithDropouts when uploads may be
  /// missing).
  Result<std::vector<int64_t>> Aggregate(
      const std::vector<std::vector<Field::Element>>& uploads) const;

  /// Dropout-tolerant aggregation result: the partial sum over the
  /// survivors plus exactly who contributed.
  struct SecAggResult {
    std::vector<int64_t> sum;       ///< sum over survivors' inputs.
    std::vector<size_t> survivors;  ///< Clients whose upload arrived.
    size_t num_dropped = 0;
  };

  /// Aggregates with missing uploads (std::nullopt = dropped client).
  /// Survivors' residual masks towards each dropped client are
  /// reconstructed from the pair seeds and removed (the unmask round of
  /// Bonawitz et al.; its traffic is modeled on the transport when one is
  /// attached). Masks between two dropped clients never entered any
  /// upload. Needs >= 2 survivors: a single survivor's "sum" would be its
  /// bare input, which the protocol must never reveal.
  Result<SecAggResult> AggregateWithDropouts(
      const std::vector<std::optional<std::vector<Field::Element>>>& uploads)
      const;

  size_t num_clients() const { return num_clients_; }

 private:
  /// Deterministic mask stream for the ordered pair (i < j), expanded per
  /// vector element.
  std::vector<Field::Element> PairMask(size_t i, size_t j,
                                       size_t length) const;

  size_t num_clients_;
  uint64_t seed_;
  Transport* network_;
};

}  // namespace sqm

#endif  // SQM_MPC_SECAGG_H_
