#ifndef SQM_MPC_FIELD_H_
#define SQM_MPC_FIELD_H_

#include <cstdint>
#include <vector>

#include "core/status.h"

namespace sqm {

/// Arithmetic in the prime field Z_p with p = 2^61 - 1 (a Mersenne prime).
///
/// BGW secret sharing and circuit evaluation run over this field. The
/// Mersenne modulus admits branch-light reduction of 128-bit products, and
/// 2^61 - 1 comfortably holds the quantized magnitudes of the paper's
/// experiments (gamma up to 2^14, ||x||_2 <= c, m up to a few hundred
/// thousand records; see EstimateCapacityBits in core/sensitivity.h for the
/// guard SQM applies before choosing parameters).
///
/// Signed payloads use a *centered* encoding: integers in
/// [-(p-1)/2, (p-1)/2] map to their residue mod p and are decoded back by
/// subtracting p from residues above p/2. Wrap-around past the centered
/// range silently corrupts results AND breaks the sensitivity analysis, so
/// the SQM front end refuses parameter combinations that could wrap.
class Field {
 public:
  using Element = uint64_t;

  static constexpr Element kModulus = (uint64_t{1} << 61) - 1;

  /// Serialized width of one element. The wire format packs the 61-bit
  /// residue, so the width follows the modulus — not sizeof(Element), which
  /// is an in-memory representation choice. Transports use this for byte
  /// accounting.
  static constexpr size_t kWireBits = 61;
  static constexpr size_t kWireBytes = (kWireBits + 7) / 8;

  /// Largest magnitude representable in the centered encoding. Constant
  /// arithmetic on the modulus itself cannot wrap.
  static constexpr int64_t kMaxCentered =
      static_cast<int64_t>((kModulus - 1) / 2);  // sqmlint:allow(field-capacity)

  /// Reduces an arbitrary 64-bit value into [0, p).
  static Element Reduce(uint64_t x);

  static Element Add(Element a, Element b);
  static Element Sub(Element a, Element b);
  static Element Neg(Element a);
  static Element Mul(Element a, Element b);

  /// a^e mod p by square-and-multiply.
  static Element Pow(Element a, uint64_t e);

  /// Multiplicative inverse; `a` must be nonzero (checked).
  static Element Inv(Element a);

  /// Encodes a signed integer with |v| <= kMaxCentered (checked).
  static Element Encode(int64_t v);

  /// Decodes an element to the centered signed representative.
  static int64_t Decode(Element e);

  /// Vector conveniences used by the sharing layer.
  static std::vector<Element> EncodeVector(const std::vector<int64_t>& v);
  static std::vector<int64_t> DecodeVector(const std::vector<Element>& v);

  /// Batched, branchless kernels for the MPC hot path (span-style:
  /// pointer + count; `out` may alias an input). Each produces exactly the
  /// canonical residues the scalar operations produce — the branchless
  /// mask-subtract is a code-generation choice, not a semantic one — so the
  /// batched protocol path is bit-identical to the element-at-a-time path
  /// by construction. See tests/batch_equivalence_test.cc for the proof
  /// harness and docs/PROTOCOL.md "Batched evaluation".
  static void ReduceVec(const uint64_t* in, Element* out, size_t n);
  static void AddVec(const Element* a, const Element* b, Element* out,
                     size_t n);
  static void SubVec(const Element* a, const Element* b, Element* out,
                     size_t n);
  static void MulVec(const Element* a, const Element* b, Element* out,
                     size_t n);
  /// out[i] = a[i] * c.
  static void ScaleVec(const Element* a, Element c, Element* out, size_t n);
  /// acc[i] += w * v[i] — the Lagrange-recombination axpy.
  static void MulAddVec(Element* acc, const Element* v, Element w, size_t n);
  /// Sum of a[0..n) in the field. Field addition is exact mod p, so the
  /// reduction order cannot change the result.
  static Element SumVec(const Element* a, size_t n);
};

}  // namespace sqm

#endif  // SQM_MPC_FIELD_H_
