#include "mpc/circuit.h"

#include <sstream>

#include "core/logging.h"

namespace sqm {

Circuit::WireId Circuit::Push(Gate gate) {
  gates_.push_back(gate);
  return static_cast<WireId>(gates_.size() - 1);
}

Circuit::WireId Circuit::AddInput(size_t party) {
  Gate gate{};
  gate.kind = GateKind::kInput;
  gate.owner = party;
  gate.input_index = NumInputsForParty(party);
  return Push(gate);
}

Circuit::WireId Circuit::AddConstant(Field::Element value) {
  Gate gate{};
  gate.kind = GateKind::kConstant;
  gate.constant = value;
  return Push(gate);
}

Circuit::WireId Circuit::AddAdd(WireId lhs, WireId rhs) {
  SQM_CHECK(lhs < gates_.size() && rhs < gates_.size());
  Gate gate{};
  gate.kind = GateKind::kAdd;
  gate.lhs = lhs;
  gate.rhs = rhs;
  return Push(gate);
}

Circuit::WireId Circuit::AddSub(WireId lhs, WireId rhs) {
  SQM_CHECK(lhs < gates_.size() && rhs < gates_.size());
  Gate gate{};
  gate.kind = GateKind::kSub;
  gate.lhs = lhs;
  gate.rhs = rhs;
  return Push(gate);
}

Circuit::WireId Circuit::AddMulConst(WireId lhs, Field::Element constant) {
  SQM_CHECK(lhs < gates_.size());
  Gate gate{};
  gate.kind = GateKind::kMulConst;
  gate.lhs = lhs;
  gate.constant = constant;
  return Push(gate);
}

Circuit::WireId Circuit::AddMul(WireId lhs, WireId rhs) {
  SQM_CHECK(lhs < gates_.size() && rhs < gates_.size());
  Gate gate{};
  gate.kind = GateKind::kMul;
  gate.lhs = lhs;
  gate.rhs = rhs;
  ++num_mul_;
  return Push(gate);
}

void Circuit::MarkOutput(WireId wire) {
  SQM_CHECK(wire < gates_.size());
  outputs_.push_back(wire);
}

size_t Circuit::NumInputsForParty(size_t party) const {
  size_t count = 0;
  for (const Gate& gate : gates_) {
    if (gate.kind == GateKind::kInput && gate.owner == party) ++count;
  }
  return count;
}

size_t Circuit::MultiplicativeDepth() const {
  std::vector<size_t> depth(gates_.size(), 0);
  size_t max_depth = 0;
  for (size_t i = 0; i < gates_.size(); ++i) {
    const Gate& gate = gates_[i];
    switch (gate.kind) {
      case GateKind::kInput:
      case GateKind::kConstant:
        depth[i] = 0;
        break;
      case GateKind::kAdd:
      case GateKind::kSub:
        depth[i] = std::max(depth[gate.lhs], depth[gate.rhs]);
        break;
      case GateKind::kMulConst:
        depth[i] = depth[gate.lhs];
        break;
      case GateKind::kMul:
        depth[i] = std::max(depth[gate.lhs], depth[gate.rhs]) + 1;
        break;
    }
    max_depth = std::max(max_depth, depth[i]);
  }
  return max_depth;
}

Status Circuit::Validate(size_t num_parties) const {
  for (size_t i = 0; i < gates_.size(); ++i) {
    const Gate& gate = gates_[i];
    switch (gate.kind) {
      case GateKind::kInput:
        if (gate.owner >= num_parties) {
          return Status::InvalidArgument(
              "input gate owned by out-of-range party " +
              std::to_string(gate.owner));
        }
        break;
      case GateKind::kAdd:
      case GateKind::kSub:
      case GateKind::kMul:
        if (gate.lhs >= i || gate.rhs >= i) {
          return Status::InvalidArgument("gate references a later wire");
        }
        break;
      case GateKind::kMulConst:
        if (gate.lhs >= i) {
          return Status::InvalidArgument("gate references a later wire");
        }
        break;
      case GateKind::kConstant:
        break;
    }
  }
  if (outputs_.empty()) {
    return Status::InvalidArgument("circuit has no outputs");
  }
  for (WireId w : outputs_) {
    if (w >= gates_.size()) {
      return Status::InvalidArgument("output references unknown wire");
    }
  }
  return Status::OK();
}

std::string Circuit::Summary() const {
  std::ostringstream os;
  os << "Circuit{gates=" << gates_.size() << ", mul=" << num_mul_
     << ", depth=" << MultiplicativeDepth() << ", outputs=" << outputs_.size()
     << "}";
  return os.str();
}

}  // namespace sqm
