#ifndef SQM_MPC_NETWORK_H_
#define SQM_MPC_NETWORK_H_

#include "mpc/field.h"
#include "net/lockstep.h"
#include "net/stats.h"

namespace sqm {

/// In-process simulation of the pairwise secure channels BGW assumes.
///
/// The paper evaluates on "a single machine ... to simulate the distributed
/// environment where each party is assumed to have a secure and noiseless
/// channel" with a fixed message-passing latency (0.1 s). This is exactly
/// LockstepTransport (src/net/lockstep.h) instantiated with the field's
/// serialized element width: messages are queued locally, and a simulated
/// clock advances by `per_round_latency` once per synchronous round (all
/// messages of a round fly in parallel, as in the standard synchronous MPC
/// model). Tables II/IV/V report simulated-latency + measured-compute time.
///
/// Protocol code should depend on the abstract `Transport` (see
/// src/net/transport.h) so the same run works over the concurrent
/// ThreadedTransport; this alias-class exists for construction convenience
/// and backward compatibility.
class SimulatedNetwork : public LockstepTransport {
 public:
  /// `num_parties` pairwise channels; `per_round_latency_seconds` is added
  /// to the simulated clock at every EndRound().
  SimulatedNetwork(size_t num_parties, double per_round_latency_seconds)
      : LockstepTransport(num_parties, per_round_latency_seconds,
                          Field::kWireBytes) {}
};

}  // namespace sqm

#endif  // SQM_MPC_NETWORK_H_
