#ifndef SQM_MPC_NETWORK_H_
#define SQM_MPC_NETWORK_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "core/status.h"
#include "mpc/field.h"

namespace sqm {

/// Traffic and timing counters for a protocol execution.
struct NetworkStats {
  uint64_t messages = 0;        ///< Point-to-point sends.
  uint64_t field_elements = 0;  ///< Payload volume (8 bytes each on the wire).
  uint64_t rounds = 0;          ///< Synchronous communication rounds.

  uint64_t bytes() const { return field_elements * sizeof(Field::Element); }
};

/// In-process simulation of the pairwise secure channels BGW assumes.
///
/// The paper evaluates on "a single machine ... to simulate the distributed
/// environment where each party is assumed to have a secure and noiseless
/// channel" with a fixed message-passing latency (0.1 s). This class
/// reproduces that: messages are queued locally, and a simulated clock
/// advances by `per_round_latency` once per synchronous round (all messages
/// of a round fly in parallel, as in the standard synchronous MPC model).
/// Tables II/IV/V report simulated-latency + measured-compute time.
class SimulatedNetwork {
 public:
  /// `num_parties` pairwise channels; `per_round_latency_seconds` is added
  /// to the simulated clock at every EndRound().
  SimulatedNetwork(size_t num_parties, double per_round_latency_seconds);

  size_t num_parties() const { return num_parties_; }

  /// Enqueues `payload` on the (from -> to) channel. Self-sends are allowed
  /// (parties keep their own sub-shares) but do not count as traffic.
  void Send(size_t from, size_t to, std::vector<Field::Element> payload);

  /// Pops the oldest pending message on (from -> to). Fails if none pending
  /// — in a correct synchronous protocol every receive is matched by a send
  /// in the same round.
  Result<std::vector<Field::Element>> Receive(size_t from, size_t to);

  /// True if a message is waiting on (from -> to).
  bool HasPending(size_t from, size_t to) const;

  /// Marks the end of a synchronous round: advances the simulated clock.
  void EndRound();

  /// Simulated communication time so far (rounds * latency).
  double SimulatedSeconds() const;

  const NetworkStats& stats() const { return stats_; }

  /// Zeroes counters and drops any undelivered messages (test helper).
  void Reset();

 private:
  size_t ChannelIndex(size_t from, size_t to) const;

  size_t num_parties_;
  double per_round_latency_;
  std::vector<std::deque<std::vector<Field::Element>>> channels_;
  NetworkStats stats_;
};

}  // namespace sqm

#endif  // SQM_MPC_NETWORK_H_
