#ifndef SQM_POLY_MONOMIAL_H_
#define SQM_POLY_MONOMIAL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/status.h"

namespace sqm {

/// One term a * prod_j x[j]^{e_j} of a multivariate polynomial.
///
/// Exponents are stored sparsely as (variable index, exponent) pairs sorted
/// by variable index — the paper's row B_t[l, :] of the exponent matrix.
/// The degree lambda_t[l] = sum_j B_t[l, j] decides the quantization scale
/// gamma^{1 + lambda - lambda_t[l]} applied to the coefficient in
/// Algorithm 3.
class Monomial {
 public:
  /// Constant monomial `coefficient` (degree 0).
  explicit Monomial(double coefficient);

  /// Monomial with the given sparse exponents; pairs with exponent 0 are
  /// dropped, duplicate variables are merged by summing exponents.
  Monomial(double coefficient,
           std::vector<std::pair<size_t, uint32_t>> exponents);

  /// Convenience: coefficient * x[var]^power.
  static Monomial Power(double coefficient, size_t var, uint32_t power);

  double coefficient() const { return coefficient_; }
  void set_coefficient(double c) { coefficient_ = c; }

  const std::vector<std::pair<size_t, uint32_t>>& exponents() const {
    return exponents_;
  }

  /// Total degree sum_j e_j.
  uint32_t Degree() const;

  /// Largest variable index used + 1 (0 for constants).
  size_t MinArity() const;

  /// Evaluates on a real-valued point; `x.size()` must cover MinArity().
  double Evaluate(const std::vector<double>& x) const;

  /// Product of two monomials (coefficients multiply, exponents add).
  Monomial operator*(const Monomial& other) const;

  /// "2.5*x0^2*x3" rendering.
  std::string ToString() const;

 private:
  double coefficient_;
  std::vector<std::pair<size_t, uint32_t>> exponents_;
};

}  // namespace sqm

#endif  // SQM_POLY_MONOMIAL_H_
