#include "poly/monomial.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

#include "core/logging.h"

namespace sqm {

Monomial::Monomial(double coefficient) : coefficient_(coefficient) {}

Monomial::Monomial(double coefficient,
                   std::vector<std::pair<size_t, uint32_t>> exponents)
    : coefficient_(coefficient) {
  // Normalize: merge duplicates, drop zero exponents, sort by variable.
  std::map<size_t, uint32_t> merged;
  for (const auto& [var, exp] : exponents) {
    if (exp > 0) merged[var] += exp;
  }
  exponents_.assign(merged.begin(), merged.end());
}

Monomial Monomial::Power(double coefficient, size_t var, uint32_t power) {
  return Monomial(coefficient, {{var, power}});
}

uint32_t Monomial::Degree() const {
  uint32_t total = 0;
  for (const auto& [var, exp] : exponents_) total += exp;
  return total;
}

size_t Monomial::MinArity() const {
  return exponents_.empty() ? 0 : exponents_.back().first + 1;
}

double Monomial::Evaluate(const std::vector<double>& x) const {
  SQM_CHECK(x.size() >= MinArity());
  double acc = coefficient_;
  for (const auto& [var, exp] : exponents_) {
    // Integer exponents are small; repeated multiplication beats pow().
    double base = x[var];
    double term = 1.0;
    uint32_t e = exp;
    while (e > 0) {
      if (e & 1) term *= base;
      base *= base;
      e >>= 1;
    }
    acc *= term;
  }
  return acc;
}

Monomial Monomial::operator*(const Monomial& other) const {
  std::vector<std::pair<size_t, uint32_t>> combined = exponents_;
  combined.insert(combined.end(), other.exponents_.begin(),
                  other.exponents_.end());
  return Monomial(coefficient_ * other.coefficient_, std::move(combined));
}

std::string Monomial::ToString() const {
  std::ostringstream os;
  os << coefficient_;
  for (const auto& [var, exp] : exponents_) {
    os << "*x" << var;
    if (exp > 1) os << "^" << exp;
  }
  return os.str();
}

}  // namespace sqm
