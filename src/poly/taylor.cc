#include "poly/taylor.h"

#include <cmath>

#include "core/logging.h"

namespace sqm {

std::vector<double> SigmoidTaylorCoefficients(size_t order) {
  SQM_CHECK(order == 1 || order == 3 || order == 5 || order == 7);
  // sigma(u) = 1/2 + u/4 - u^3/48 + u^5/480 - 17u^7/80640 + ...
  std::vector<double> coeffs(order + 1, 0.0);
  coeffs[0] = 0.5;
  coeffs[1] = 0.25;
  if (order >= 3) coeffs[3] = -1.0 / 48.0;
  if (order >= 5) coeffs[5] = 1.0 / 480.0;
  if (order >= 7) coeffs[7] = -17.0 / 80640.0;
  return coeffs;
}

double SigmoidTaylor(double u, size_t order) {
  const std::vector<double> coeffs = SigmoidTaylorCoefficients(order);
  // Horner evaluation.
  double acc = 0.0;
  for (size_t i = coeffs.size(); i-- > 0;) acc = acc * u + coeffs[i];
  return acc;
}

double Sigmoid(double u) {
  // Branch on sign for numerical stability at large |u|.
  if (u >= 0.0) {
    return 1.0 / (1.0 + std::exp(-u));
  }
  const double e = std::exp(u);
  return e / (1.0 + e);
}

double SigmoidTaylorMaxError(size_t order, double bound, size_t grid_points) {
  SQM_CHECK(bound > 0.0 && grid_points >= 2);
  double max_err = 0.0;
  for (size_t i = 0; i < grid_points; ++i) {
    const double u =
        -bound + 2.0 * bound * static_cast<double>(i) /
                     static_cast<double>(grid_points - 1);
    max_err = std::max(max_err, std::fabs(SigmoidTaylor(u, order) -
                                          Sigmoid(u)));
  }
  return max_err;
}

}  // namespace sqm
