#include "poly/parser.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace sqm {
namespace {

/// Single-pass recursive-descent parser over the grammar in the header.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<Polynomial> Parse() {
    Polynomial p;
    SkipSpace();
    if (AtEnd()) {
      return Error("empty polynomial");
    }
    bool first = true;
    while (!AtEnd()) {
      double sign = 1.0;
      SkipSpace();
      if (Peek() == '+' || Peek() == '-') {
        sign = Peek() == '-' ? -1.0 : 1.0;
        Advance();
      } else if (!first) {
        return Error("expected '+' or '-' between terms");
      }
      SQM_ASSIGN_OR_RETURN(Monomial term, ParseTerm());
      term.set_coefficient(sign * term.coefficient());
      p.AddTerm(std::move(term));
      first = false;
      SkipSpace();
    }
    return p;
  }

 private:
  Result<Monomial> ParseTerm() {
    double coefficient = 1.0;
    std::vector<std::pair<size_t, uint32_t>> exponents;
    bool expect_factor = true;
    while (expect_factor) {
      SkipSpace();
      if (AtEnd()) {
        return Error("expected a factor");
      }
      const char c = Peek();
      if (c == 'x' || c == 'X') {
        Advance();
        SQM_ASSIGN_OR_RETURN(const uint64_t index, ParseInteger("variable index"));
        uint32_t exponent = 1;
        SkipSpace();
        if (!AtEnd() && Peek() == '^') {
          Advance();
          SkipSpace();
          SQM_ASSIGN_OR_RETURN(const uint64_t e, ParseInteger("exponent"));
          if (e == 0 || e > 64) {
            return Error("exponent must be in [1, 64]");
          }
          exponent = static_cast<uint32_t>(e);
        }
        exponents.emplace_back(static_cast<size_t>(index), exponent);
      } else if (std::isdigit(static_cast<unsigned char>(c)) || c == '.') {
        SQM_ASSIGN_OR_RETURN(const double value, ParseNumber());
        coefficient *= value;
      } else {
        return Error(std::string("unexpected character '") + c + "'");
      }
      SkipSpace();
      if (!AtEnd() && Peek() == '*') {
        Advance();
        expect_factor = true;
      } else {
        expect_factor = false;
      }
    }
    return Monomial(coefficient, std::move(exponents));
  }

  Result<uint64_t> ParseInteger(const char* what) {
    SkipSpace();
    if (AtEnd() || !std::isdigit(static_cast<unsigned char>(Peek()))) {
      return Error(std::string("expected ") + what);
    }
    uint64_t value = 0;
    while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
      value = value * 10 + static_cast<uint64_t>(Peek() - '0');
      if (value > 1000000) {
        return Error(std::string(what) + " out of range");
      }
      Advance();
    }
    return value;
  }

  Result<double> ParseNumber() {
    const char* begin = text_.c_str() + pos_;
    char* end = nullptr;
    const double value = std::strtod(begin, &end);
    if (end == begin) {
      return Error("expected a number");
    }
    pos_ += static_cast<size_t>(end - begin);
    return value;
  }

  Status Error(const std::string& message) const {
    std::ostringstream os;
    os << "parse error at position " << pos_ << ": " << message << " in '"
       << text_ << "'";
    return Status::InvalidArgument(os.str());
  }

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }
  void Advance() { ++pos_; }
  void SkipSpace() {
    while (!AtEnd() &&
           std::isspace(static_cast<unsigned char>(Peek()))) {
      Advance();
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Result<Polynomial> ParsePolynomial(const std::string& text) {
  return Parser(text).Parse();
}

Result<PolynomialVector> ParsePolynomialVector(const std::string& text) {
  PolynomialVector f;
  size_t start = 0;
  while (start <= text.size()) {
    const size_t sep = text.find(';', start);
    const std::string piece =
        text.substr(start, sep == std::string::npos ? std::string::npos
                                                    : sep - start);
    SQM_ASSIGN_OR_RETURN(Polynomial p, ParsePolynomial(piece));
    f.AddDimension(std::move(p));
    if (sep == std::string::npos) break;
    start = sep + 1;
  }
  if (f.output_dim() == 0) {
    return Status::InvalidArgument("no polynomial dimensions given");
  }
  return f;
}

std::string FormatPolynomial(const Polynomial& p) {
  if (p.terms().empty()) return "0";
  std::ostringstream os;
  bool first = true;
  for (const Monomial& term : p.terms()) {
    double coefficient = term.coefficient();
    if (first) {
      if (coefficient < 0) {
        os << "-";
        coefficient = -coefficient;
      }
    } else {
      os << (coefficient < 0 ? " - " : " + ");
      coefficient = std::fabs(coefficient);
    }
    const bool unit = coefficient == 1.0 && !term.exponents().empty();
    if (!unit) {
      // Shortest representation that round-trips exactly through strtod.
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.17g", coefficient);
      os << buf;
    }
    bool need_star = !unit;
    for (const auto& [var, exp] : term.exponents()) {
      if (need_star) os << "*";
      os << "x" << var;
      if (exp > 1) os << "^" << exp;
      need_star = true;
    }
    first = false;
  }
  return os.str();
}

}  // namespace sqm
