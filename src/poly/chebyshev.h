#ifndef SQM_POLY_CHEBYSHEV_H_
#define SQM_POLY_CHEBYSHEV_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "core/status.h"

namespace sqm {

/// Chebyshev polynomial approximation on [-radius, radius].
///
/// The paper approximates the sigmoid with its Taylor truncation (optimal
/// *at* 0); Chebyshev interpolation instead minimizes the worst-case error
/// over the whole interval, which is what the sensitivity analysis of a
/// polynomialized gradient actually depends on. Section V-B's discussion
/// ("for more complicated functions ... one may need more complicated
/// approximations") points exactly here; this module provides the tool and
/// `bench/ablation_approximation` compares the two.

/// Computes the monomial-basis coefficients c_0..c_degree of the
/// Chebyshev interpolant of `f` on [-radius, radius] (interpolation at
/// the degree+1 Chebyshev nodes, expanded to the monomial basis so the
/// result can feed the SQM polynomial pipeline).
Result<std::vector<double>> ChebyshevCoefficients(
    const std::function<double(double)>& f, size_t degree, double radius);

/// Evaluates a monomial-basis polynomial sum_i c_i u^i at `u` (Horner).
double EvaluateMonomialBasis(const std::vector<double>& coefficients,
                             double u);

/// Max |approx - f| over a dense grid on [-radius, radius].
double MaxApproximationError(const std::function<double(double)>& f,
                             const std::vector<double>& coefficients,
                             double radius, size_t grid_points = 4096);

/// Convenience: Chebyshev coefficients of the sigmoid on [-radius,
/// radius].
Result<std::vector<double>> SigmoidChebyshevCoefficients(size_t degree,
                                                         double radius);

}  // namespace sqm

#endif  // SQM_POLY_CHEBYSHEV_H_
