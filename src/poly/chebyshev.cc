#include "poly/chebyshev.h"

#include <cmath>

#include "poly/taylor.h"

namespace sqm {

Result<std::vector<double>> ChebyshevCoefficients(
    const std::function<double(double)>& f, size_t degree, double radius) {
  if (f == nullptr) {
    return Status::InvalidArgument("Chebyshev: f must be callable");
  }
  if (radius <= 0.0) {
    return Status::InvalidArgument("Chebyshev: radius must be positive");
  }
  if (degree > 48) {
    // Monomial-basis conversion becomes ill-conditioned far earlier than
    // this; refuse clearly instead of returning garbage.
    return Status::InvalidArgument("Chebyshev: degree too large (max 48)");
  }
  const size_t n = degree + 1;

  // Chebyshev-basis coefficients via interpolation at the N nodes
  // t_k = cos(pi (k + 1/2) / N) of [-1, 1], argument scaled by radius.
  std::vector<double> cheb(n, 0.0);
  std::vector<double> samples(n);
  for (size_t k = 0; k < n; ++k) {
    const double t = std::cos(M_PI * (static_cast<double>(k) + 0.5) /
                              static_cast<double>(n));
    samples[k] = f(radius * t);
  }
  for (size_t j = 0; j < n; ++j) {
    double acc = 0.0;
    for (size_t k = 0; k < n; ++k) {
      acc += samples[k] * std::cos(M_PI * static_cast<double>(j) *
                                   (static_cast<double>(k) + 0.5) /
                                   static_cast<double>(n));
    }
    cheb[j] = 2.0 * acc / static_cast<double>(n);
  }
  cheb[0] /= 2.0;

  // Expand T_j(t) into monomials of t via the recurrence
  // T_{j+1} = 2 t T_j - T_{j-1}, accumulating cheb[j] * T_j.
  std::vector<double> monomial_t(n, 0.0);
  std::vector<double> t_prev(n, 0.0);  // T_0 = 1.
  std::vector<double> t_curr(n, 0.0);  // T_1 = t.
  t_prev[0] = 1.0;
  if (n > 1) t_curr[1] = 1.0;
  monomial_t[0] += cheb[0] * t_prev[0];
  if (n > 1) {
    for (size_t i = 0; i < n; ++i) monomial_t[i] += cheb[1] * t_curr[i];
  }
  for (size_t j = 2; j < n; ++j) {
    std::vector<double> t_next(n, 0.0);
    for (size_t i = 0; i + 1 < n; ++i) {
      t_next[i + 1] += 2.0 * t_curr[i];
    }
    for (size_t i = 0; i < n; ++i) t_next[i] -= t_prev[i];
    for (size_t i = 0; i < n; ++i) monomial_t[i] += cheb[j] * t_next[i];
    t_prev = std::move(t_curr);
    t_curr = std::move(t_next);
  }

  // Substitute t = u / radius: coefficient of u^i divides by radius^i.
  std::vector<double> monomial_u(n);
  double scale = 1.0;
  for (size_t i = 0; i < n; ++i) {
    monomial_u[i] = monomial_t[i] * scale;
    scale /= radius;
  }
  return monomial_u;
}

double EvaluateMonomialBasis(const std::vector<double>& coefficients,
                             double u) {
  double acc = 0.0;
  for (size_t i = coefficients.size(); i-- > 0;) {
    acc = acc * u + coefficients[i];
  }
  return acc;
}

double MaxApproximationError(const std::function<double(double)>& f,
                             const std::vector<double>& coefficients,
                             double radius, size_t grid_points) {
  double worst = 0.0;
  for (size_t i = 0; i < grid_points; ++i) {
    const double u = -radius + 2.0 * radius * static_cast<double>(i) /
                                  static_cast<double>(grid_points - 1);
    worst = std::max(worst, std::fabs(EvaluateMonomialBasis(coefficients,
                                                            u) -
                                      f(u)));
  }
  return worst;
}

Result<std::vector<double>> SigmoidChebyshevCoefficients(size_t degree,
                                                         double radius) {
  return ChebyshevCoefficients([](double u) { return Sigmoid(u); }, degree,
                               radius);
}

}  // namespace sqm
