#include "poly/polynomial.h"

#include <algorithm>
#include <sstream>

#include "core/logging.h"

namespace sqm {

Polynomial::Polynomial(std::vector<Monomial> terms)
    : terms_(std::move(terms)) {}

Polynomial& Polynomial::AddTerm(Monomial term) {
  terms_.push_back(std::move(term));
  return *this;
}

uint32_t Polynomial::Degree() const {
  uint32_t degree = 0;
  for (const Monomial& term : terms_) degree = std::max(degree, term.Degree());
  return degree;
}

size_t Polynomial::MinArity() const {
  size_t arity = 0;
  for (const Monomial& term : terms_)
    arity = std::max(arity, term.MinArity());
  return arity;
}

double Polynomial::Evaluate(const std::vector<double>& x) const {
  double acc = 0.0;
  for (const Monomial& term : terms_) acc += term.Evaluate(x);
  return acc;
}

double Polynomial::EvaluateSum(
    const std::vector<std::vector<double>>& rows) const {
  double acc = 0.0;
  for (const auto& row : rows) acc += Evaluate(row);
  return acc;
}

std::string Polynomial::ToString() const {
  if (terms_.empty()) return "0";
  std::ostringstream os;
  for (size_t i = 0; i < terms_.size(); ++i) {
    if (i > 0) os << " + ";
    os << terms_[i].ToString();
  }
  return os.str();
}

PolynomialVector::PolynomialVector(std::vector<Polynomial> dims)
    : dims_(std::move(dims)) {}

PolynomialVector& PolynomialVector::AddDimension(Polynomial p) {
  dims_.push_back(std::move(p));
  return *this;
}

uint32_t PolynomialVector::Degree() const {
  uint32_t degree = 0;
  for (const Polynomial& p : dims_) degree = std::max(degree, p.Degree());
  return degree;
}

size_t PolynomialVector::MinArity() const {
  size_t arity = 0;
  for (const Polynomial& p : dims_) arity = std::max(arity, p.MinArity());
  return arity;
}

std::vector<double> PolynomialVector::Evaluate(
    const std::vector<double>& x) const {
  std::vector<double> out(dims_.size());
  for (size_t t = 0; t < dims_.size(); ++t) out[t] = dims_[t].Evaluate(x);
  return out;
}

std::vector<double> PolynomialVector::EvaluateSum(
    const std::vector<std::vector<double>>& rows) const {
  std::vector<double> acc(dims_.size(), 0.0);
  for (const auto& row : rows) {
    for (size_t t = 0; t < dims_.size(); ++t) {
      acc[t] += dims_[t].Evaluate(row);
    }
  }
  return acc;
}

size_t PolynomialVector::MaxTermsPerDimension() const {
  size_t v = 0;
  for (const Polynomial& p : dims_) v = std::max(v, p.num_terms());
  return v;
}

PolynomialVector PolynomialVector::OuterProduct(size_t n) {
  PolynomialVector f;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      Polynomial p;
      if (i == j) {
        p.AddTerm(Monomial::Power(1.0, i, 2));
      } else {
        p.AddTerm(Monomial(1.0, {{i, 1}, {j, 1}}));
      }
      f.AddDimension(std::move(p));
    }
  }
  return f;
}

std::string PolynomialVector::ToString() const {
  std::ostringstream os;
  os << "(";
  for (size_t t = 0; t < dims_.size(); ++t) {
    if (t > 0) os << ", ";
    os << dims_[t].ToString();
  }
  os << ")";
  return os.str();
}

}  // namespace sqm
