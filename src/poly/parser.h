#ifndef SQM_POLY_PARSER_H_
#define SQM_POLY_PARSER_H_

#include <string>

#include "core/status.h"
#include "poly/polynomial.h"

namespace sqm {

/// Text format for polynomials, so tools and configs can specify the
/// function of interest without writing C++:
///
///   polynomial := term (('+' | '-') term)*
///   term       := factor ('*' factor)*
///   factor     := number | variable ('^' exponent)?
///   variable   := 'x' index          (x0, x1, ...)
///
/// Examples: "x0^3 + 1.5*x1*x2 + 2"  (the paper's running example),
///           "0.5*x0 - x2*x0", "-2.5".
/// Whitespace is ignored; numbers accept scientific notation; implicit
/// multiplication is NOT supported ("2x0" is an error, write "2*x0").

/// Parses one polynomial dimension. Errors carry the offending position.
Result<Polynomial> ParsePolynomial(const std::string& text);

/// Parses a d-dimensional polynomial: dimensions separated by ';'.
/// Example: "x0*x0; x0*x1; x1*x1" is the 2-attribute outer product.
Result<PolynomialVector> ParsePolynomialVector(const std::string& text);

/// Renders a polynomial in the same format (round-trips through
/// ParsePolynomial up to term order and float formatting).
std::string FormatPolynomial(const Polynomial& p);

}  // namespace sqm

#endif  // SQM_POLY_PARSER_H_
