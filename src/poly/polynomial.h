#ifndef SQM_POLY_POLYNOMIAL_H_
#define SQM_POLY_POLYNOMIAL_H_

#include <cstddef>
#include <string>
#include <vector>

#include "core/status.h"
#include "poly/monomial.h"

namespace sqm {

/// A one-dimensional multivariate polynomial: sum of monomials
/// f_t(x) = sum_l a_t[l] * prod_j x[j]^{B_t[l,j]} (Eq. 6 in the paper).
class Polynomial {
 public:
  Polynomial() = default;
  explicit Polynomial(std::vector<Monomial> terms);

  /// Builder-style addition of a term.
  Polynomial& AddTerm(Monomial term);

  const std::vector<Monomial>& terms() const { return terms_; }
  size_t num_terms() const { return terms_.size(); }

  /// Highest monomial degree (0 for the empty/constant polynomial).
  uint32_t Degree() const;

  /// Largest variable index used + 1.
  size_t MinArity() const;

  double Evaluate(const std::vector<double>& x) const;

  /// Sum over the rows of a database: F(X) = sum_x f(x).
  double EvaluateSum(const std::vector<std::vector<double>>& rows) const;

  std::string ToString() const;

 private:
  std::vector<Monomial> terms_;
};

/// A d-dimensional polynomial function f = (f_1, ..., f_d) — the function
/// class SQM evaluates over vertically partitioned data (Section III).
class PolynomialVector {
 public:
  PolynomialVector() = default;
  explicit PolynomialVector(std::vector<Polynomial> dims);

  PolynomialVector& AddDimension(Polynomial p);

  const std::vector<Polynomial>& dims() const { return dims_; }
  size_t output_dim() const { return dims_.size(); }

  /// Degree of the d-dimensional polynomial: max over dimensions (the
  /// paper's lambda in Algorithm 3).
  uint32_t Degree() const;

  size_t MinArity() const;

  std::vector<double> Evaluate(const std::vector<double>& x) const;

  /// F(X) = sum over rows.
  std::vector<double> EvaluateSum(
      const std::vector<std::vector<double>>& rows) const;

  /// Max over dimensions of the number of monomials (the paper's
  /// max_t v_t appearing in the overhead discussion of Lemma 4).
  size_t MaxTermsPerDimension() const;

  /// The covariance/Gram target of Section V-A: f(x) = x^T x flattened
  /// row-major to n*n dimensions, each dimension x[i]*x[j].
  static PolynomialVector OuterProduct(size_t n);

  std::string ToString() const;

 private:
  std::vector<Polynomial> dims_;
};

}  // namespace sqm

#endif  // SQM_POLY_POLYNOMIAL_H_
