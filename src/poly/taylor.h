#ifndef SQM_POLY_TAYLOR_H_
#define SQM_POLY_TAYLOR_H_

#include <cstddef>
#include <vector>

namespace sqm {

/// Polynomial approximations of the sigmoid, following Section V-B of the
/// paper (which follows Zhang et al.'s functional mechanism [66]).
///
/// The Taylor series of sigma(u) = 1 / (1 + e^{-u}) at u = 0 is
///   sigma(u) = 1/2 + u/4 - u^3/48 + u^5/480 - ...
/// The paper uses the order-1 truncation sigma(u) ~ 1/2 + u/4, which makes
/// the LR gradient a degree-2 polynomial of (x, y) (Eq. 9). Higher orders
/// are provided for the extension experiments (DESIGN.md ablations).

/// Coefficients c_0..c_order of the Taylor truncation of sigmoid at 0.
/// Even-order coefficients beyond c_0 are zero. `order` in {1, 3, 5, 7}.
std::vector<double> SigmoidTaylorCoefficients(size_t order);

/// Evaluates the order-`order` Taylor sigmoid approximation at u.
double SigmoidTaylor(double u, size_t order);

/// Exact sigmoid (used by the central DPSGD baseline, which does not need a
/// polynomial form).
double Sigmoid(double u);

/// Max absolute error of the order-`order` approximation over |u| <= bound,
/// by dense grid scan. Used in tests and the Figure 5 discussion.
double SigmoidTaylorMaxError(size_t order, double bound,
                             size_t grid_points = 4096);

}  // namespace sqm

#endif  // SQM_POLY_TAYLOR_H_
