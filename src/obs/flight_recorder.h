#ifndef SQM_OBS_FLIGHT_RECORDER_H_
#define SQM_OBS_FLIGHT_RECORDER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/sync.h"
#include "obs/obs.h"

namespace sqm::obs {

/// One entry of the crash flight recorder: a fixed-size, allocation-free
/// record of a recent protocol event (phase transition, frame send/recv,
/// checkpoint write, link suspicion). `kind` must point at a string
/// literal; `detail` is a short copied tag (a phase label, a reason) so
/// the record survives the death of whatever produced it.
struct FlightEvent {
  static constexpr size_t kDetailBytes = 24;

  uint64_t ts_micros = 0;  ///< obs::NowMicros() at record time.
  const char* kind = "";
  char detail[kDetailBytes] = {0};  ///< NUL-terminated, truncated copy.
  int64_t a = 0;                    ///< Kind-specific (peer, level, ...).
  int64_t b = 0;                    ///< Kind-specific (seq, bytes, ...).
};

/// Bounded ring of the most recent FlightEvents, dumped as
/// `flight_<party>.json` on fatal exits, SIGTERM, or degrade so a
/// post-mortem of a killed/partitioned party is self-contained: the last
/// ~512 things the process did, in order, with timestamps on the process
/// trace epoch. Recording is cheap (one mutex, two stores) and, like all
/// of src/obs/, inert behind the kill switch — it observes the protocol
/// and never feeds back into it.
class FlightRecorder {
 public:
  static constexpr size_t kCapacity = 512;

  static FlightRecorder& Global();

  /// Appends one event (oldest entry overwritten once the ring is full).
  /// No-op when the kill switch is off. `kind` must be a string literal;
  /// `detail` is copied (truncated to kDetailBytes - 1).
  void Record(const char* kind, const char* detail, int64_t a = 0,
              int64_t b = 0);

  /// Who this process is, stamped into the dump header. The supervisor
  /// matches dumps to roster entries by these.
  void SetIdentity(uint64_t run_id, uint32_t party, uint32_t incarnation);

  /// Where DumpForCrash writes (default "sqm_flight.json").
  void SetDumpPath(std::string path);

  /// The ring's events, oldest first.
  std::vector<FlightEvent> Snapshot() const;

  /// Events recorded over the recorder's lifetime (>= ring size).
  uint64_t total_recorded() const;

  /// Drops all buffered events (identity and dump path are kept).
  void Clear();

  /// JSON document: {"run_id":..,"party":..,"incarnation":..,
  /// "total_recorded":..,"capacity":..,"events":[{"t":..,"kind":"..",
  /// "detail":"..","a":..,"b":..},...]} — the flight_<party>.json schema
  /// (docs/OBSERVABILITY.md).
  std::string ToJson() const;

  /// Writes ToJson() to a file; false on I/O failure.
  bool WriteFile(const std::string& path) const;

  /// Flushes the ring to the dump path if any events are buffered.
  /// Installed as a Logger fatal hook; sqm-party also runs it on SIGTERM
  /// and on degrade.
  void DumpForCrash() const;

 private:
  FlightRecorder();

  mutable Mutex mu_;
  FlightEvent ring_[kCapacity] SQM_GUARDED_BY(mu_);
  size_t next_ SQM_GUARDED_BY(mu_) = 0;
  uint64_t total_ SQM_GUARDED_BY(mu_) = 0;
  uint64_t run_id_ SQM_GUARDED_BY(mu_) = 0;
  uint32_t party_ SQM_GUARDED_BY(mu_) = 0;
  uint32_t incarnation_ SQM_GUARDED_BY(mu_) = 0;
  std::string dump_path_ SQM_GUARDED_BY(mu_) = "sqm_flight.json";
};

}  // namespace sqm::obs

/// Instrumentation macros, kill-switch aware like SQM_OBS_COUNTER_*. The
/// kind must be a string literal (enforced by sqmlint's obs-discipline).
#define SQM_FLIGHT_EVENT(kind, detail, a)                            \
  do {                                                               \
    if (::sqm::obs::Enabled()) {                                     \
      ::sqm::obs::FlightRecorder::Global().Record((kind), (detail), \
                                                  (a));              \
    }                                                                \
  } while (0)

#define SQM_FLIGHT_EVENT2(kind, detail, a, b)                        \
  do {                                                               \
    if (::sqm::obs::Enabled()) {                                     \
      ::sqm::obs::FlightRecorder::Global().Record((kind), (detail), \
                                                  (a), (b));         \
    }                                                                \
  } while (0)

#endif  // SQM_OBS_FLIGHT_RECORDER_H_
