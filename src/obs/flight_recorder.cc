#include "obs/flight_recorder.h"

#include <cstring>
#include <fstream>

#include "core/json.h"
#include "core/logging.h"

namespace sqm::obs {

FlightRecorder& FlightRecorder::Global() {
  static FlightRecorder* recorder = new FlightRecorder();  // Never
  return *recorder;  // destroyed: crash paths may record very late.
}

FlightRecorder::FlightRecorder() {
  // Fatal exits dump the ring next to the tracer's crash trace, so a
  // SQM_CHECK failure leaves both a timeline and an event log behind.
  Logger::AddFatalHook([] { FlightRecorder::Global().DumpForCrash(); });
}

void FlightRecorder::Record(const char* kind, const char* detail, int64_t a,
                            int64_t b) {
  if (!Enabled()) return;
  FlightEvent event;
  event.ts_micros = NowMicros();
  event.kind = kind;
  if (detail != nullptr && detail[0] != '\0') {
    std::strncpy(event.detail, detail, FlightEvent::kDetailBytes - 1);
  }
  event.a = a;
  event.b = b;
  MutexLock lock(mu_);
  ring_[next_] = event;
  next_ = (next_ + 1) % kCapacity;
  ++total_;
}

void FlightRecorder::SetIdentity(uint64_t run_id, uint32_t party,
                                 uint32_t incarnation) {
  MutexLock lock(mu_);
  run_id_ = run_id;
  party_ = party;
  incarnation_ = incarnation;
}

void FlightRecorder::SetDumpPath(std::string path) {
  MutexLock lock(mu_);
  dump_path_ = std::move(path);
}

std::vector<FlightEvent> FlightRecorder::Snapshot() const {
  MutexLock lock(mu_);
  std::vector<FlightEvent> events;
  const size_t count =
      total_ < kCapacity ? static_cast<size_t>(total_) : kCapacity;
  events.reserve(count);
  // Oldest first: once wrapped, the ring's oldest entry is at next_.
  const size_t start = total_ < kCapacity ? 0 : next_;
  for (size_t i = 0; i < count; ++i) {
    events.push_back(ring_[(start + i) % kCapacity]);
  }
  return events;
}

uint64_t FlightRecorder::total_recorded() const {
  MutexLock lock(mu_);
  return total_;
}

void FlightRecorder::Clear() {
  MutexLock lock(mu_);
  next_ = 0;
  total_ = 0;
}

std::string FlightRecorder::ToJson() const {
  uint64_t run_id = 0;
  uint32_t party = 0;
  uint32_t incarnation = 0;
  uint64_t total = 0;
  {
    MutexLock lock(mu_);
    run_id = run_id_;
    party = party_;
    incarnation = incarnation_;
    total = total_;
  }
  const std::vector<FlightEvent> events = Snapshot();
  JsonWriter writer;
  writer.BeginObject();
  writer.Field("run_id", run_id);
  writer.Field("party", static_cast<uint64_t>(party));
  writer.Field("incarnation", static_cast<uint64_t>(incarnation));
  writer.Field("total_recorded", total);
  writer.Field("capacity", static_cast<uint64_t>(kCapacity));
  writer.BeginArray("events");
  for (const FlightEvent& event : events) {
    writer.BeginObject()
        .Field("t", event.ts_micros)
        .Field("kind", event.kind)
        .Field("detail", event.detail)
        .Field("a", event.a)
        .Field("b", event.b)
        .EndObject();
  }
  writer.EndArray();
  writer.EndObject();
  return writer.str();
}

bool FlightRecorder::WriteFile(const std::string& path) const {
  std::ofstream out(path, std::ios::out | std::ios::trunc);
  if (!out) return false;
  out << ToJson();
  return static_cast<bool>(out);
}

void FlightRecorder::DumpForCrash() const {
  if (total_recorded() == 0) return;
  std::string path;
  {
    MutexLock lock(mu_);
    path = dump_path_;
  }
  WriteFile(path);
}

}  // namespace sqm::obs
