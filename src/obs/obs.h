#ifndef SQM_OBS_OBS_H_
#define SQM_OBS_OBS_H_

#include <atomic>
#include <cstdint>

/// Observability kill switch. Two layers:
///
///   * Compile time: configuring with -DSQM_OBS=OFF defines
///     SQM_OBS_DISABLED, which pins Enabled() to a constant false so every
///     instrumentation site (spans, counter macros, ledger forwarding)
///     folds away to nothing — the zero-instrumentation build.
///   * Run time: obs::SetEnabled(false) turns collection off in an
///     instrumented build; the residual cost at each site is one relaxed
///     atomic load and a predictable branch.
///
/// Everything in src/obs/ funnels through Enabled(), so call sites never
/// need their own #ifdefs.
namespace sqm::obs {

#ifdef SQM_OBS_DISABLED

inline constexpr bool kCompiledIn = false;
inline constexpr bool Enabled() { return false; }
inline void SetEnabled(bool) {}

#else

inline constexpr bool kCompiledIn = true;

namespace internal {
extern std::atomic<bool> g_enabled;
}  // namespace internal

inline bool Enabled() {
  return internal::g_enabled.load(std::memory_order_relaxed);
}
inline void SetEnabled(bool on) {
  internal::g_enabled.store(on, std::memory_order_relaxed);
}

#endif  // SQM_OBS_DISABLED

/// Microseconds since the process trace epoch (first call), on the steady
/// clock. All spans, trace events and ledger timestamps share this epoch so
/// they line up on one timeline.
uint64_t NowMicros();

}  // namespace sqm::obs

#endif  // SQM_OBS_OBS_H_
