#ifndef SQM_OBS_METRICS_H_
#define SQM_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/sync.h"
#include "obs/obs.h"

namespace sqm::obs {

/// Monotone counter. Add is one relaxed atomic fetch-add — safe to call
/// from every party thread with no coordination.
class Counter {
 public:
  explicit Counter(std::string name) : name_(std::move(name)) {}

  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  uint64_t Get() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::atomic<uint64_t> value_{0};
};

/// Last-written-value gauge (e.g. the Jacobi off-diagonal norm per sweep).
class Gauge {
 public:
  explicit Gauge(std::string name) : name_(std::move(name)) {}

  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double Get() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::atomic<double> value_{0.0};
};

/// Log2-bucketed histogram of non-negative integer samples (typically
/// microsecond durations or element counts). Bucket i counts values whose
/// bit width is i: bucket 0 holds exactly {0}, bucket i holds
/// [2^(i-1), 2^i). Record is three relaxed atomic adds.
class Histogram {
 public:
  static constexpr int kNumBuckets = 65;  // bit widths 0..64

  explicit Histogram(std::string name) : name_(std::move(name)) {}

  void Record(uint64_t v) {
    buckets_[BucketFor(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t BucketCount(int bucket) const {
    return buckets_[bucket].load(std::memory_order_relaxed);
  }
  /// Inclusive upper bound of a bucket: 0, 1, 3, 7, ... (2^i - 1).
  static uint64_t BucketUpper(int bucket) {
    if (bucket >= 64) return UINT64_MAX;
    return (uint64_t{1} << bucket) - 1;
  }

  void Reset() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
  }
  const std::string& name() const { return name_; }

  static int BucketFor(uint64_t v) {
    int width = 0;
    while (v != 0) {
      v >>= 1;
      ++width;
    }
    return width;
  }

 private:
  std::string name_;
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

/// Point-in-time copy of every metric, detached from the registry so it can
/// be serialized or compared without holding locks.
struct MetricsSnapshot {
  struct CounterSample {
    std::string name;
    uint64_t value = 0;
  };
  struct GaugeSample {
    std::string name;
    double value = 0.0;
  };
  struct HistogramBucket {
    uint64_t upper = 0;  ///< Inclusive upper bound of the bucket.
    uint64_t count = 0;
  };
  struct HistogramSample {
    std::string name;
    uint64_t count = 0;
    uint64_t sum = 0;
    std::vector<HistogramBucket> buckets;  ///< Non-empty buckets only.
  };

  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;

  /// Value of a counter by name, or 0 if absent.
  uint64_t CounterValue(const std::string& name) const;

  std::string ToJson() const;
};

/// Process-wide registry of named metrics. GetCounter et al. create on
/// first use and return a reference with a stable address for the life of
/// the process — ResetAll zeroes values but never invalidates references,
/// so call sites may cache the pointer (the SQM_OBS_* macros do).
///
/// Naming convention: dot-separated "<subsystem>.<object>.<what>", e.g.
/// "net.send.wire_bytes", "sampler.poisson.ptrs_rejections",
/// "eigen.jacobi.off_diag_norm" (see docs/OBSERVABILITY.md).
class Registry {
 public:
  static Registry& Global();

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  /// Lookup without creating; nullptr when the metric does not exist.
  const Counter* FindCounter(const std::string& name) const;
  const Gauge* FindGauge(const std::string& name) const;
  const Histogram* FindHistogram(const std::string& name) const;

  MetricsSnapshot Snapshot() const;
  std::string SnapshotJson() const { return Snapshot().ToJson(); }

  /// Zeroes every metric. References and pointers stay valid.
  void ResetAll();

 private:
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_
      SQM_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ SQM_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      SQM_GUARDED_BY(mu_);
};

/// Records the wall time of a scope, in microseconds, into a histogram.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& histogram)
      : histogram_(Enabled() ? &histogram : nullptr),
        start_(histogram_ != nullptr ? NowMicros() : 0) {}
  explicit ScopedTimer(const std::string& name)
      : ScopedTimer(Registry::Global().GetHistogram(name)) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
    if (histogram_ != nullptr) histogram_->Record(NowMicros() - start_);
  }

 private:
  Histogram* histogram_;
  uint64_t start_;
};

}  // namespace sqm::obs

/// Hot-path macros: gated on the kill switch, with a function-local cached
/// pointer so the registry map lookup happens once per call site.
#define SQM_OBS_COUNTER_ADD(metric_name, n)                              \
  do {                                                                   \
    if (::sqm::obs::Enabled()) {                                         \
      static ::sqm::obs::Counter& sqm_obs_counter_ =                     \
          ::sqm::obs::Registry::Global().GetCounter(metric_name);        \
      sqm_obs_counter_.Add(static_cast<uint64_t>(n));                    \
    }                                                                    \
  } while (false)

#define SQM_OBS_COUNTER_INC(metric_name) SQM_OBS_COUNTER_ADD(metric_name, 1)

#define SQM_OBS_GAUGE_SET(metric_name, v)                                \
  do {                                                                   \
    if (::sqm::obs::Enabled()) {                                         \
      static ::sqm::obs::Gauge& sqm_obs_gauge_ =                         \
          ::sqm::obs::Registry::Global().GetGauge(metric_name);          \
      sqm_obs_gauge_.Set(static_cast<double>(v));                        \
    }                                                                    \
  } while (false)

#define SQM_OBS_HISTOGRAM_RECORD(metric_name, v)                         \
  do {                                                                   \
    if (::sqm::obs::Enabled()) {                                         \
      static ::sqm::obs::Histogram& sqm_obs_histogram_ =                 \
          ::sqm::obs::Registry::Global().GetHistogram(metric_name);      \
      sqm_obs_histogram_.Record(static_cast<uint64_t>(v));               \
    }                                                                    \
  } while (false)

#endif  // SQM_OBS_METRICS_H_
