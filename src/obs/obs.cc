#include "obs/obs.h"

#include <chrono>

namespace sqm::obs {

#ifndef SQM_OBS_DISABLED
namespace internal {
std::atomic<bool> g_enabled{true};
}  // namespace internal
#endif

uint64_t NowMicros() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch)
          .count());
}

}  // namespace sqm::obs
