#include "obs/metrics.h"

#include "core/json.h"

namespace sqm::obs {

uint64_t MetricsSnapshot::CounterValue(const std::string& name) const {
  for (const CounterSample& sample : counters) {
    if (sample.name == name) return sample.value;
  }
  return 0;
}

std::string MetricsSnapshot::ToJson() const {
  JsonWriter writer;
  writer.BeginObject();
  writer.BeginArray("counters");
  for (const CounterSample& sample : counters) {
    writer.BeginObject()
        .Field("name", sample.name)
        .Field("value", sample.value)
        .EndObject();
  }
  writer.EndArray();
  writer.BeginArray("gauges");
  for (const GaugeSample& sample : gauges) {
    writer.BeginObject()
        .Field("name", sample.name)
        .Field("value", sample.value)
        .EndObject();
  }
  writer.EndArray();
  writer.BeginArray("histograms");
  for (const HistogramSample& sample : histograms) {
    writer.BeginObject()
        .Field("name", sample.name)
        .Field("count", sample.count)
        .Field("sum", sample.sum);
    writer.BeginArray("buckets");
    for (const HistogramBucket& bucket : sample.buckets) {
      writer.BeginObject()
          .Field("upper", bucket.upper)
          .Field("count", bucket.count)
          .EndObject();
    }
    writer.EndArray();
    writer.EndObject();
  }
  writer.EndArray();
  writer.EndObject();
  return writer.str();
}

Registry& Registry::Global() {
  static Registry* registry = new Registry();  // Never destroyed: metrics
  return *registry;  // may be touched by detached threads during exit.
}

Counter& Registry::GetCounter(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>(name);
  return *slot;
}

Gauge& Registry::GetGauge(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>(name);
  return *slot;
}

Histogram& Registry::GetHistogram(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(name);
  return *slot;
}

const Counter* Registry::FindCounter(const std::string& name) const {
  MutexLock lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge* Registry::FindGauge(const std::string& name) const {
  MutexLock lock(mu_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : it->second.get();
}

const Histogram* Registry::FindHistogram(const std::string& name) const {
  MutexLock lock(mu_);
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

MetricsSnapshot Registry::Snapshot() const {
  MutexLock lock(mu_);
  MetricsSnapshot snapshot;
  snapshot.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.push_back({name, counter->Get()});
  }
  snapshot.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.push_back({name, gauge->Get()});
  }
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    MetricsSnapshot::HistogramSample sample;
    sample.name = name;
    sample.count = histogram->Count();
    sample.sum = histogram->Sum();
    for (int b = 0; b < Histogram::kNumBuckets; ++b) {
      const uint64_t count = histogram->BucketCount(b);
      if (count != 0) {
        sample.buckets.push_back({Histogram::BucketUpper(b), count});
      }
    }
    snapshot.histograms.push_back(std::move(sample));
  }
  return snapshot;
}

void Registry::ResetAll() {
  MutexLock lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

}  // namespace sqm::obs
