#include "obs/ledger.h"

#include "core/json.h"

namespace sqm::obs {

PrivacyLedger& PrivacyLedger::Global() {
  static PrivacyLedger* ledger = new PrivacyLedger();  // Never destroyed.
  return *ledger;
}

uint64_t PrivacyLedger::Append(LedgerEntry entry) {
  MutexLock lock(mu_);
  entry.sequence = next_sequence_++;
  entry.elapsed_seconds = static_cast<double>(NowMicros()) * 1e-6;
  const uint64_t sequence = entry.sequence;
  entries_.push_back(std::move(entry));
  return sequence;
}

std::vector<LedgerEntry> PrivacyLedger::Entries() const {
  MutexLock lock(mu_);
  return entries_;
}

std::vector<LedgerEntry> PrivacyLedger::EntriesSince(
    uint64_t sequence) const {
  MutexLock lock(mu_);
  std::vector<LedgerEntry> out;
  for (const LedgerEntry& entry : entries_) {
    if (entry.sequence >= sequence) out.push_back(entry);
  }
  return out;
}

size_t PrivacyLedger::size() const {
  MutexLock lock(mu_);
  return entries_.size();
}

uint64_t PrivacyLedger::NextSequence() const {
  MutexLock lock(mu_);
  return next_sequence_;
}

void PrivacyLedger::Clear() {
  MutexLock lock(mu_);
  entries_.clear();
}

std::string PrivacyLedger::ToJson(const std::vector<LedgerEntry>& entries) {
  JsonWriter writer;
  writer.BeginArray();
  for (const LedgerEntry& entry : entries) {
    writer.BeginObject()
        .Field("sequence", entry.sequence)
        .Field("elapsed_seconds", entry.elapsed_seconds)
        .Field("mechanism", entry.mechanism)
        .Field("label", entry.label)
        .Field("mu", entry.mu)
        .Field("gamma", entry.gamma)
        .Field("dimension", static_cast<uint64_t>(entry.dimension))
        .Field("l1_sensitivity", entry.l1_sensitivity)
        .Field("l2_sensitivity", entry.l2_sensitivity)
        .Field("sampling_rate", entry.sampling_rate)
        .Field("count", entry.count)
        .Field("epsilon", entry.epsilon)
        .Field("delta", entry.delta)
        .Field("best_alpha", entry.best_alpha)
        .Field("cumulative_epsilon", entry.cumulative_epsilon)
        .Field("contributors", static_cast<uint64_t>(entry.contributors))
        .Field("expected_contributors",
               static_cast<uint64_t>(entry.expected_contributors))
        .Field("deficit_mu", entry.deficit_mu)
        .EndObject();
  }
  writer.EndArray();
  return writer.str();
}

}  // namespace sqm::obs
