#ifndef SQM_OBS_TRACE_H_
#define SQM_OBS_TRACE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/status.h"
#include "core/sync.h"
#include "obs/obs.h"

namespace sqm::obs {

/// One trace record. Name/category are `const char*` and must point at
/// string literals (or other process-lifetime storage): events are buffered
/// raw and only stringified at export time, keeping the hot path
/// allocation-free.
struct TraceEvent {
  enum class Type : uint8_t {
    kComplete,    ///< A span: [ts, ts+dur).
    kInstant,     ///< A point event (fault injected, checkpoint resume, ...).
    kCounter,     ///< A sampled counter value (args[0].value).
    kFlowStart,   ///< Start of a cross-track/cross-process arrow (ph "s").
    kFlowFinish,  ///< End of the arrow with the same flow_id (ph "f").
  };

  struct Arg {
    const char* key = nullptr;
    int64_t value = 0;
  };
  static constexpr int kMaxArgs = 4;

  const char* name = "";
  const char* category = "sqm";
  uint64_t ts_micros = 0;
  uint64_t dur_micros = 0;
  /// Flow-binding id for kFlowStart/kFlowFinish pairs; Perfetto draws an
  /// arrow between the two events carrying the same id. TcpTransport uses
  /// the sender's net.send span id, propagated in the frame header, so the
  /// arrow crosses process boundaries.
  uint64_t flow_id = 0;
  int32_t track = 0;
  Type type = Type::kComplete;
  uint8_t num_args = 0;
  Arg args[kMaxArgs] = {};

  void AddArg(const char* key, int64_t value) {
    if (num_args < kMaxArgs) args[num_args++] = {key, value};
  }
};

/// Collects trace events into per-thread buffers and exports them as a
/// Chrome trace-event JSON document (loadable in Perfetto or
/// chrome://tracing — see docs/OBSERVABILITY.md).
///
/// Each thread appends to its own buffer under that buffer's mutex, so
/// concurrent parties never contend; Collect() walks all buffers. Tracks
/// map to Chrome thread ids: party threads call SetCurrentTrack(party) (or
/// use TrackScope) so each party renders as its own named row.
class Tracer {
 public:
  static Tracer& Global();

  /// Appends to the calling thread's buffer. No-op when the kill switch is
  /// off. Per-buffer capacity is bounded; overflow drops the event and
  /// counts it (see dropped_events).
  void Emit(const TraceEvent& event);

  /// Convenience: a point event on the current track, stamped now.
  void Instant(const char* name, const char* category = "sqm");
  void Instant(const TraceEvent& proto);

  /// Convenience: a counter sample on the current track, stamped now.
  void CounterValue(const char* name, int64_t value);

  /// Convenience: flow-arrow endpoints on the current track, stamped now.
  /// A kFlowStart and a kFlowFinish with the same `flow_id` render as one
  /// causal arrow, including across merged per-process documents.
  void FlowStart(const char* name, const char* category, uint64_t flow_id);
  void FlowFinish(const char* name, const char* category, uint64_t flow_id);

  /// Span-id allocation. Ids are drawn from a process-wide namespace that
  /// SetSpanIdNamespace rebases: sqm-party seeds it from
  /// (run_id, party, incarnation), so ids stay globally unique across the
  /// fleet AND across supervised restarts of the same party (a respawned
  /// incarnation must never reuse a pre-crash id — merged traces key flow
  /// arrows by id).
  static uint64_t NextSpanId();
  static void SetSpanIdNamespace(uint64_t base);

  /// Trace id for this process's run, carried in outgoing frame headers.
  /// 0 (default) means "no trace": frames go out without context.
  static void SetTraceId(uint64_t trace_id);
  static uint64_t TraceId();

  /// The innermost live Span on the calling thread (0 when none). This is
  /// what a `net.send` frame stamps as its span id.
  static uint64_t CurrentSpanId();
  /// Span maintains the thread-local span stack through these.
  static void PushSpan(uint64_t span_id);
  static void PopSpan();

  /// Names a track ("party 0", "driver") in the exported trace.
  void SetTrackName(int32_t track, const std::string& name);

  /// The calling thread's default track. Unset threads get a unique track
  /// id >= kFirstAnonymousTrack.
  static void SetCurrentTrack(int32_t track);
  static int32_t CurrentTrack();
  static constexpr int32_t kFirstAnonymousTrack = 1000;

  /// Snapshot of all buffered events across threads, in buffer order.
  std::vector<TraceEvent> Collect() const;
  size_t num_events() const;
  uint64_t dropped_events() const;

  /// Drops all buffered events (track names are kept).
  void Clear();

  /// Chrome trace-event JSON of everything collected so far:
  /// {"traceEvents":[...],"displayTimeUnit":"ms"}.
  std::string ToChromeTraceJson() const;

  /// Writes ToChromeTraceJson() to a file; false on I/O failure.
  bool WriteChromeTraceFile(const std::string& path) const;

  /// Where the fatal-path flush writes the active trace (default
  /// "sqm_crash_trace.json" in the working directory).
  void SetCrashDumpPath(std::string path);

  /// Flushes the active trace to the crash dump path if any events are
  /// buffered. Installed as a Logger fatal hook so SQM_CHECK failures and
  /// SQM_LOG(kFatal) leave a readable trace behind.
  void FlushForCrash() const;

 private:
  struct ThreadBuffer {
    Mutex mu;
    std::vector<TraceEvent> events SQM_GUARDED_BY(mu);
    uint64_t dropped SQM_GUARDED_BY(mu) = 0;
  };
  static constexpr size_t kMaxEventsPerBuffer = 1 << 18;

  Tracer();
  ThreadBuffer& BufferForThisThread();

  mutable Mutex mu_;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_ SQM_GUARDED_BY(mu_);
  std::map<int32_t, std::string> track_names_ SQM_GUARDED_BY(mu_);
  std::string crash_dump_path_ SQM_GUARDED_BY(mu_) = "sqm_crash_trace.json";
};

/// One per-process trace document for MergeChromeTraces: the Chrome JSON
/// text, the label for its process group, the clock offset (added to every
/// event timestamp, mapping the source process's steady clock onto the
/// merger's timeline — the coordinator estimates it per party at the
/// telemetry handshake), and the pid to merge under. Two documents may
/// share a pid: a party's pre- and post-crash incarnations merge onto ONE
/// party track, so a restart reads as a gap, not a new process.
struct TraceDoc {
  std::string name;
  std::string json;
  int64_t clock_offset_micros = 0;
  uint64_t pid = 0;  ///< 0: assigned from the document's index + 1.
};

/// Merges Chrome trace-event documents from several processes (each as
/// produced by ToChromeTraceJson / WriteChromeTraceFile) into one
/// timeline: document i's events are rewritten to its TraceDoc pid, every
/// "ts" is shifted by the document's clock offset, a process_name metadata
/// record labels the pid, and the event lists are concatenated. The
/// multi-process coordinator uses this to fold the n sqm-party trace files
/// plus its own into one clock-aligned file a single Perfetto tab can
/// read, with one labeled process group per party.
Result<std::string> MergeChromeTraces(const std::vector<TraceDoc>& traces);

/// Back-compat shape: (name, json) pairs, no clock alignment, pid = i + 1.
Result<std::string> MergeChromeTraces(
    const std::vector<std::pair<std::string, std::string>>& traces);

/// RAII span: measures construction-to-destruction on the current track.
/// Free (no clock read, no buffer touch) when the kill switch is off.
///
///   obs::Span span("bgw.mul", "mpc");
///   span.AddArg("round", round);
class Span {
 public:
  explicit Span(const char* name, const char* category = "sqm")
      : active_(Enabled()) {
    if (active_) {
      event_.name = name;
      event_.category = category;
      event_.track = Tracer::CurrentTrack();
      event_.ts_micros = NowMicros();
      id_ = Tracer::NextSpanId();
      Tracer::PushSpan(id_);
    }
  }

  /// Pins the span to an explicit track — how driver-mode protocol code
  /// (one thread simulating all parties) attributes work to party rows.
  Span(const char* name, const char* category, int32_t track)
      : active_(Enabled()) {
    if (active_) {
      event_.name = name;
      event_.category = category;
      event_.track = track;
      event_.ts_micros = NowMicros();
      id_ = Tracer::NextSpanId();
      Tracer::PushSpan(id_);
    }
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  void AddArg(const char* key, int64_t value) {
    if (active_) event_.AddArg(key, value);
  }

  /// This span's process-unique id (0 when the kill switch is off). The
  /// transport stamps it into outgoing frame headers so the receiver can
  /// link its net.recv span back here.
  uint64_t id() const { return id_; }

  ~Span() {
    if (active_) {
      Tracer::PopSpan();
      event_.dur_micros = NowMicros() - event_.ts_micros;
      Tracer::Global().Emit(event_);
    }
  }

 private:
  TraceEvent event_;
  uint64_t id_ = 0;
  bool active_;
};

/// RAII current-track override for a thread (party threads use this so
/// their spans land on the party's row).
class TrackScope {
 public:
  explicit TrackScope(int32_t track) : previous_(Tracer::CurrentTrack()) {
    Tracer::SetCurrentTrack(track);
  }
  TrackScope(const TrackScope&) = delete;
  TrackScope& operator=(const TrackScope&) = delete;
  ~TrackScope() { Tracer::SetCurrentTrack(previous_); }

 private:
  int32_t previous_;
};

}  // namespace sqm::obs

#endif  // SQM_OBS_TRACE_H_
