#ifndef SQM_OBS_TRACE_H_
#define SQM_OBS_TRACE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/status.h"
#include "core/sync.h"
#include "obs/obs.h"

namespace sqm::obs {

/// One trace record. Name/category are `const char*` and must point at
/// string literals (or other process-lifetime storage): events are buffered
/// raw and only stringified at export time, keeping the hot path
/// allocation-free.
struct TraceEvent {
  enum class Type : uint8_t {
    kComplete,  ///< A span: [ts, ts+dur).
    kInstant,   ///< A point event (fault injected, checkpoint resume, ...).
    kCounter,   ///< A sampled counter value (args[0].value).
  };

  struct Arg {
    const char* key = nullptr;
    int64_t value = 0;
  };
  static constexpr int kMaxArgs = 4;

  const char* name = "";
  const char* category = "sqm";
  uint64_t ts_micros = 0;
  uint64_t dur_micros = 0;
  int32_t track = 0;
  Type type = Type::kComplete;
  uint8_t num_args = 0;
  Arg args[kMaxArgs] = {};

  void AddArg(const char* key, int64_t value) {
    if (num_args < kMaxArgs) args[num_args++] = {key, value};
  }
};

/// Collects trace events into per-thread buffers and exports them as a
/// Chrome trace-event JSON document (loadable in Perfetto or
/// chrome://tracing — see docs/OBSERVABILITY.md).
///
/// Each thread appends to its own buffer under that buffer's mutex, so
/// concurrent parties never contend; Collect() walks all buffers. Tracks
/// map to Chrome thread ids: party threads call SetCurrentTrack(party) (or
/// use TrackScope) so each party renders as its own named row.
class Tracer {
 public:
  static Tracer& Global();

  /// Appends to the calling thread's buffer. No-op when the kill switch is
  /// off. Per-buffer capacity is bounded; overflow drops the event and
  /// counts it (see dropped_events).
  void Emit(const TraceEvent& event);

  /// Convenience: a point event on the current track, stamped now.
  void Instant(const char* name, const char* category = "sqm");
  void Instant(const TraceEvent& proto);

  /// Convenience: a counter sample on the current track, stamped now.
  void CounterValue(const char* name, int64_t value);

  /// Names a track ("party 0", "driver") in the exported trace.
  void SetTrackName(int32_t track, const std::string& name);

  /// The calling thread's default track. Unset threads get a unique track
  /// id >= kFirstAnonymousTrack.
  static void SetCurrentTrack(int32_t track);
  static int32_t CurrentTrack();
  static constexpr int32_t kFirstAnonymousTrack = 1000;

  /// Snapshot of all buffered events across threads, in buffer order.
  std::vector<TraceEvent> Collect() const;
  size_t num_events() const;
  uint64_t dropped_events() const;

  /// Drops all buffered events (track names are kept).
  void Clear();

  /// Chrome trace-event JSON of everything collected so far:
  /// {"traceEvents":[...],"displayTimeUnit":"ms"}.
  std::string ToChromeTraceJson() const;

  /// Writes ToChromeTraceJson() to a file; false on I/O failure.
  bool WriteChromeTraceFile(const std::string& path) const;

  /// Where the fatal-path flush writes the active trace (default
  /// "sqm_crash_trace.json" in the working directory).
  void SetCrashDumpPath(std::string path);

  /// Flushes the active trace to the crash dump path if any events are
  /// buffered. Installed as a Logger fatal hook so SQM_CHECK failures and
  /// SQM_LOG(kFatal) leave a readable trace behind.
  void FlushForCrash() const;

 private:
  struct ThreadBuffer {
    Mutex mu;
    std::vector<TraceEvent> events SQM_GUARDED_BY(mu);
    uint64_t dropped SQM_GUARDED_BY(mu) = 0;
  };
  static constexpr size_t kMaxEventsPerBuffer = 1 << 18;

  Tracer();
  ThreadBuffer& BufferForThisThread();

  mutable Mutex mu_;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_ SQM_GUARDED_BY(mu_);
  std::map<int32_t, std::string> track_names_ SQM_GUARDED_BY(mu_);
  std::string crash_dump_path_ SQM_GUARDED_BY(mu_) = "sqm_crash_trace.json";
};

/// Merges Chrome trace-event documents from several processes (each as
/// produced by ToChromeTraceJson / WriteChromeTraceFile) into one
/// timeline: document i's events are rewritten to pid = i + 1, a
/// process_name metadata record labels that pid with traces[i].first, and
/// the event lists are concatenated. The multi-process coordinator uses
/// this to fold the n sqm-party trace files plus its own into one file a
/// single Perfetto tab can read, with one labeled process group per
/// party. Timestamps are NOT re-aligned — every process stamps on its own
/// steady clock, so cross-process offsets reflect process start skew.
Result<std::string> MergeChromeTraces(
    const std::vector<std::pair<std::string, std::string>>& traces);

/// RAII span: measures construction-to-destruction on the current track.
/// Free (no clock read, no buffer touch) when the kill switch is off.
///
///   obs::Span span("bgw.mul", "mpc");
///   span.AddArg("round", round);
class Span {
 public:
  explicit Span(const char* name, const char* category = "sqm")
      : active_(Enabled()) {
    if (active_) {
      event_.name = name;
      event_.category = category;
      event_.track = Tracer::CurrentTrack();
      event_.ts_micros = NowMicros();
    }
  }

  /// Pins the span to an explicit track — how driver-mode protocol code
  /// (one thread simulating all parties) attributes work to party rows.
  Span(const char* name, const char* category, int32_t track)
      : active_(Enabled()) {
    if (active_) {
      event_.name = name;
      event_.category = category;
      event_.track = track;
      event_.ts_micros = NowMicros();
    }
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  void AddArg(const char* key, int64_t value) {
    if (active_) event_.AddArg(key, value);
  }

  ~Span() {
    if (active_) {
      event_.dur_micros = NowMicros() - event_.ts_micros;
      Tracer::Global().Emit(event_);
    }
  }

 private:
  TraceEvent event_;
  bool active_;
};

/// RAII current-track override for a thread (party threads use this so
/// their spans land on the party's row).
class TrackScope {
 public:
  explicit TrackScope(int32_t track) : previous_(Tracer::CurrentTrack()) {
    Tracer::SetCurrentTrack(track);
  }
  TrackScope(const TrackScope&) = delete;
  TrackScope& operator=(const TrackScope&) = delete;
  ~TrackScope() { Tracer::SetCurrentTrack(previous_); }

 private:
  int32_t previous_;
};

}  // namespace sqm::obs

#endif  // SQM_OBS_TRACE_H_
