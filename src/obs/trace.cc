#include "obs/trace.h"

#include <atomic>
#include <fstream>
#include <set>

#include "core/json.h"
#include "core/logging.h"

namespace sqm::obs {
namespace {

thread_local int32_t tl_track = -1;  // -1: not yet assigned.
std::atomic<int32_t> g_next_anonymous_track{Tracer::kFirstAnonymousTrack};

// Span ids start at 1 so 0 stays the "no span" sentinel on the wire;
// SetSpanIdNamespace rebases the counter per process incarnation.
std::atomic<uint64_t> g_next_span_id{1};
std::atomic<uint64_t> g_trace_id{0};

// The calling thread's stack of live Span ids (innermost last). Spans are
// strictly nested RAII scopes, so a bounded array suffices; overflow just
// stops tracking depth (ids keep flowing, CurrentSpanId degrades to the
// deepest tracked ancestor).
constexpr size_t kMaxSpanDepth = 64;
thread_local uint64_t tl_span_stack[kMaxSpanDepth];
thread_local size_t tl_span_depth = 0;

const char* PhaseLetter(TraceEvent::Type type) {
  switch (type) {
    case TraceEvent::Type::kComplete:
      return "X";
    case TraceEvent::Type::kInstant:
      return "i";
    case TraceEvent::Type::kCounter:
      return "C";
    case TraceEvent::Type::kFlowStart:
      return "s";
    case TraceEvent::Type::kFlowFinish:
      return "f";
  }
  return "X";
}

}  // namespace

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();  // Never destroyed: party threads
  return *tracer;  // may still emit while the process winds down.
}

Tracer::Tracer() {
  // SQM_CHECK failures and SQM_LOG(kFatal) flush the active trace so a
  // crashed run still leaves a loadable timeline behind.
  Logger::AddFatalHook([] { Tracer::Global().FlushForCrash(); });
}

Tracer::ThreadBuffer& Tracer::BufferForThisThread() {
  thread_local std::shared_ptr<ThreadBuffer> buffer = [this] {
    auto fresh = std::make_shared<ThreadBuffer>();
    MutexLock lock(mu_);
    buffers_.push_back(fresh);
    return fresh;
  }();
  return *buffer;
}

void Tracer::Emit(const TraceEvent& event) {
  if (!Enabled()) return;
  ThreadBuffer& buffer = BufferForThisThread();
  MutexLock lock(buffer.mu);
  if (buffer.events.size() >= kMaxEventsPerBuffer) {
    ++buffer.dropped;
    return;
  }
  buffer.events.push_back(event);
}

void Tracer::Instant(const char* name, const char* category) {
  if (!Enabled()) return;
  TraceEvent event;
  event.name = name;
  event.category = category;
  event.type = TraceEvent::Type::kInstant;
  event.track = CurrentTrack();
  event.ts_micros = NowMicros();
  Emit(event);
}

void Tracer::Instant(const TraceEvent& proto) {
  if (!Enabled()) return;
  TraceEvent event = proto;
  event.type = TraceEvent::Type::kInstant;
  event.track = CurrentTrack();
  event.ts_micros = NowMicros();
  Emit(event);
}

void Tracer::CounterValue(const char* name, int64_t value) {
  if (!Enabled()) return;
  TraceEvent event;
  event.name = name;
  event.type = TraceEvent::Type::kCounter;
  event.track = CurrentTrack();
  event.ts_micros = NowMicros();
  event.AddArg("value", value);
  Emit(event);
}

void Tracer::FlowStart(const char* name, const char* category,
                       uint64_t flow_id) {
  if (!Enabled() || flow_id == 0) return;
  TraceEvent event;
  event.name = name;
  event.category = category;
  event.type = TraceEvent::Type::kFlowStart;
  event.flow_id = flow_id;
  event.track = CurrentTrack();
  event.ts_micros = NowMicros();
  Emit(event);
}

void Tracer::FlowFinish(const char* name, const char* category,
                        uint64_t flow_id) {
  if (!Enabled() || flow_id == 0) return;
  TraceEvent event;
  event.name = name;
  event.category = category;
  event.type = TraceEvent::Type::kFlowFinish;
  event.flow_id = flow_id;
  event.track = CurrentTrack();
  event.ts_micros = NowMicros();
  Emit(event);
}

uint64_t Tracer::NextSpanId() {
  return g_next_span_id.fetch_add(1, std::memory_order_relaxed);
}

void Tracer::SetSpanIdNamespace(uint64_t base) {
  // Keep 0 reserved as the "no span" sentinel even for a zero base.
  g_next_span_id.store(base == 0 ? 1 : base, std::memory_order_relaxed);
}

void Tracer::SetTraceId(uint64_t trace_id) {
  g_trace_id.store(trace_id, std::memory_order_relaxed);
}

uint64_t Tracer::TraceId() {
  return g_trace_id.load(std::memory_order_relaxed);
}

uint64_t Tracer::CurrentSpanId() {
  return tl_span_depth == 0
             ? 0
             : tl_span_stack[tl_span_depth <= kMaxSpanDepth
                                 ? tl_span_depth - 1
                                 : kMaxSpanDepth - 1];
}

void Tracer::PushSpan(uint64_t span_id) {
  if (tl_span_depth < kMaxSpanDepth) tl_span_stack[tl_span_depth] = span_id;
  ++tl_span_depth;
}

void Tracer::PopSpan() {
  if (tl_span_depth > 0) --tl_span_depth;
}

void Tracer::SetTrackName(int32_t track, const std::string& name) {
  MutexLock lock(mu_);
  track_names_[track] = name;
}

void Tracer::SetCurrentTrack(int32_t track) { tl_track = track; }

int32_t Tracer::CurrentTrack() {
  if (tl_track < 0) {
    tl_track = g_next_anonymous_track.fetch_add(1,
                                                std::memory_order_relaxed);
  }
  return tl_track;
}

std::vector<TraceEvent> Tracer::Collect() const {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    MutexLock lock(mu_);
    buffers = buffers_;
  }
  std::vector<TraceEvent> events;
  for (const auto& buffer : buffers) {
    MutexLock lock(buffer->mu);
    events.insert(events.end(), buffer->events.begin(),
                  buffer->events.end());
  }
  return events;
}

size_t Tracer::num_events() const {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    MutexLock lock(mu_);
    buffers = buffers_;
  }
  size_t total = 0;
  for (const auto& buffer : buffers) {
    MutexLock lock(buffer->mu);
    total += buffer->events.size();
  }
  return total;
}

uint64_t Tracer::dropped_events() const {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    MutexLock lock(mu_);
    buffers = buffers_;
  }
  uint64_t total = 0;
  for (const auto& buffer : buffers) {
    MutexLock lock(buffer->mu);
    total += buffer->dropped;
  }
  return total;
}

void Tracer::Clear() {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    MutexLock lock(mu_);
    buffers = buffers_;
  }
  for (const auto& buffer : buffers) {
    MutexLock lock(buffer->mu);
    buffer->events.clear();
    buffer->dropped = 0;
  }
}

std::string Tracer::ToChromeTraceJson() const {
  const std::vector<TraceEvent> events = Collect();
  std::map<int32_t, std::string> track_names;
  {
    MutexLock lock(mu_);
    track_names = track_names_;
  }

  JsonWriter writer;
  writer.BeginObject();
  writer.BeginArray("traceEvents");
  // Metadata first: one thread_name record per named track, so Perfetto
  // labels the party rows.
  for (const auto& [track, name] : track_names) {
    writer.BeginObject()
        .Field("name", "thread_name")
        .Field("ph", "M")
        .Field("pid", uint64_t{1})
        .Field("tid", static_cast<int64_t>(track));
    writer.Key("args").BeginObject().Field("name", name).EndObject();
    writer.EndObject();
  }
  for (const TraceEvent& event : events) {
    writer.BeginObject()
        .Field("name", event.name)
        .Field("cat", event.category)
        .Field("ph", PhaseLetter(event.type))
        .Field("ts", event.ts_micros)
        .Field("pid", uint64_t{1})
        .Field("tid", static_cast<int64_t>(event.track));
    if (event.type == TraceEvent::Type::kComplete) {
      writer.Field("dur", event.dur_micros);
    }
    if (event.type == TraceEvent::Type::kInstant) {
      writer.Field("s", "t");  // Thread-scoped instant.
    }
    if (event.type == TraceEvent::Type::kFlowStart ||
        event.type == TraceEvent::Type::kFlowFinish) {
      writer.Field("id", event.flow_id);
      if (event.type == TraceEvent::Type::kFlowFinish) {
        // Bind the arrowhead to the enclosing slice ("bp":"e"), the form
        // Perfetto renders as an arrow into the receiving span.
        writer.Field("bp", "e");
      }
    }
    if (event.num_args > 0) {
      writer.Key("args").BeginObject();
      for (int i = 0; i < event.num_args; ++i) {
        writer.Field(event.args[i].key, event.args[i].value);
      }
      writer.EndObject();
    }
    writer.EndObject();
  }
  writer.EndArray();
  writer.Field("displayTimeUnit", "ms");
  writer.EndObject();
  return writer.str();
}

bool Tracer::WriteChromeTraceFile(const std::string& path) const {
  std::ofstream out(path, std::ios::out | std::ios::trunc);
  if (!out) return false;
  out << ToChromeTraceJson();
  return static_cast<bool>(out);
}

void Tracer::SetCrashDumpPath(std::string path) {
  MutexLock lock(mu_);
  crash_dump_path_ = std::move(path);
}

void Tracer::FlushForCrash() const {
  if (num_events() == 0) return;
  std::string path;
  {
    MutexLock lock(mu_);
    path = crash_dump_path_;
  }
  WriteChromeTraceFile(path);
}

namespace {

/// Re-emits a parsed JSON value verbatim. Exact integers go out through
/// the integer path so u64 timestamps survive the round trip.
void EmitJsonValue(JsonWriter& writer, const JsonValue& value) {
  switch (value.kind) {
    case JsonValue::Kind::kNull:
      // The writer has no null; our own traces never contain one, and a
      // foreign null degrades to false rather than corrupting the doc.
      writer.Value(false);
      break;
    case JsonValue::Kind::kBool:
      writer.Value(value.bool_value);
      break;
    case JsonValue::Kind::kNumber:
      if (value.is_integer && !value.is_negative) {
        writer.Value(value.uint_value);
      } else if (value.is_integer) {
        writer.Value(value.int_value);
      } else {
        writer.Value(value.number);
      }
      break;
    case JsonValue::Kind::kString:
      writer.Value(value.string_value);
      break;
    case JsonValue::Kind::kArray:
      writer.BeginArray();
      for (const JsonValue& item : value.items) {
        EmitJsonValue(writer, item);
      }
      writer.EndArray();
      break;
    case JsonValue::Kind::kObject:
      writer.BeginObject();
      for (const auto& [key, member] : value.members) {
        writer.Key(key);
        EmitJsonValue(writer, member);
      }
      writer.EndObject();
      break;
  }
}

}  // namespace

Result<std::string> MergeChromeTraces(const std::vector<TraceDoc>& traces) {
  // Parse every document first and collect the flow-start ids: a crashed
  // process can lose its in-memory `ph:"s"` events while the receivers'
  // durably-written `ph:"f"` halves survive, and a finish without a start
  // is unrenderable — such orphans are pruned from the merged timeline.
  std::vector<JsonValue> docs;
  docs.reserve(traces.size());
  std::set<uint64_t> flow_start_ids;
  for (const TraceDoc& trace : traces) {
    SQM_ASSIGN_OR_RETURN(JsonValue doc, ParseJson(trace.json));
    const JsonValue* events = doc.Find("traceEvents");
    if (events == nullptr || events->kind != JsonValue::Kind::kArray) {
      return Status::InvalidArgument(
          "trace \"" + trace.name +
          "\" has no traceEvents array (not a Chrome trace document)");
    }
    for (const JsonValue& event : events->items) {
      if (event.kind != JsonValue::Kind::kObject) {
        return Status::InvalidArgument("trace \"" + trace.name +
                                       "\" has a non-object trace event");
      }
      const JsonValue* ph = event.Find("ph");
      const JsonValue* id = event.Find("id");
      if (ph != nullptr && ph->string_value == "s" && id != nullptr) {
        flow_start_ids.insert(id->uint_value);
      }
    }
    docs.push_back(std::move(doc));
  }

  JsonWriter writer;
  writer.BeginObject();
  writer.BeginArray("traceEvents");
  std::set<uint64_t> labeled_pids;
  for (size_t i = 0; i < traces.size(); ++i) {
    const uint64_t pid =
        traces[i].pid != 0 ? traces[i].pid : static_cast<uint64_t>(i) + 1;
    // Label the process group so Perfetto shows "party 0", "coordinator"
    // instead of bare pids. A pid shared by several documents (one party's
    // successive incarnations) is labeled once, by its first document.
    if (labeled_pids.insert(pid).second) {
      writer.BeginObject()
          .Field("name", "process_name")
          .Field("ph", "M")
          .Field("pid", pid)
          .Field("tid", uint64_t{0});
      writer.Key("args").BeginObject().Field("name", traces[i].name);
      writer.EndObject().EndObject();
    }

    const JsonValue* events = docs[i].Find("traceEvents");
    const int64_t offset = traces[i].clock_offset_micros;
    for (const JsonValue& event : events->items) {
      const JsonValue* ph = event.Find("ph");
      if (ph != nullptr && ph->string_value == "f") {
        const JsonValue* id = event.Find("id");
        if (id == nullptr || flow_start_ids.count(id->uint_value) == 0) {
          continue;  // Orphaned finish: its start died with the sender.
        }
      }
      writer.BeginObject();
      for (const auto& [key, member] : event.members) {
        if (key == "pid") {
          writer.Field("pid", pid);
          continue;
        }
        // Clock alignment: shift every timestamp by the document's offset
        // so all processes land on the merger's timeline. Metadata records
        // carry no ts; durations are clock-rate-local and stay put.
        if (key == "ts" && offset != 0 &&
            member.kind == JsonValue::Kind::kNumber && member.is_integer) {
          const int64_t ts = member.is_negative
                                 ? member.int_value
                                 : static_cast<int64_t>(member.uint_value);
          writer.Field("ts", ts + offset);
          continue;
        }
        writer.Key(key);
        EmitJsonValue(writer, member);
      }
      writer.EndObject();
    }
  }
  writer.EndArray();
  writer.Field("displayTimeUnit", "ms");
  writer.EndObject();
  return writer.str();
}

Result<std::string> MergeChromeTraces(
    const std::vector<std::pair<std::string, std::string>>& traces) {
  std::vector<TraceDoc> docs(traces.size());
  for (size_t i = 0; i < traces.size(); ++i) {
    docs[i].name = traces[i].first;
    docs[i].json = traces[i].second;
  }
  return MergeChromeTraces(docs);
}

}  // namespace sqm::obs
