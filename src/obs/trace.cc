#include "obs/trace.h"

#include <atomic>
#include <fstream>

#include "core/json.h"
#include "core/logging.h"

namespace sqm::obs {
namespace {

thread_local int32_t tl_track = -1;  // -1: not yet assigned.
std::atomic<int32_t> g_next_anonymous_track{Tracer::kFirstAnonymousTrack};

const char* PhaseLetter(TraceEvent::Type type) {
  switch (type) {
    case TraceEvent::Type::kComplete:
      return "X";
    case TraceEvent::Type::kInstant:
      return "i";
    case TraceEvent::Type::kCounter:
      return "C";
  }
  return "X";
}

}  // namespace

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();  // Never destroyed: party threads
  return *tracer;  // may still emit while the process winds down.
}

Tracer::Tracer() {
  // SQM_CHECK failures and SQM_LOG(kFatal) flush the active trace so a
  // crashed run still leaves a loadable timeline behind.
  Logger::AddFatalHook([] { Tracer::Global().FlushForCrash(); });
}

Tracer::ThreadBuffer& Tracer::BufferForThisThread() {
  thread_local std::shared_ptr<ThreadBuffer> buffer = [this] {
    auto fresh = std::make_shared<ThreadBuffer>();
    MutexLock lock(mu_);
    buffers_.push_back(fresh);
    return fresh;
  }();
  return *buffer;
}

void Tracer::Emit(const TraceEvent& event) {
  if (!Enabled()) return;
  ThreadBuffer& buffer = BufferForThisThread();
  MutexLock lock(buffer.mu);
  if (buffer.events.size() >= kMaxEventsPerBuffer) {
    ++buffer.dropped;
    return;
  }
  buffer.events.push_back(event);
}

void Tracer::Instant(const char* name, const char* category) {
  if (!Enabled()) return;
  TraceEvent event;
  event.name = name;
  event.category = category;
  event.type = TraceEvent::Type::kInstant;
  event.track = CurrentTrack();
  event.ts_micros = NowMicros();
  Emit(event);
}

void Tracer::Instant(const TraceEvent& proto) {
  if (!Enabled()) return;
  TraceEvent event = proto;
  event.type = TraceEvent::Type::kInstant;
  event.track = CurrentTrack();
  event.ts_micros = NowMicros();
  Emit(event);
}

void Tracer::CounterValue(const char* name, int64_t value) {
  if (!Enabled()) return;
  TraceEvent event;
  event.name = name;
  event.type = TraceEvent::Type::kCounter;
  event.track = CurrentTrack();
  event.ts_micros = NowMicros();
  event.AddArg("value", value);
  Emit(event);
}

void Tracer::SetTrackName(int32_t track, const std::string& name) {
  MutexLock lock(mu_);
  track_names_[track] = name;
}

void Tracer::SetCurrentTrack(int32_t track) { tl_track = track; }

int32_t Tracer::CurrentTrack() {
  if (tl_track < 0) {
    tl_track = g_next_anonymous_track.fetch_add(1,
                                                std::memory_order_relaxed);
  }
  return tl_track;
}

std::vector<TraceEvent> Tracer::Collect() const {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    MutexLock lock(mu_);
    buffers = buffers_;
  }
  std::vector<TraceEvent> events;
  for (const auto& buffer : buffers) {
    MutexLock lock(buffer->mu);
    events.insert(events.end(), buffer->events.begin(),
                  buffer->events.end());
  }
  return events;
}

size_t Tracer::num_events() const {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    MutexLock lock(mu_);
    buffers = buffers_;
  }
  size_t total = 0;
  for (const auto& buffer : buffers) {
    MutexLock lock(buffer->mu);
    total += buffer->events.size();
  }
  return total;
}

uint64_t Tracer::dropped_events() const {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    MutexLock lock(mu_);
    buffers = buffers_;
  }
  uint64_t total = 0;
  for (const auto& buffer : buffers) {
    MutexLock lock(buffer->mu);
    total += buffer->dropped;
  }
  return total;
}

void Tracer::Clear() {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    MutexLock lock(mu_);
    buffers = buffers_;
  }
  for (const auto& buffer : buffers) {
    MutexLock lock(buffer->mu);
    buffer->events.clear();
    buffer->dropped = 0;
  }
}

std::string Tracer::ToChromeTraceJson() const {
  const std::vector<TraceEvent> events = Collect();
  std::map<int32_t, std::string> track_names;
  {
    MutexLock lock(mu_);
    track_names = track_names_;
  }

  JsonWriter writer;
  writer.BeginObject();
  writer.BeginArray("traceEvents");
  // Metadata first: one thread_name record per named track, so Perfetto
  // labels the party rows.
  for (const auto& [track, name] : track_names) {
    writer.BeginObject()
        .Field("name", "thread_name")
        .Field("ph", "M")
        .Field("pid", uint64_t{1})
        .Field("tid", static_cast<int64_t>(track));
    writer.Key("args").BeginObject().Field("name", name).EndObject();
    writer.EndObject();
  }
  for (const TraceEvent& event : events) {
    writer.BeginObject()
        .Field("name", event.name)
        .Field("cat", event.category)
        .Field("ph", PhaseLetter(event.type))
        .Field("ts", event.ts_micros)
        .Field("pid", uint64_t{1})
        .Field("tid", static_cast<int64_t>(event.track));
    if (event.type == TraceEvent::Type::kComplete) {
      writer.Field("dur", event.dur_micros);
    }
    if (event.type == TraceEvent::Type::kInstant) {
      writer.Field("s", "t");  // Thread-scoped instant.
    }
    if (event.num_args > 0) {
      writer.Key("args").BeginObject();
      for (int i = 0; i < event.num_args; ++i) {
        writer.Field(event.args[i].key, event.args[i].value);
      }
      writer.EndObject();
    }
    writer.EndObject();
  }
  writer.EndArray();
  writer.Field("displayTimeUnit", "ms");
  writer.EndObject();
  return writer.str();
}

bool Tracer::WriteChromeTraceFile(const std::string& path) const {
  std::ofstream out(path, std::ios::out | std::ios::trunc);
  if (!out) return false;
  out << ToChromeTraceJson();
  return static_cast<bool>(out);
}

void Tracer::SetCrashDumpPath(std::string path) {
  MutexLock lock(mu_);
  crash_dump_path_ = std::move(path);
}

void Tracer::FlushForCrash() const {
  if (num_events() == 0) return;
  std::string path;
  {
    MutexLock lock(mu_);
    path = crash_dump_path_;
  }
  WriteChromeTraceFile(path);
}

namespace {

/// Re-emits a parsed JSON value verbatim. Exact integers go out through
/// the integer path so u64 timestamps survive the round trip.
void EmitJsonValue(JsonWriter& writer, const JsonValue& value) {
  switch (value.kind) {
    case JsonValue::Kind::kNull:
      // The writer has no null; our own traces never contain one, and a
      // foreign null degrades to false rather than corrupting the doc.
      writer.Value(false);
      break;
    case JsonValue::Kind::kBool:
      writer.Value(value.bool_value);
      break;
    case JsonValue::Kind::kNumber:
      if (value.is_integer && !value.is_negative) {
        writer.Value(value.uint_value);
      } else if (value.is_integer) {
        writer.Value(value.int_value);
      } else {
        writer.Value(value.number);
      }
      break;
    case JsonValue::Kind::kString:
      writer.Value(value.string_value);
      break;
    case JsonValue::Kind::kArray:
      writer.BeginArray();
      for (const JsonValue& item : value.items) {
        EmitJsonValue(writer, item);
      }
      writer.EndArray();
      break;
    case JsonValue::Kind::kObject:
      writer.BeginObject();
      for (const auto& [key, member] : value.members) {
        writer.Key(key);
        EmitJsonValue(writer, member);
      }
      writer.EndObject();
      break;
  }
}

}  // namespace

Result<std::string> MergeChromeTraces(
    const std::vector<std::pair<std::string, std::string>>& traces) {
  JsonWriter writer;
  writer.BeginObject();
  writer.BeginArray("traceEvents");
  for (size_t i = 0; i < traces.size(); ++i) {
    const uint64_t pid = static_cast<uint64_t>(i) + 1;
    // Label the process group so Perfetto shows "party 0", "coordinator"
    // instead of bare pids.
    writer.BeginObject()
        .Field("name", "process_name")
        .Field("ph", "M")
        .Field("pid", pid)
        .Field("tid", uint64_t{0});
    writer.Key("args").BeginObject().Field("name", traces[i].first);
    writer.EndObject().EndObject();

    SQM_ASSIGN_OR_RETURN(const JsonValue doc, ParseJson(traces[i].second));
    const JsonValue* events = doc.Find("traceEvents");
    if (events == nullptr || events->kind != JsonValue::Kind::kArray) {
      return Status::InvalidArgument(
          "trace \"" + traces[i].first +
          "\" has no traceEvents array (not a Chrome trace document)");
    }
    for (const JsonValue& event : events->items) {
      if (event.kind != JsonValue::Kind::kObject) {
        return Status::InvalidArgument("trace \"" + traces[i].first +
                                       "\" has a non-object trace event");
      }
      writer.BeginObject();
      for (const auto& [key, member] : event.members) {
        if (key == "pid") {
          writer.Field("pid", pid);
          continue;
        }
        writer.Key(key);
        EmitJsonValue(writer, member);
      }
      writer.EndObject();
    }
  }
  writer.EndArray();
  writer.Field("displayTimeUnit", "ms");
  writer.EndObject();
  return writer.str();
}

}  // namespace sqm::obs
