#ifndef SQM_OBS_LEDGER_H_
#define SQM_OBS_LEDGER_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/sync.h"
#include "obs/obs.h"

namespace sqm::obs {

/// One privacy spend: a mechanism release the accountant was charged for,
/// with enough context (noise parameter, quantization scale, dropout
/// deficit) to audit the run's privacy story after the fact. Entries are
/// report data — they are recorded regardless of the kill switch (the
/// switch only gates forwarding to the global ledger singleton).
struct LedgerEntry {
  uint64_t sequence = 0;          ///< Global monotone id (stamped on append).
  double elapsed_seconds = 0.0;   ///< Since process trace epoch.
  std::string mechanism;  ///< "gaussian" | "skellam" | "skellam_dropout" | "custom".
  std::string label;      ///< Caller context, e.g. "pca_release", "dropout_topup".

  double mu = 0.0;      ///< Noise parameter (sigma for gaussian, mu for Skellam).
  double gamma = 0.0;   ///< Quantization scale in effect, 0 when not applicable.
  size_t dimension = 0; ///< Released vector dimension, 0 when unknown.
  double l1_sensitivity = 0.0;
  double l2_sensitivity = 0.0;
  double sampling_rate = 1.0;
  uint64_t count = 1;   ///< Sequential repetitions charged at once.

  double epsilon = 0.0;     ///< Standalone (epsilon, delta) of this spend.
  double delta = 0.0;       ///< 0 when no delta context was configured.
  double best_alpha = 0.0;  ///< Minimizing Renyi order for the standalone bound.
  double cumulative_epsilon = 0.0;  ///< Accountant total after this entry.

  size_t contributors = 0;           ///< Surviving noise contributors.
  size_t expected_contributors = 0;  ///< Configured contributors.
  double deficit_mu = 0.0;           ///< Configured minus realized mu (dropouts).
};

/// Process-wide, thread-safe timeline of privacy spends. PrivacyAccountant
/// forwards every Add* here when the kill switch is on; tests and tools
/// query it as an event stream ordered by sequence number.
class PrivacyLedger {
 public:
  static PrivacyLedger& Global();

  /// Stamps sequence + elapsed time and appends. Returns the sequence.
  uint64_t Append(LedgerEntry entry);

  std::vector<LedgerEntry> Entries() const;

  /// Entries with sequence >= `sequence` — incremental consumption.
  std::vector<LedgerEntry> EntriesSince(uint64_t sequence) const;

  size_t size() const;

  /// Sequence the next Append will get; pass to EntriesSince later to read
  /// only what a bracketed operation spent.
  uint64_t NextSequence() const;

  /// Drops buffered entries. Sequence numbers keep increasing so
  /// EntriesSince cursors held across a Clear stay valid.
  void Clear();

  static std::string ToJson(const std::vector<LedgerEntry>& entries);

 private:
  mutable Mutex mu_;
  std::vector<LedgerEntry> entries_ SQM_GUARDED_BY(mu_);
  uint64_t next_sequence_ SQM_GUARDED_BY(mu_) = 0;
};

}  // namespace sqm::obs

#endif  // SQM_OBS_LEDGER_H_
