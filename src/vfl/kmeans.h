#ifndef SQM_VFL_KMEANS_H_
#define SQM_VFL_KMEANS_H_

#include <cstdint>
#include <vector>

#include "core/status.h"
#include "math/matrix.h"

namespace sqm {

/// K-means clustering and its local-DP variant — the Table III comparison
/// row (Li, Wang & Li [5], "Differentially private vertical federated
/// clustering").
///
/// The paper is explicit about why SQM does NOT subsume this task: Lloyd's
/// assignment step computes an arg-min over distances, and min() is not a
/// polynomial, so the Skellam-quantization pipeline does not apply
/// ("we leave this extension of SQM as future work", Section VII). What a
/// VFL deployment can do today is the local-DP route this module provides:
/// perturb the raw columns (Algorithm 4), then cluster the noisy database
/// — with exactly the utility gap relative to non-private clustering that
/// motivates looking for distributed-DP alternatives.
///
/// Note the *centroid-distance* polynomial ||x - c||^2 IS polynomial in x
/// for public centroids, so individual Lloyd statistics (cluster sums and
/// counts for a FIXED assignment) are SQM-computable; only the private
/// arg-min is out of reach. KMeansLloydStep documents that boundary.

struct KMeansOptions {
  size_t k = 3;
  size_t max_iterations = 50;
  double tolerance = 1e-6;
  uint64_t seed = 42;
};

struct KMeansResult {
  Matrix centroids;                 ///< k x d.
  std::vector<size_t> assignments;  ///< Size m.
  double inertia = 0.0;  ///< Sum of squared distances to own centroid.
  size_t iterations = 0;
  double sigma = 0.0;  ///< Local-DP noise std (local-DP variant only).
};

/// Plain Lloyd's algorithm (k-means++-style farthest-point seeding).
Result<KMeansResult> KMeans(const Matrix& x, const KMeansOptions& options);

/// The local-DP baseline: perturb X entry-wise with the Algorithm-4
/// Gaussian calibrated for (epsilon, delta) at the given record norm
/// bound, run Lloyd on the noisy data, then report centroids/assignments
/// evaluated against the clean data (post-processing; the assignments are
/// a function of the noisy release only).
Result<KMeansResult> LocalDpKMeans(const Matrix& x,
                                   const KMeansOptions& options,
                                   double epsilon, double delta,
                                   double record_norm_bound = 1.0);

/// One Lloyd update for a *fixed public assignment*: per-cluster sums and
/// counts. These are degree-1 polynomials of the records (sums of x over
/// an assignment-indicated subset), i.e. the part of k-means SQM could
/// evaluate privately today. Returns the k x d matrix of new centroids
/// (empty clusters keep their previous centroid).
Result<Matrix> KMeansLloydStep(const Matrix& x,
                               const std::vector<size_t>& assignments,
                               const Matrix& previous_centroids);

/// Clustering utility against ground truth: fraction of record pairs on
/// which the clustering agrees with the reference (Rand index).
double RandIndex(const std::vector<size_t>& a, const std::vector<size_t>& b);

}  // namespace sqm

#endif  // SQM_VFL_KMEANS_H_
