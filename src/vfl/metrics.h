#ifndef SQM_VFL_METRICS_H_
#define SQM_VFL_METRICS_H_

#include <vector>

#include "math/matrix.h"
#include "vfl/dataset.h"

namespace sqm {

/// Evaluation metrics the paper reports.

/// P(y = 1 | x) under logistic weights w (exact sigmoid).
double PredictProbability(const std::vector<double>& weights,
                          const std::vector<double>& features);

/// 0/1 accuracy of the 0.5-threshold classifier on `data`.
double Accuracy(const std::vector<double>& weights, const VflDataset& data);

/// Mean cross-entropy loss on `data` (clamped away from log(0)).
double CrossEntropyLoss(const std::vector<double>& weights,
                        const VflDataset& data);

/// PCA utility ||X V||_F^2 (Figure 2's y-axis). Thin wrapper over
/// CapturedVariance with the name the paper uses.
double PcaUtility(const Matrix& x, const Matrix& subspace);

}  // namespace sqm

#endif  // SQM_VFL_METRICS_H_
