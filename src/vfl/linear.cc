#include "vfl/linear.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/baseline.h"
#include "core/logging.h"
#include "core/sensitivity.h"
#include "dp/gaussian.h"
#include "dp/skellam.h"
#include "math/linalg.h"
#include "sampling/gaussian_sampler.h"
#include "sampling/rng.h"
#include "vfl/dataset.h"

namespace sqm {
namespace {

Status ValidateCommon(const RegressionDataset& train,
                      const RegressionDataset& test,
                      const LinearOptions& options) {
  if (train.targets.size() != train.num_records() ||
      test.targets.size() != test.num_records()) {
    return Status::InvalidArgument("regression data needs one target/row");
  }
  if (train.num_features() != test.num_features()) {
    return Status::InvalidArgument("train/test feature dimension mismatch");
  }
  if (train.num_records() == 0) {
    return Status::InvalidArgument("empty training set");
  }
  if (options.sample_rate <= 0.0 || options.sample_rate > 1.0) {
    return Status::InvalidArgument("sample_rate must be in (0, 1]");
  }
  if (options.rounds == 0) {
    return Status::InvalidArgument("rounds must be > 0");
  }
  if (options.learning_rate <= 0.0 || options.weight_clip <= 0.0) {
    return Status::InvalidArgument(
        "learning_rate and weight_clip must be positive");
  }
  if (options.l2_penalty < 0.0) {
    return Status::InvalidArgument("l2_penalty must be >= 0");
  }
  return Status::OK();
}

/// Normalizes features to ||x||_2 <= 1 and targets to |y| <= 1.
RegressionDataset NormalizedCopy(const RegressionDataset& data) {
  RegressionDataset out = data;
  NormalizeRecords(out.features, 1.0);
  double max_target = 0.0;
  for (double y : out.targets) max_target = std::max(max_target,
                                                     std::fabs(y));
  if (max_target > 1.0) {
    for (double& y : out.targets) y /= max_target;
  }
  return out;
}

std::vector<double> InitialWeights(size_t d, double clip, Rng& rng) {
  GaussianSampler gaussian(0.1);
  std::vector<double> w(d);
  for (auto& wi : w) wi = gaussian.Sample(rng);
  ClipNorm(w, clip);
  return w;
}

std::vector<size_t> PoissonBatch(size_t m, double q, Rng& rng) {
  std::vector<size_t> batch;
  for (size_t i = 0; i < m; ++i) {
    if (rng.NextBernoulli(q)) batch.push_back(i);
  }
  return batch;
}

LinearResult FinishResult(std::vector<double> weights,
                          const RegressionDataset& train,
                          const RegressionDataset& test) {
  LinearResult result;
  result.train_rmse = Rmse(weights, train);
  result.test_rmse = Rmse(weights, test);
  result.weights = std::move(weights);
  return result;
}

}  // namespace

double Rmse(const std::vector<double>& weights,
            const RegressionDataset& data) {
  SQM_CHECK(weights.size() == data.num_features());
  double acc = 0.0;
  for (size_t i = 0; i < data.num_records(); ++i) {
    const double err = Dot(weights, data.features.Row(i)) -
                       data.targets[i];
    acc += err * err;
  }
  return std::sqrt(acc / static_cast<double>(data.num_records()));
}

PolynomialVector BuildLinearGradientPolynomial(
    const std::vector<double>& weights) {
  const size_t d = weights.size();
  const size_t target_var = d;
  PolynomialVector f;
  for (size_t t = 0; t < d; ++t) {
    Polynomial p;
    for (size_t j = 0; j < d; ++j) {
      if (weights[j] == 0.0) continue;
      p.AddTerm(Monomial(weights[j], {{j, 1}, {t, 1}}));
    }
    p.AddTerm(Monomial(-1.0, {{target_var, 1}, {t, 1}}));
    f.AddDimension(std::move(p));
  }
  return f;
}

Result<LinearResult> TrainSqmLinear(const RegressionDataset& train,
                                    const RegressionDataset& test,
                                    const LinearOptions& options) {
  SQM_RETURN_NOT_OK(ValidateCommon(train, test, options));
  const RegressionDataset clean_train = NormalizedCopy(train);
  const RegressionDataset clean_test = NormalizedCopy(test);
  const size_t m = clean_train.num_records();
  const size_t d = clean_train.num_features();
  const size_t num_clients =
      options.num_clients == 0 ? d + 1 : options.num_clients;

  // Sensitivity of one quantized release from the generic Lemma-4 bound:
  // with ||x||, ||w|| <= 1 and |y| <= 1, ||f(w,(x,y))||_2 <= |<w,x>| + |y|
  // <= 2.
  Rng probe(options.seed);
  const PolynomialVector probe_poly =
      BuildLinearGradientPolynomial(InitialWeights(d, options.weight_clip,
                                                   probe));
  const SensitivityBound sens = PolynomialSensitivity(
      probe_poly, options.gamma, /*record_norm_bound=*/std::sqrt(2.0),
      /*max_f_l2=*/2.0);
  SQM_ASSIGN_OR_RETURN(
      const double mu,
      CalibrateSkellamMuSubsampled(options.epsilon, options.delta, sens.l1,
                                   sens.l2, options.sample_rate,
                                   options.rounds));

  Rng rng(options.seed);
  std::vector<double> w = InitialWeights(d, options.weight_clip, rng);
  const double expected_batch =
      std::max(1.0, options.sample_rate * static_cast<double>(m));

  LinearResult accum;
  accum.mu = mu;
  for (size_t round = 0; round < options.rounds; ++round) {
    const std::vector<size_t> batch = PoissonBatch(m, options.sample_rate,
                                                   rng);
    if (batch.empty()) continue;

    Matrix batch_db(batch.size(), d + 1);
    for (size_t b = 0; b < batch.size(); ++b) {
      const size_t row = batch[b];
      for (size_t j = 0; j < d; ++j) {
        batch_db(b, j) = clean_train.features(row, j);
      }
      batch_db(b, d) = clean_train.targets[row];
    }

    const PolynomialVector f = BuildLinearGradientPolynomial(w);
    SqmOptions sqm_options;
    sqm_options.gamma = options.gamma;
    sqm_options.mu = mu;
    sqm_options.num_clients = num_clients;
    sqm_options.backend = options.backend;
    sqm_options.seed = options.seed ^ (0x11ea5 + round);
    sqm_options.max_f_l2 = 2.0;
    SqmEvaluator evaluator(sqm_options);
    SQM_ASSIGN_OR_RETURN(const SqmReport report,
                         evaluator.Evaluate(f, batch_db));

    for (size_t j = 0; j < d; ++j) {
      // Private gradient estimate plus the public ridge term.
      const double grad =
          report.estimate[j] / expected_batch + options.l2_penalty * w[j];
      w[j] -= options.learning_rate * grad;
    }
    ClipNorm(w, options.weight_clip);
  }
  LinearResult result = FinishResult(std::move(w), clean_train, clean_test);
  result.mu = accum.mu;
  return result;
}

Result<LinearResult> TrainDpSgdLinear(const RegressionDataset& train,
                                      const RegressionDataset& test,
                                      const LinearOptions& options) {
  SQM_RETURN_NOT_OK(ValidateCommon(train, test, options));
  const RegressionDataset clean_train = NormalizedCopy(train);
  const RegressionDataset clean_test = NormalizedCopy(test);
  const size_t m = clean_train.num_records();
  const size_t d = clean_train.num_features();

  constexpr double kClip = 2.0;  // ||grad|| <= 2 under the norm bounds.
  SQM_ASSIGN_OR_RETURN(
      const double z,
      CalibrateDpSgdNoise(options.epsilon, options.delta,
                          options.sample_rate, options.rounds));

  Rng rng(options.seed);
  GaussianSampler noise(z * kClip);
  std::vector<double> w = InitialWeights(d, options.weight_clip, rng);
  const double expected_batch =
      std::max(1.0, options.sample_rate * static_cast<double>(m));

  for (size_t round = 0; round < options.rounds; ++round) {
    const std::vector<size_t> batch = PoissonBatch(m, options.sample_rate,
                                                   rng);
    std::vector<double> grad_sum(d, 0.0);
    for (size_t row : batch) {
      const std::vector<double> x = clean_train.features.Row(row);
      const double err = Dot(w, x) - clean_train.targets[row];
      std::vector<double> g(d);
      for (size_t j = 0; j < d; ++j) g[j] = err * x[j];
      ClipNorm(g, kClip);
      for (size_t j = 0; j < d; ++j) grad_sum[j] += g[j];
    }
    for (size_t j = 0; j < d; ++j) {
      grad_sum[j] += noise.Sample(rng);
      const double grad =
          grad_sum[j] / expected_batch + options.l2_penalty * w[j];
      w[j] -= options.learning_rate * grad;
    }
    ClipNorm(w, options.weight_clip);
  }
  LinearResult result = FinishResult(std::move(w), clean_train, clean_test);
  result.sigma = z * kClip;
  return result;
}

Result<LinearResult> TrainLocalDpLinear(const RegressionDataset& train,
                                        const RegressionDataset& test,
                                        const LinearOptions& options) {
  SQM_RETURN_NOT_OK(ValidateCommon(train, test, options));
  const RegressionDataset clean_train = NormalizedCopy(train);
  const RegressionDataset clean_test = NormalizedCopy(test);
  const size_t m = clean_train.num_records();
  const size_t d = clean_train.num_features();

  const double record_bound = std::sqrt(2.0);
  SQM_ASSIGN_OR_RETURN(
      const double sigma,
      CalibrateLocalDpSigma(options.epsilon, options.delta, record_bound));

  Matrix full(m, d + 1);
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < d; ++j) full(i, j) = clean_train.features(i, j);
    full(i, d) = clean_train.targets[i];
  }
  const Matrix noisy =
      PerturbDatabaseLocally(full, sigma, options.seed ^ 0x11ea5);

  Rng rng(options.seed);
  std::vector<double> w = InitialWeights(d, options.weight_clip, rng);
  constexpr size_t kConvergenceIters = 300;
  for (size_t iter = 0; iter < kConvergenceIters; ++iter) {
    std::vector<double> grad(d, 0.0);
    for (size_t i = 0; i < m; ++i) {
      double u = 0.0;
      for (size_t j = 0; j < d; ++j) u += w[j] * noisy(i, j);
      const double err = u - noisy(i, d);
      for (size_t j = 0; j < d; ++j) grad[j] += err * noisy(i, j);
    }
    for (size_t j = 0; j < d; ++j) {
      w[j] -= options.learning_rate *
              (grad[j] / static_cast<double>(m) +
               options.l2_penalty * w[j]);
    }
    ClipNorm(w, options.weight_clip);
  }
  LinearResult result = FinishResult(std::move(w), clean_train, clean_test);
  result.sigma = sigma;
  return result;
}

Result<LinearResult> TrainNonPrivateLinear(const RegressionDataset& train,
                                           const RegressionDataset& test,
                                           const LinearOptions& options) {
  SQM_RETURN_NOT_OK(ValidateCommon(train, test, options));
  const RegressionDataset clean_train = NormalizedCopy(train);
  const RegressionDataset clean_test = NormalizedCopy(test);
  const size_t m = clean_train.num_records();
  const size_t d = clean_train.num_features();

  Rng rng(options.seed);
  std::vector<double> w = InitialWeights(d, options.weight_clip, rng);
  for (size_t round = 0; round < options.rounds; ++round) {
    const std::vector<size_t> batch = PoissonBatch(m, options.sample_rate,
                                                   rng);
    if (batch.empty()) continue;
    std::vector<double> grad(d, 0.0);
    for (size_t row : batch) {
      const std::vector<double> x = clean_train.features.Row(row);
      const double err = Dot(w, x) - clean_train.targets[row];
      for (size_t j = 0; j < d; ++j) grad[j] += err * x[j];
    }
    for (size_t j = 0; j < d; ++j) {
      w[j] -= options.learning_rate *
              (grad[j] / static_cast<double>(batch.size()) +
               options.l2_penalty * w[j]);
    }
    ClipNorm(w, options.weight_clip);
  }
  return FinishResult(std::move(w), clean_train, clean_test);
}

RegressionDataset GenerateRegressionDataset(
    const SyntheticRegressionSpec& spec) {
  SQM_CHECK(spec.rows >= 2 && spec.cols >= 1);
  Rng rng(spec.seed);
  GaussianSampler gaussian(1.0);

  std::vector<double> w_star(spec.cols);
  for (auto& w : w_star) w = gaussian.Sample(rng);
  const double norm = Norm2(w_star);
  for (auto& w : w_star) w /= norm;

  RegressionDataset data;
  data.name = spec.name;
  data.features = Matrix(spec.rows, spec.cols);
  data.targets.resize(spec.rows);
  for (size_t i = 0; i < spec.rows; ++i) {
    for (size_t j = 0; j < spec.cols; ++j) {
      data.features(i, j) = gaussian.Sample(rng);
    }
    data.targets[i] = Dot(w_star, data.features.Row(i)) +
                      spec.noise_std * gaussian.Sample(rng);
  }
  NormalizeRecords(data.features, 1.0);
  double max_target = 0.0;
  for (double y : data.targets) max_target = std::max(max_target,
                                                      std::fabs(y));
  if (max_target > 1.0) {
    for (double& y : data.targets) y /= max_target;
  }
  return data;
}

Result<RegressionSplit> SplitRegression(const RegressionDataset& data,
                                        double train_fraction,
                                        uint64_t seed) {
  if (train_fraction <= 0.0 || train_fraction >= 1.0) {
    return Status::InvalidArgument("train_fraction must be in (0, 1)");
  }
  const size_t m = data.num_records();
  if (m < 2) {
    return Status::InvalidArgument("need >= 2 records to split");
  }
  std::vector<size_t> idx(m);
  std::iota(idx.begin(), idx.end(), 0);
  Rng rng(seed);
  for (size_t i = m; i > 1; --i) {
    std::swap(idx[i - 1], idx[rng.NextBounded(i)]);
  }
  const size_t train_count = std::max<size_t>(
      1, static_cast<size_t>(std::floor(static_cast<double>(m) *
                                        train_fraction)));
  RegressionSplit split;
  auto take = [&](size_t begin, size_t end, const char* suffix) {
    RegressionDataset part;
    part.name = data.name + suffix;
    std::vector<size_t> rows(idx.begin() + begin, idx.begin() + end);
    part.features = data.features.SelectRows(rows);
    part.targets.reserve(rows.size());
    for (size_t r : rows) part.targets.push_back(data.targets[r]);
    return part;
  };
  split.train = take(0, train_count, "/train");
  split.test = take(train_count, m, "/test");
  return split;
}

}  // namespace sqm
