#include "vfl/csv.h"

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

namespace sqm {
namespace {

std::vector<std::string> SplitLine(const std::string& line, char delimiter) {
  std::vector<std::string> fields;
  std::string field;
  std::istringstream stream(line);
  while (std::getline(stream, field, delimiter)) {
    fields.push_back(field);
  }
  // Trailing delimiter produces an empty final field in most CSV dialects.
  if (!line.empty() && line.back() == delimiter) fields.emplace_back();
  return fields;
}

Result<double> ParseDouble(const std::string& field, size_t line_number) {
  char* end = nullptr;
  const double value = std::strtod(field.c_str(), &end);
  if (end == field.c_str() || *end != '\0') {
    return Status::IoError("line " + std::to_string(line_number) +
                           ": cannot parse numeric field '" + field + "'");
  }
  return value;
}

}  // namespace

Result<VflDataset> LoadCsvDataset(const std::string& path,
                                  const CsvOptions& options) {
  std::ifstream file(path);
  if (!file) {
    return Status::IoError("cannot open '" + path + "'");
  }

  std::vector<std::vector<double>> rows;
  std::vector<int> labels;
  std::string line;
  size_t line_number = 0;
  size_t expected_fields = 0;
  while (std::getline(file, line)) {
    ++line_number;
    if (line_number == 1 && options.has_header) continue;
    if (line.empty()) continue;
    const std::vector<std::string> fields =
        SplitLine(line, options.delimiter);
    if (expected_fields == 0) {
      expected_fields = fields.size();
      if (options.label_column >= 0 &&
          static_cast<size_t>(options.label_column) >= expected_fields) {
        return Status::InvalidArgument("label_column out of range");
      }
    } else if (fields.size() != expected_fields) {
      return Status::IoError("line " + std::to_string(line_number) +
                             ": expected " +
                             std::to_string(expected_fields) + " fields, got " +
                             std::to_string(fields.size()));
    }
    std::vector<double> row;
    row.reserve(expected_fields);
    for (size_t j = 0; j < fields.size(); ++j) {
      SQM_ASSIGN_OR_RETURN(const double value,
                           ParseDouble(fields[j], line_number));
      if (options.label_column >= 0 &&
          j == static_cast<size_t>(options.label_column)) {
        labels.push_back(static_cast<int>(value));
      } else {
        row.push_back(value);
      }
    }
    rows.push_back(std::move(row));
  }
  if (rows.empty()) {
    return Status::IoError("'" + path + "' contains no data rows");
  }

  VflDataset data;
  data.name = path;
  data.features = Matrix(rows.size(), rows[0].size());
  for (size_t i = 0; i < rows.size(); ++i) {
    data.features.SetRow(i, rows[i]);
  }
  data.labels = std::move(labels);
  return data;
}

Status SaveCsvDataset(const VflDataset& data, const std::string& path,
                      const CsvOptions& options) {
  std::ofstream file(path);
  if (!file) {
    return Status::IoError("cannot open '" + path + "' for writing");
  }
  if (options.has_header) {
    for (size_t j = 0; j < data.num_features(); ++j) {
      if (j > 0) file << options.delimiter;
      file << "f" << j;
    }
    if (data.has_labels()) file << options.delimiter << "label";
    file << "\n";
  }
  for (size_t i = 0; i < data.num_records(); ++i) {
    for (size_t j = 0; j < data.num_features(); ++j) {
      if (j > 0) file << options.delimiter;
      file << data.features(i, j);
    }
    if (data.has_labels()) file << options.delimiter << data.labels[i];
    file << "\n";
  }
  if (!file) {
    return Status::IoError("write to '" + path + "' failed");
  }
  return Status::OK();
}

}  // namespace sqm
