#include "vfl/dataset.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/logging.h"
#include "math/linalg.h"
#include "sampling/rng.h"

namespace sqm {
namespace {

/// Seeded Fisher-Yates permutation of [0, m).
std::vector<size_t> ShuffledIndices(size_t m, uint64_t seed) {
  std::vector<size_t> idx(m);
  std::iota(idx.begin(), idx.end(), 0);
  Rng rng(seed);
  for (size_t i = m; i > 1; --i) {
    const size_t j = rng.NextBounded(i);
    std::swap(idx[i - 1], idx[j]);
  }
  return idx;
}

VflDataset TakeRows(const VflDataset& data, const std::vector<size_t>& rows,
                    const std::string& suffix) {
  VflDataset out;
  out.name = data.name + suffix;
  out.features = data.features.SelectRows(rows);
  if (data.has_labels()) {
    out.labels.reserve(rows.size());
    for (size_t r : rows) out.labels.push_back(data.labels[r]);
  }
  return out;
}

}  // namespace

double MaxRecordNorm(const Matrix& x) {
  double max_norm = 0.0;
  for (size_t i = 0; i < x.rows(); ++i) {
    max_norm = std::max(max_norm, Norm2(x.Row(i)));
  }
  return max_norm;
}

void NormalizeRecords(Matrix& x, double target_norm) {
  SQM_CHECK(target_norm > 0.0);
  const double max_norm = MaxRecordNorm(x);
  if (max_norm > target_norm) {
    x *= target_norm / max_norm;
  }
}

Result<TrainTestSplit> SplitTrainTest(const VflDataset& data,
                                      double train_fraction, uint64_t seed) {
  if (train_fraction <= 0.0 || train_fraction >= 1.0) {
    return Status::InvalidArgument("train_fraction must be in (0, 1)");
  }
  const size_t m = data.num_records();
  if (m < 2) {
    return Status::InvalidArgument("need >= 2 records to split");
  }
  const std::vector<size_t> idx = ShuffledIndices(m, seed);
  const size_t train_count = std::max<size_t>(
      1, static_cast<size_t>(std::floor(static_cast<double>(m) *
                                        train_fraction)));
  TrainTestSplit split;
  split.train = TakeRows(
      data, std::vector<size_t>(idx.begin(), idx.begin() + train_count),
      "/train");
  split.test = TakeRows(
      data, std::vector<size_t>(idx.begin() + train_count, idx.end()),
      "/test");
  return split;
}

Result<VflDataset> SubsampleRecords(const VflDataset& data, size_t count,
                                    uint64_t seed) {
  if (count == 0 || count > data.num_records()) {
    return Status::InvalidArgument(
        "subsample count must be in [1, num_records]");
  }
  const std::vector<size_t> idx = ShuffledIndices(data.num_records(), seed);
  return TakeRows(data,
                  std::vector<size_t>(idx.begin(), idx.begin() + count),
                  "/sub");
}

}  // namespace sqm
