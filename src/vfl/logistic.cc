#include "vfl/logistic.h"

#include <algorithm>
#include <cmath>

#include "core/baseline.h"
#include "core/logging.h"
#include "core/sensitivity.h"
#include "dp/gaussian.h"
#include "dp/skellam.h"
#include "math/linalg.h"
#include "poly/taylor.h"
#include "sampling/gaussian_sampler.h"
#include "sampling/rng.h"
#include "vfl/metrics.h"

namespace sqm {
namespace {

Status ValidateCommon(const VflDataset& train, const VflDataset& test,
                      const LogisticOptions& options) {
  if (!train.has_labels() || !test.has_labels()) {
    return Status::InvalidArgument("logistic regression needs labels");
  }
  if (train.num_features() != test.num_features()) {
    return Status::InvalidArgument("train/test feature dimension mismatch");
  }
  if (train.num_records() == 0) {
    return Status::InvalidArgument("empty training set");
  }
  if (options.sample_rate <= 0.0 || options.sample_rate > 1.0) {
    return Status::InvalidArgument("sample_rate must be in (0, 1]");
  }
  if (options.rounds == 0) {
    return Status::InvalidArgument("rounds must be > 0");
  }
  if (options.learning_rate <= 0.0) {
    return Status::InvalidArgument("learning_rate must be positive");
  }
  if (options.weight_clip <= 0.0) {
    return Status::InvalidArgument("weight_clip must be positive");
  }
  return Status::OK();
}

/// Normalized copies so that ||x||_2 <= 1 per record, as the paper assumes.
VflDataset NormalizedCopy(const VflDataset& data) {
  VflDataset out = data;
  NormalizeRecords(out.features, 1.0);
  return out;
}

/// Random unit-ball initial weights, clipped like the paper ("the server
/// randomly initializes the model weight w, and clips ||w||_2 to 1").
std::vector<double> InitialWeights(size_t d, double clip, Rng& rng) {
  GaussianSampler gaussian(0.1);
  std::vector<double> w(d);
  for (auto& wi : w) wi = gaussian.Sample(rng);
  ClipNorm(w, clip);
  return w;
}

/// Poisson batch selection with shared randomness (clients agree on the
/// membership; the server never learns it).
std::vector<size_t> PoissonBatch(size_t m, double q, Rng& rng) {
  std::vector<size_t> batch;
  for (size_t i = 0; i < m; ++i) {
    if (rng.NextBernoulli(q)) batch.push_back(i);
  }
  return batch;
}

LogisticResult FinishResult(std::vector<double> weights,
                            const VflDataset& train, const VflDataset& test) {
  LogisticResult result;
  result.train_accuracy = Accuracy(weights, train);
  result.test_accuracy = Accuracy(weights, test);
  result.weights = std::move(weights);
  return result;
}

}  // namespace

PolynomialVector BuildLogisticGradientPolynomial(
    const std::vector<double>& weights, size_t taylor_order) {
  SQM_CHECK(taylor_order == 1);  // Higher orders explode combinatorially;
                                 // the paper uses H = 1 (Section V-B).
  const size_t d = weights.size();
  const size_t label_var = d;
  PolynomialVector f;
  for (size_t t = 0; t < d; ++t) {
    Polynomial p;
    // (1/2) x_t.
    p.AddTerm(Monomial::Power(0.5, t, 1));
    // sum_j (w_j / 4) x_j x_t  (j == t merges into x_t^2).
    for (size_t j = 0; j < d; ++j) {
      if (weights[j] == 0.0) continue;
      p.AddTerm(Monomial(weights[j] / 4.0, {{j, 1}, {t, 1}}));
    }
    // -y x_t.
    p.AddTerm(Monomial(-1.0, {{label_var, 1}, {t, 1}}));
    f.AddDimension(std::move(p));
  }
  return f;
}

Result<LogisticResult> TrainSqmLogistic(const VflDataset& train,
                                        const VflDataset& test,
                                        const LogisticOptions& options) {
  SQM_RETURN_NOT_OK(ValidateCommon(train, test, options));
  if (options.taylor_order != 1) {
    return Status::Unimplemented(
        "SQM logistic regression supports Taylor order 1 only (higher "
        "orders make the expanded polynomial intractable; see Section V-B)");
  }
  const VflDataset clean_train = NormalizedCopy(train);
  const VflDataset clean_test = NormalizedCopy(test);
  const size_t m = clean_train.num_records();
  const size_t d = clean_train.num_features();
  const size_t num_clients =
      options.num_clients == 0 ? d + 1 : options.num_clients;

  // Lemma 7: sensitivity of one quantized gradient-sum release, then the
  // subsampled + composed calibration of mu.
  const SensitivityBound sens =
      LogisticGradientSensitivity(options.gamma, d);
  SQM_ASSIGN_OR_RETURN(
      const double mu,
      CalibrateSkellamMuSubsampled(options.epsilon, options.delta, sens.l1,
                                   sens.l2, options.sample_rate,
                                   options.rounds));

  Rng rng(options.seed);
  std::vector<double> w =
      InitialWeights(d, options.weight_clip, rng);
  const double expected_batch =
      std::max(1.0, options.sample_rate * static_cast<double>(m));

  LogisticResult result;
  result.mu = mu;
  for (size_t round = 0; round < options.rounds; ++round) {
    const std::vector<size_t> batch = PoissonBatch(m, options.sample_rate,
                                                   rng);
    // An empty batch still consumes a round of the privacy budget but
    // produces a pure-noise gradient; the paper's algorithm behaves the
    // same. We skip the update (noise-only steps are wasted work).
    if (batch.empty()) continue;

    // Assemble the batch database: feature columns plus the label column.
    Matrix batch_db(batch.size(), d + 1);
    for (size_t b = 0; b < batch.size(); ++b) {
      const size_t row = batch[b];
      for (size_t j = 0; j < d; ++j) {
        batch_db(b, j) = clean_train.features(row, j);
      }
      batch_db(b, d) = static_cast<double>(clean_train.labels[row]);
    }

    const PolynomialVector f = BuildLogisticGradientPolynomial(w, 1);

    SqmOptions sqm_options;
    sqm_options.gamma = options.gamma;
    sqm_options.mu = mu;
    sqm_options.num_clients = num_clients;
    sqm_options.backend = options.backend;
    sqm_options.network_latency_seconds = options.network_latency_seconds;
    sqm_options.seed = options.seed ^ (0x10c0 + round);
    sqm_options.max_f_l2 = 0.75;
    SqmEvaluator evaluator(sqm_options);
    SQM_ASSIGN_OR_RETURN(SqmReport report,
                         evaluator.Evaluate(f, batch_db));

    for (size_t j = 0; j < d; ++j) {
      w[j] -= options.learning_rate * report.estimate[j] / expected_batch;
    }
    ClipNorm(w, options.weight_clip);

    result.timing.quantize_seconds += report.timing.quantize_seconds;
    result.timing.noise_sampling_seconds +=
        report.timing.noise_sampling_seconds;
    result.timing.mpc_compute_seconds += report.timing.mpc_compute_seconds;
    result.timing.simulated_network_seconds +=
        report.timing.simulated_network_seconds;
    result.timing.noise_injection_seconds +=
        report.timing.noise_injection_seconds;
    result.network.messages += report.network.messages;
    result.network.field_elements += report.network.field_elements;
    result.network.rounds += report.network.rounds;
  }

  LogisticResult finished = FinishResult(std::move(w), clean_train,
                                         clean_test);
  finished.mu = result.mu;
  finished.timing = result.timing;
  finished.network = result.network;
  return finished;
}

Result<LogisticResult> TrainDpSgd(const VflDataset& train,
                                  const VflDataset& test,
                                  const LogisticOptions& options) {
  SQM_RETURN_NOT_OK(ValidateCommon(train, test, options));
  const VflDataset clean_train = NormalizedCopy(train);
  const VflDataset clean_test = NormalizedCopy(test);
  const size_t m = clean_train.num_records();
  const size_t d = clean_train.num_features();

  // Per-record gradients are clipped to C = 1; the calibrated noise
  // multiplier z gives per-round Gaussian noise N(0, z^2 C^2 I).
  constexpr double kClip = 1.0;
  SQM_ASSIGN_OR_RETURN(
      const double z,
      CalibrateDpSgdNoise(options.epsilon, options.delta,
                          options.sample_rate, options.rounds));

  Rng rng(options.seed);
  GaussianSampler noise(z * kClip);
  std::vector<double> w = InitialWeights(d, options.weight_clip, rng);
  const double expected_batch =
      std::max(1.0, options.sample_rate * static_cast<double>(m));

  for (size_t round = 0; round < options.rounds; ++round) {
    const std::vector<size_t> batch = PoissonBatch(m, options.sample_rate,
                                                   rng);
    std::vector<double> grad_sum(d, 0.0);
    for (size_t row : batch) {
      const std::vector<double> x = clean_train.features.Row(row);
      const double err =
          Sigmoid(Dot(w, x)) - static_cast<double>(clean_train.labels[row]);
      std::vector<double> g(d);
      for (size_t j = 0; j < d; ++j) g[j] = err * x[j];
      ClipNorm(g, kClip);
      for (size_t j = 0; j < d; ++j) grad_sum[j] += g[j];
    }
    for (size_t j = 0; j < d; ++j) {
      grad_sum[j] += noise.Sample(rng);
      w[j] -= options.learning_rate * grad_sum[j] / expected_batch;
    }
    ClipNorm(w, options.weight_clip);
  }
  LogisticResult result = FinishResult(std::move(w), clean_train,
                                       clean_test);
  result.sigma = z * kClip;
  return result;
}

Result<LogisticResult> TrainApproxPoly(const VflDataset& train,
                                       const VflDataset& test,
                                       const LogisticOptions& options) {
  SQM_RETURN_NOT_OK(ValidateCommon(train, test, options));
  if (options.taylor_order != 1 && options.taylor_order != 3 &&
      options.taylor_order != 5 && options.taylor_order != 7) {
    return Status::InvalidArgument("taylor_order must be 1, 3, 5 or 7");
  }
  const VflDataset clean_train = NormalizedCopy(train);
  const VflDataset clean_test = NormalizedCopy(test);
  const size_t m = clean_train.num_records();
  const size_t d = clean_train.num_features();

  // The per-record polynomial gradient has ||f(w, (x, y))||_2 <= 3/4 when
  // ||x||, ||w|| <= 1 (Section V-B), so no clipping is needed; the noise is
  // a Gaussian with std z * 3/4.
  constexpr double kSensitivity = 0.75;
  SQM_ASSIGN_OR_RETURN(
      const double z,
      CalibrateDpSgdNoise(options.epsilon, options.delta,
                          options.sample_rate, options.rounds));

  Rng rng(options.seed);
  GaussianSampler noise(z * kSensitivity);
  std::vector<double> w = InitialWeights(d, options.weight_clip, rng);
  const double expected_batch =
      std::max(1.0, options.sample_rate * static_cast<double>(m));

  for (size_t round = 0; round < options.rounds; ++round) {
    const std::vector<size_t> batch = PoissonBatch(m, options.sample_rate,
                                                   rng);
    std::vector<double> grad_sum(d, 0.0);
    for (size_t row : batch) {
      const std::vector<double> x = clean_train.features.Row(row);
      const double err =
          SigmoidTaylor(Dot(w, x), options.taylor_order) -
          static_cast<double>(clean_train.labels[row]);
      for (size_t j = 0; j < d; ++j) grad_sum[j] += err * x[j];
    }
    for (size_t j = 0; j < d; ++j) {
      grad_sum[j] += noise.Sample(rng);
      w[j] -= options.learning_rate * grad_sum[j] / expected_batch;
    }
    ClipNorm(w, options.weight_clip);
  }
  LogisticResult result = FinishResult(std::move(w), clean_train,
                                       clean_test);
  result.sigma = z * kSensitivity;
  return result;
}

Result<LogisticResult> TrainLocalDpLogistic(const VflDataset& train,
                                            const VflDataset& test,
                                            const LogisticOptions& options) {
  SQM_RETURN_NOT_OK(ValidateCommon(train, test, options));
  const VflDataset clean_train = NormalizedCopy(train);
  const VflDataset clean_test = NormalizedCopy(test);
  const size_t m = clean_train.num_records();
  const size_t d = clean_train.num_features();

  // Algorithm 4: perturb the full record (features + label), record norm
  // bound sqrt(1^2 + 1^2).
  const double record_bound = std::sqrt(2.0);
  SQM_ASSIGN_OR_RETURN(
      const double sigma,
      CalibrateLocalDpSigma(options.epsilon, options.delta, record_bound));

  Matrix full(m, d + 1);
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < d; ++j) full(i, j) = clean_train.features(i, j);
    full(i, d) = static_cast<double>(clean_train.labels[i]);
  }
  const Matrix noisy =
      PerturbDatabaseLocally(full, sigma, options.seed ^ 0x10ca1);

  // Train on the noisy database until convergence (full-batch GD; the
  // noisy labels are continuous regression targets for the logistic loss).
  Rng rng(options.seed);
  std::vector<double> w = InitialWeights(d, options.weight_clip, rng);
  constexpr size_t kConvergenceIters = 300;
  for (size_t iter = 0; iter < kConvergenceIters; ++iter) {
    std::vector<double> grad(d, 0.0);
    for (size_t i = 0; i < m; ++i) {
      double u = 0.0;
      for (size_t j = 0; j < d; ++j) u += w[j] * noisy(i, j);
      const double err = Sigmoid(u) - noisy(i, d);
      for (size_t j = 0; j < d; ++j) grad[j] += err * noisy(i, j);
    }
    for (size_t j = 0; j < d; ++j) {
      w[j] -= options.learning_rate * grad[j] / static_cast<double>(m);
    }
    ClipNorm(w, options.weight_clip);
  }
  LogisticResult result = FinishResult(std::move(w), clean_train,
                                       clean_test);
  result.sigma = sigma;
  return result;
}

Result<LogisticResult> TrainNonPrivateLogistic(
    const VflDataset& train, const VflDataset& test,
    const LogisticOptions& options) {
  SQM_RETURN_NOT_OK(ValidateCommon(train, test, options));
  const VflDataset clean_train = NormalizedCopy(train);
  const VflDataset clean_test = NormalizedCopy(test);
  const size_t m = clean_train.num_records();
  const size_t d = clean_train.num_features();

  Rng rng(options.seed);
  std::vector<double> w = InitialWeights(d, options.weight_clip, rng);
  for (size_t round = 0; round < options.rounds; ++round) {
    const std::vector<size_t> batch = PoissonBatch(m, options.sample_rate,
                                                   rng);
    if (batch.empty()) continue;
    std::vector<double> grad(d, 0.0);
    for (size_t row : batch) {
      const std::vector<double> x = clean_train.features.Row(row);
      const double err =
          Sigmoid(Dot(w, x)) - static_cast<double>(clean_train.labels[row]);
      for (size_t j = 0; j < d; ++j) grad[j] += err * x[j];
    }
    for (size_t j = 0; j < d; ++j) {
      w[j] -= options.learning_rate * grad[j] /
              static_cast<double>(batch.size());
    }
    ClipNorm(w, options.weight_clip);
  }
  return FinishResult(std::move(w), clean_train, clean_test);
}

}  // namespace sqm
