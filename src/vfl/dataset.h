#ifndef SQM_VFL_DATASET_H_
#define SQM_VFL_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/status.h"
#include "math/matrix.h"

namespace sqm {

/// A labelled (or unlabelled) dataset as the VFL applications consume it:
/// records are rows; in the vertical-partitioning model column j belongs to
/// client j (labels, when present, belong to one additional label client).
struct VflDataset {
  std::string name;
  Matrix features;           ///< m x d.
  std::vector<int> labels;   ///< Size m for classification tasks, else empty.

  size_t num_records() const { return features.rows(); }
  size_t num_features() const { return features.cols(); }
  bool has_labels() const { return !labels.empty(); }
};

/// Largest record L2 norm in `x`.
double MaxRecordNorm(const Matrix& x);

/// Scales the whole matrix by one global factor so every record satisfies
/// ||x||_2 <= target_norm (the paper's norm precondition; a global factor
/// preserves the principal subspace and the linear separability structure).
/// No-op when already within the bound.
void NormalizeRecords(Matrix& x, double target_norm);

/// Deterministic train/test split: the first floor(m * train_fraction)
/// records after a seeded shuffle go to train.
struct TrainTestSplit {
  VflDataset train;
  VflDataset test;
};
Result<TrainTestSplit> SplitTrainTest(const VflDataset& data,
                                      double train_fraction, uint64_t seed);

/// Uniform subsample without replacement of `count` records (the paper's
/// "randomly sample 10% of the datasets as the training data" step).
Result<VflDataset> SubsampleRecords(const VflDataset& data, size_t count,
                                    uint64_t seed);

}  // namespace sqm

#endif  // SQM_VFL_DATASET_H_
