#include "vfl/pca.h"

#include <chrono>
#include <cmath>

#include "core/baseline.h"
#include "core/logging.h"
#include "core/quantize.h"
#include "mpc/field.h"
#include "core/sensitivity.h"
#include "dp/gaussian.h"
#include "dp/skellam.h"
#include "math/eigen.h"
#include "math/linalg.h"
#include "sampling/gaussian_sampler.h"
#include "sampling/skellam_sampler.h"
#include "vfl/dataset.h"
#include "vfl/metrics.h"

namespace sqm {
namespace {

Status ValidateOptions(const Matrix& x, const PcaOptions& options) {
  if (x.rows() == 0 || x.cols() == 0) {
    return Status::InvalidArgument("empty data matrix");
  }
  if (options.k == 0 || options.k > x.cols()) {
    return Status::InvalidArgument("k must be in [1, n]");
  }
  if (options.epsilon <= 0.0 || options.delta <= 0.0 ||
      options.delta >= 1.0) {
    return Status::InvalidArgument(
        "need epsilon > 0 and delta in (0, 1)");
  }
  if (options.record_norm_bound <= 0.0) {
    return Status::InvalidArgument("record_norm_bound must be positive");
  }
  return Status::OK();
}

Matrix NormalizedCopy(const Matrix& x, double bound) {
  Matrix out = x;
  NormalizeRecords(out, bound);
  return out;
}

Result<PcaResult> FinishFromCovariance(const Matrix& x,
                                       const Matrix& covariance, size_t k,
                                       uint64_t seed) {
  TopKOptions eig;
  eig.seed = seed ^ 0xe16e;
  SQM_ASSIGN_OR_RETURN(Matrix subspace, TopKEigenvectors(covariance, k, eig));
  PcaResult result;
  result.utility = PcaUtility(x, subspace);
  result.subspace = std::move(subspace);
  return result;
}

double SecondsSince(const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

Result<PcaResult> SqmPca(const Matrix& x, const PcaOptions& options) {
  SQM_RETURN_NOT_OK(ValidateOptions(x, options));
  const Matrix clean = NormalizedCopy(x, options.record_norm_bound);
  const size_t n = clean.cols();
  const size_t num_clients =
      options.num_clients == 0 ? n : options.num_clients;
  if (num_clients < 2 || num_clients > n) {
    return Status::InvalidArgument("num_clients must be in [2, n]");
  }

  // Lemma 5 sensitivity and the single-release Skellam calibration.
  const SensitivityBound sens =
      PcaSensitivity(options.gamma, options.record_norm_bound, n);
  SQM_ASSIGN_OR_RETURN(
      const double mu,
      CalibrateSkellamMuSingleRelease(options.epsilon, options.delta,
                                      sens.l1, sens.l2));
  SQM_RETURN_NOT_OK(CheckFieldCapacity(
      clean.rows(), options.gamma, /*degree=*/2,
      options.record_norm_bound * options.record_norm_bound, mu));

  if (options.backend == MpcBackend::kBgw) {
    // Faithful path: the generic SQM evaluator over the upper-triangle
    // outer-product polynomial, run through the BGW engine.
    PolynomialVector f;
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i; j < n; ++j) {
        Polynomial p;
        p.AddTerm(i == j ? Monomial::Power(1.0, i, 2)
                         : Monomial(1.0, {{i, 1}, {j, 1}}));
        f.AddDimension(std::move(p));
      }
    }
    SqmOptions sqm_options;
    sqm_options.gamma = options.gamma;
    sqm_options.mu = mu;
    sqm_options.num_clients = num_clients;
    sqm_options.backend = MpcBackend::kBgw;
    sqm_options.network_latency_seconds = options.network_latency_seconds;
    sqm_options.seed = options.seed;
    sqm_options.max_f_l2 =
        options.record_norm_bound * options.record_norm_bound;
    sqm_options.quantize_coefficients = false;  // Section V-A.
    SqmEvaluator evaluator(sqm_options);
    SQM_ASSIGN_OR_RETURN(SqmReport report, evaluator.Evaluate(f, clean));

    Matrix covariance(n, n);
    size_t t = 0;
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i; j < n; ++j, ++t) {
        covariance(i, j) = report.estimate[t];
        covariance(j, i) = report.estimate[t];
      }
    }
    SQM_ASSIGN_OR_RETURN(
        PcaResult result,
        FinishFromCovariance(clean, covariance, options.k, options.seed));
    result.mu = mu;
    result.timing = report.timing;
    result.network = report.network;
    return result;
  }

  // Fast plaintext path: Algorithm 3 specialized to the Gram polynomial.
  // Identical RNG discipline to SqmEvaluator (same seed splits), so the two
  // paths produce bit-identical releases — asserted by the integration
  // tests.
  const auto quantize_start = std::chrono::steady_clock::now();
  Rng rng(options.seed);
  Rng data_rng = rng.Split(0xda7a);
  const QuantizedDatabase db = QuantizeDatabase(clean, options.gamma,
                                                data_rng);
  const double quantize_seconds = SecondsSince(quantize_start);

  const size_t d = n * (n + 1) / 2;
  const auto noise_start = std::chrono::steady_clock::now();
  std::vector<std::vector<int64_t>> noise_per_client(num_clients);
  {
    const SkellamSampler sampler(mu / static_cast<double>(num_clients));
    for (size_t j = 0; j < num_clients; ++j) {
      Rng client_rng = rng.Split(0x4015e + j);
      noise_per_client[j] = sampler.SampleVector(client_rng, d);
    }
  }
  const double noise_seconds = SecondsSince(noise_start);

  // Integer Gram matrix of the quantized columns.
  const auto compute_start = std::chrono::steady_clock::now();
  const double gamma_sq = options.gamma * options.gamma;
  Matrix covariance(n, n);
  for (size_t i = 0; i < n; ++i) {
    const auto& col_i = db.columns[i];
    for (size_t j = i; j < n; ++j) {
      const auto& col_j = db.columns[j];
      __int128 acc = 0;
      for (size_t r = 0; r < db.rows; ++r) {
        acc += static_cast<__int128>(col_i[r]) * col_j[r];
      }
      if (acc > Field::kMaxCentered || acc < -Field::kMaxCentered) {
        return Status::OutOfRange(
            "Gram entry exceeds field capacity; lower gamma");
      }
      covariance(i, j) = static_cast<double>(static_cast<int64_t>(acc));
    }
  }
  const double compute_seconds = SecondsSince(compute_start);

  const auto inject_start = std::chrono::steady_clock::now();
  size_t t = 0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i; j < n; ++j, ++t) {
      int64_t noise = 0;
      for (size_t c = 0; c < num_clients; ++c) noise += noise_per_client[c][t];
      const double noisy = (covariance(i, j) +
                            static_cast<double>(noise)) /
                           gamma_sq;
      covariance(i, j) = noisy;
      covariance(j, i) = noisy;
    }
  }
  const double inject_seconds = SecondsSince(inject_start);

  SQM_ASSIGN_OR_RETURN(
      PcaResult result,
      FinishFromCovariance(clean, covariance, options.k, options.seed));
  result.mu = mu;
  result.timing.quantize_seconds = quantize_seconds;
  result.timing.noise_sampling_seconds = noise_seconds;
  result.timing.mpc_compute_seconds = compute_seconds + inject_seconds;
  result.timing.noise_injection_seconds = noise_seconds + inject_seconds;
  return result;
}

Result<PcaResult> CentralDpPca(const Matrix& x, const PcaOptions& options) {
  SQM_RETURN_NOT_OK(ValidateOptions(x, options));
  const Matrix clean = NormalizedCopy(x, options.record_norm_bound);
  const size_t n = clean.cols();

  // Analyze-Gauss: Frobenius sensitivity of X^T X is c^2 (Section V-A).
  const double c2 =
      options.record_norm_bound * options.record_norm_bound;
  SQM_ASSIGN_OR_RETURN(
      const double sigma,
      CalibrateGaussianSigma(options.epsilon, options.delta, c2));

  Matrix covariance = Gram(clean);
  Rng rng(options.seed ^ 0xa6a55);
  GaussianSampler sampler(sigma);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i; j < n; ++j) {
      const double noise = sampler.Sample(rng);
      covariance(i, j) += noise;
      if (j != i) covariance(j, i) += noise;
    }
  }
  SQM_ASSIGN_OR_RETURN(
      PcaResult result,
      FinishFromCovariance(clean, covariance, options.k, options.seed));
  result.sigma = sigma;
  return result;
}

Result<PcaResult> LocalDpPca(const Matrix& x, const PcaOptions& options) {
  SQM_RETURN_NOT_OK(ValidateOptions(x, options));
  const Matrix clean = NormalizedCopy(x, options.record_norm_bound);

  SQM_ASSIGN_OR_RETURN(
      const double sigma,
      CalibrateLocalDpSigma(options.epsilon, options.delta,
                            options.record_norm_bound));
  const Matrix noisy =
      PerturbDatabaseLocally(clean, sigma, options.seed ^ 0x10ca1);
  const Matrix covariance = Gram(noisy);
  SQM_ASSIGN_OR_RETURN(
      PcaResult result,
      FinishFromCovariance(clean, covariance, options.k, options.seed));
  result.sigma = sigma;
  return result;
}

Result<PcaResult> NonPrivatePca(const Matrix& x, size_t k) {
  if (k == 0 || k > x.cols()) {
    return Status::InvalidArgument("k must be in [1, n]");
  }
  return FinishFromCovariance(x, Gram(x), k, /*seed=*/0);
}

}  // namespace sqm
