#ifndef SQM_VFL_SYNTHETIC_H_
#define SQM_VFL_SYNTHETIC_H_

#include <cstdint>
#include <string>

#include "core/status.h"
#include "vfl/dataset.h"

namespace sqm {

/// Synthetic dataset generators standing in for the paper's real datasets
/// (KDDCUP, ACSIncome CA/TX/NY/FL, CiteSeer, Gene), which are not available
/// offline. See DESIGN.md "Substitutions": the PCA experiments only probe
/// the spectrum/norm structure of X, and the LR experiments only probe how
/// DP noise degrades a learnable linear signal, so matched-shape synthetic
/// data preserves the comparisons the figures make.

/// Low-rank-plus-noise feature matrix for PCA experiments: X = U S V^T + E
/// with `rank` dominant directions whose singular values decay
/// geometrically, plus isotropic noise of relative strength `noise_level`.
/// Records are normalized to ||x||_2 <= 1.
struct SyntheticPcaSpec {
  std::string name = "synthetic-pca";
  size_t rows = 1000;
  size_t cols = 50;
  size_t rank = 10;
  /// Ratio of the noise energy to the weakest retained signal direction.
  double noise_level = 0.1;
  uint64_t seed = 1;
};
VflDataset GeneratePcaDataset(const SyntheticPcaSpec& spec);

/// Linearly separable binary-classification data with label noise, for the
/// LR experiments: x ~ mixture around +/- mu along a hidden direction,
/// y = 1{<w*, x> + b > 0} flipped with probability `label_noise`.
/// Records are normalized to ||x||_2 <= 1 (the paper's LR precondition).
struct SyntheticLrSpec {
  std::string name = "synthetic-lr";
  size_t rows = 10000;
  size_t cols = 50;
  /// Separation margin between the class clouds, in units of the cloud
  /// standard deviation. Larger = easier task / higher clean accuracy.
  double margin = 2.0;
  double label_noise = 0.05;
  uint64_t seed = 1;
};
VflDataset GenerateLrDataset(const SyntheticLrSpec& spec);

/// Named profiles mirroring the paper's evaluation datasets at a size
/// `scale` in (0, 1] (1.0 = the paper's m and n; benches default to a
/// smaller scale so they finish on one core — the privacy-utility *shape*
/// is scale-stable).
VflDataset MakeKddCupLike(double scale, uint64_t seed = 11);
VflDataset MakeAcsIncomePcaLike(double scale, uint64_t seed = 12);
VflDataset MakeCiteSeerLike(double scale, uint64_t seed = 13);
VflDataset MakeGeneLike(double scale, uint64_t seed = 14);

/// ACSIncome-style LR profiles for the four states of Figure 3; the state
/// only changes the seed and mild task-difficulty parameters.
VflDataset MakeAcsIncomeLrLike(const std::string& state, double scale,
                               uint64_t seed_base = 20);

}  // namespace sqm

#endif  // SQM_VFL_SYNTHETIC_H_
