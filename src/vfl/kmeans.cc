#include "vfl/kmeans.h"

#include <cmath>
#include <limits>

#include "core/baseline.h"
#include "core/logging.h"
#include "math/linalg.h"
#include "sampling/rng.h"

namespace sqm {
namespace {

double SquaredDistance(const Matrix& x, size_t row, const Matrix& centroids,
                       size_t c) {
  double acc = 0.0;
  for (size_t j = 0; j < x.cols(); ++j) {
    const double diff = x(row, j) - centroids(c, j);
    acc += diff * diff;
  }
  return acc;
}

/// Farthest-point (k-means++-style, deterministic given the seed point)
/// seeding: start from a seeded random record, then repeatedly take the
/// record farthest from the chosen set.
Matrix SeedCentroids(const Matrix& x, size_t k, uint64_t seed) {
  Matrix centroids(k, x.cols());
  Rng rng(seed);
  centroids.SetRow(0, x.Row(rng.NextBounded(x.rows())));
  for (size_t c = 1; c < k; ++c) {
    size_t best_row = 0;
    double best_dist = -1.0;
    for (size_t i = 0; i < x.rows(); ++i) {
      double nearest = std::numeric_limits<double>::infinity();
      for (size_t prev = 0; prev < c; ++prev) {
        nearest = std::min(nearest, SquaredDistance(x, i, centroids, prev));
      }
      if (nearest > best_dist) {
        best_dist = nearest;
        best_row = i;
      }
    }
    centroids.SetRow(c, x.Row(best_row));
  }
  return centroids;
}

Status ValidateOptions(const Matrix& x, const KMeansOptions& options) {
  if (x.rows() == 0 || x.cols() == 0) {
    return Status::InvalidArgument("empty data matrix");
  }
  if (options.k == 0 || options.k > x.rows()) {
    return Status::InvalidArgument("k must be in [1, m]");
  }
  if (options.max_iterations == 0) {
    return Status::InvalidArgument("max_iterations must be > 0");
  }
  return Status::OK();
}

std::vector<size_t> Assign(const Matrix& x, const Matrix& centroids) {
  std::vector<size_t> assignments(x.rows(), 0);
  for (size_t i = 0; i < x.rows(); ++i) {
    double best = std::numeric_limits<double>::infinity();
    for (size_t c = 0; c < centroids.rows(); ++c) {
      const double dist = SquaredDistance(x, i, centroids, c);
      if (dist < best) {
        best = dist;
        assignments[i] = c;
      }
    }
  }
  return assignments;
}

double Inertia(const Matrix& x, const Matrix& centroids,
               const std::vector<size_t>& assignments) {
  double acc = 0.0;
  for (size_t i = 0; i < x.rows(); ++i) {
    acc += SquaredDistance(x, i, centroids, assignments[i]);
  }
  return acc;
}

}  // namespace

Result<Matrix> KMeansLloydStep(const Matrix& x,
                               const std::vector<size_t>& assignments,
                               const Matrix& previous_centroids) {
  if (assignments.size() != x.rows()) {
    return Status::InvalidArgument("one assignment per record required");
  }
  const size_t k = previous_centroids.rows();
  if (previous_centroids.cols() != x.cols()) {
    return Status::InvalidArgument("centroid dimension mismatch");
  }
  // Per-cluster sums and counts: linear polynomials of the records, the
  // SQM-computable core of the update.
  Matrix sums(k, x.cols());
  std::vector<size_t> counts(k, 0);
  for (size_t i = 0; i < x.rows(); ++i) {
    const size_t c = assignments[i];
    if (c >= k) {
      return Status::InvalidArgument("assignment references unknown cluster");
    }
    ++counts[c];
    for (size_t j = 0; j < x.cols(); ++j) sums(c, j) += x(i, j);
  }
  Matrix centroids = previous_centroids;
  for (size_t c = 0; c < k; ++c) {
    if (counts[c] == 0) continue;  // Keep the previous centroid.
    for (size_t j = 0; j < x.cols(); ++j) {
      centroids(c, j) = sums(c, j) / static_cast<double>(counts[c]);
    }
  }
  return centroids;
}

Result<KMeansResult> KMeans(const Matrix& x, const KMeansOptions& options) {
  SQM_RETURN_NOT_OK(ValidateOptions(x, options));
  Matrix centroids = SeedCentroids(x, options.k, options.seed);
  KMeansResult result;
  double previous_inertia = std::numeric_limits<double>::infinity();
  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    result.assignments = Assign(x, centroids);
    SQM_ASSIGN_OR_RETURN(centroids,
                         KMeansLloydStep(x, result.assignments, centroids));
    result.inertia = Inertia(x, centroids, result.assignments);
    result.iterations = iter + 1;
    if (previous_inertia - result.inertia <
        options.tolerance * std::max(previous_inertia, 1e-12)) {
      break;
    }
    previous_inertia = result.inertia;
  }
  result.centroids = std::move(centroids);
  return result;
}

Result<KMeansResult> LocalDpKMeans(const Matrix& x,
                                   const KMeansOptions& options,
                                   double epsilon, double delta,
                                   double record_norm_bound) {
  SQM_RETURN_NOT_OK(ValidateOptions(x, options));
  SQM_ASSIGN_OR_RETURN(
      const double sigma,
      CalibrateLocalDpSigma(epsilon, delta, record_norm_bound));
  const Matrix noisy =
      PerturbDatabaseLocally(x, sigma, options.seed ^ 0x63a75);
  SQM_ASSIGN_OR_RETURN(KMeansResult noisy_result, KMeans(noisy, options));
  // Post-processing: evaluate the noisy clustering on the clean data.
  KMeansResult result;
  result.centroids = noisy_result.centroids;
  result.assignments = std::move(noisy_result.assignments);
  result.inertia = Inertia(x, result.centroids, result.assignments);
  result.iterations = noisy_result.iterations;
  result.sigma = sigma;
  return result;
}

double RandIndex(const std::vector<size_t>& a,
                 const std::vector<size_t>& b) {
  SQM_CHECK(a.size() == b.size());
  if (a.size() < 2) return 1.0;
  size_t agree = 0;
  size_t total = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    for (size_t j = i + 1; j < a.size(); ++j) {
      const bool same_a = a[i] == a[j];
      const bool same_b = b[i] == b[j];
      if (same_a == same_b) ++agree;
      ++total;
    }
  }
  return static_cast<double>(agree) / static_cast<double>(total);
}

}  // namespace sqm
