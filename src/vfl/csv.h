#ifndef SQM_VFL_CSV_H_
#define SQM_VFL_CSV_H_

#include <string>

#include "core/status.h"
#include "math/matrix.h"
#include "vfl/dataset.h"

namespace sqm {

/// Minimal CSV support so users can run the paper's real datasets (KDDCUP,
/// ACSIncome, ...) through the same pipelines the synthetic benches use.

/// Options for CSV parsing.
struct CsvOptions {
  char delimiter = ',';
  /// Skip the first line (header).
  bool has_header = true;
  /// Column holding the class label; -1 for unlabelled data. Labels are
  /// parsed as integers.
  int label_column = -1;
};

/// Parses a numeric CSV file into a dataset. Every non-label field must
/// parse as a double; otherwise IoError with the offending line.
Result<VflDataset> LoadCsvDataset(const std::string& path,
                                  const CsvOptions& options = {});

/// Writes a dataset to CSV (features, then label if present). Round-trips
/// with LoadCsvDataset.
Status SaveCsvDataset(const VflDataset& data, const std::string& path,
                      const CsvOptions& options = {});

}  // namespace sqm

#endif  // SQM_VFL_CSV_H_
