#include "vfl/synthetic.h"

#include <algorithm>
#include <cmath>

#include "core/logging.h"
#include "math/linalg.h"
#include "sampling/gaussian_sampler.h"
#include "sampling/rng.h"

namespace sqm {
namespace {

/// Random matrix with orthonormal columns (Gaussian + Gram-Schmidt).
Matrix RandomOrthonormal(size_t rows, size_t cols, Rng& rng) {
  Matrix m(rows, cols);
  GaussianSampler gaussian(1.0);
  for (auto& x : m.data()) x = gaussian.Sample(rng);
  OrthonormalizeColumns(m);
  return m;
}

size_t Scaled(size_t value, double scale, size_t min_value) {
  return std::max(min_value,
                  static_cast<size_t>(std::llround(
                      static_cast<double>(value) * scale)));
}

}  // namespace

VflDataset GeneratePcaDataset(const SyntheticPcaSpec& raw_spec) {
  SyntheticPcaSpec spec = raw_spec;
  SQM_CHECK(spec.rank >= 1 && spec.cols >= 1);
  SQM_CHECK(spec.rows >= 2);
  spec.rank = std::min(spec.rank, spec.cols);  // Clamp for convenience.
  Rng rng(spec.seed);
  GaussianSampler gaussian(1.0);

  // X = A * V^T + noise: A is rows x rank with geometrically decaying
  // column scales, V is cols x rank orthonormal.
  Matrix v = RandomOrthonormal(spec.cols, spec.rank, rng);
  Matrix a(spec.rows, spec.rank);
  for (size_t r = 0; r < spec.rank; ++r) {
    // Singular-value decay 1, 0.85, 0.85^2, ... keeps a clear top-k
    // structure at every k the benches sweep.
    const double scale = std::pow(0.85, static_cast<double>(r));
    for (size_t i = 0; i < spec.rows; ++i) {
      a(i, r) = scale * gaussian.Sample(rng);
    }
  }
  Matrix x = MatMul(a, v.Transpose());
  const double weakest_signal = std::pow(0.85,
                                         static_cast<double>(spec.rank - 1));
  const double noise_sigma = spec.noise_level * weakest_signal /
                             std::sqrt(static_cast<double>(spec.cols));
  for (auto& value : x.data()) value += noise_sigma * gaussian.Sample(rng);

  NormalizeRecords(x, 1.0);

  VflDataset out;
  out.name = spec.name;
  out.features = std::move(x);
  return out;
}

VflDataset GenerateLrDataset(const SyntheticLrSpec& spec) {
  SQM_CHECK(spec.rows >= 2 && spec.cols >= 1);
  Rng rng(spec.seed);
  GaussianSampler gaussian(1.0);

  // Hidden unit direction w*.
  std::vector<double> w_star(spec.cols);
  for (auto& w : w_star) w = gaussian.Sample(rng);
  const double norm = Norm2(w_star);
  for (auto& w : w_star) w /= norm;

  Matrix x(spec.rows, spec.cols);
  std::vector<int> labels(spec.rows);
  for (size_t i = 0; i < spec.rows; ++i) {
    const int y = rng.NextBernoulli(0.5) ? 1 : 0;
    const double offset = (y == 1 ? 1.0 : -1.0) * spec.margin / 2.0;
    for (size_t j = 0; j < spec.cols; ++j) {
      x(i, j) = gaussian.Sample(rng) + offset * w_star[j];
    }
    labels[i] = rng.NextBernoulli(spec.label_noise) ? 1 - y : y;
  }
  NormalizeRecords(x, 1.0);

  VflDataset out;
  out.name = spec.name;
  out.features = std::move(x);
  out.labels = std::move(labels);
  return out;
}

VflDataset MakeKddCupLike(double scale, uint64_t seed) {
  // Paper: KDDCUP, m = 195666, n = 117. Low intrinsic dimension (network
  // traffic features are highly correlated).
  SyntheticPcaSpec spec;
  spec.name = "kddcup-like";
  spec.rows = Scaled(195666, scale, 200);
  spec.cols = Scaled(117, std::max(scale, 0.25), 16);
  spec.rank = std::max<size_t>(8, spec.cols / 8);
  spec.noise_level = 0.05;
  spec.seed = seed;
  return GeneratePcaDataset(spec);
}

VflDataset MakeAcsIncomePcaLike(double scale, uint64_t seed) {
  // Paper: ACSIncome (CA), m ~ 100000, n = 800 (one-hot heavy census
  // features: moderate rank, more noise).
  SyntheticPcaSpec spec;
  spec.name = "acsincome-like";
  spec.rows = Scaled(100000, scale, 200);
  spec.cols = Scaled(800, std::max(scale, 0.05), 24);
  spec.rank = std::max<size_t>(10, spec.cols / 10);
  spec.noise_level = 0.15;
  spec.seed = seed;
  return GeneratePcaDataset(spec);
}

VflDataset MakeCiteSeerLike(double scale, uint64_t seed) {
  // Paper: CiteSeer, m = 2110, n = 3703 (high-dimensional sparse text;
  // n > m).
  SyntheticPcaSpec spec;
  spec.name = "citeseer-like";
  spec.rows = Scaled(2110, std::max(scale, 0.05), 100);
  spec.cols = Scaled(3703, std::max(scale, 0.02), 128);
  spec.rank = std::max<size_t>(12, spec.rows / 40);
  spec.noise_level = 0.25;
  spec.seed = seed;
  return GeneratePcaDataset(spec);
}

VflDataset MakeGeneLike(double scale, uint64_t seed) {
  // Paper: Gene expression cancer RNA-Seq, m = 801, n = 20531 (n >> m,
  // strong low-rank biological structure).
  SyntheticPcaSpec spec;
  spec.name = "gene-like";
  spec.rows = Scaled(801, std::max(scale, 0.1), 80);
  spec.cols = Scaled(20531, std::max(scale, 0.005), 160);
  spec.rank = std::max<size_t>(6, spec.rows / 20);
  spec.noise_level = 0.08;
  spec.seed = seed;
  return GeneratePcaDataset(spec);
}

VflDataset MakeAcsIncomeLrLike(const std::string& state, double scale,
                               uint64_t seed_base) {
  // Paper: ACSIncome 2018, four states, n ~ 800 dims, ~100k records of
  // which 10% are used for training; binary income > 50K prediction with
  // clean accuracy around 0.78-0.82.
  uint64_t offset = 0;
  double margin = 1.6;
  if (state == "CA") {
    offset = 0;
    margin = 1.7;
  } else if (state == "TX") {
    offset = 1;
    margin = 1.6;
  } else if (state == "NY") {
    offset = 2;
    margin = 1.65;
  } else if (state == "FL") {
    offset = 3;
    margin = 1.55;
  } else {
    SQM_LOG(kWarning) << "unknown state '" << state
                      << "', using generic profile";
    offset = 17;
  }
  SyntheticLrSpec spec;
  spec.name = "acsincome-" + state;
  spec.rows = Scaled(100000, scale, 400);
  spec.cols = Scaled(799, std::max(scale, 0.05), 24);
  spec.margin = margin;
  spec.label_noise = 0.12;
  spec.seed = seed_base + offset;
  return GenerateLrDataset(spec);
}

}  // namespace sqm
