#include "vfl/metrics.h"

#include <algorithm>
#include <cmath>

#include "core/logging.h"
#include "math/linalg.h"
#include "poly/taylor.h"

namespace sqm {

double PredictProbability(const std::vector<double>& weights,
                          const std::vector<double>& features) {
  return Sigmoid(Dot(weights, features));
}

double Accuracy(const std::vector<double>& weights, const VflDataset& data) {
  SQM_CHECK(data.has_labels());
  SQM_CHECK(weights.size() == data.num_features());
  size_t correct = 0;
  for (size_t i = 0; i < data.num_records(); ++i) {
    const double p = PredictProbability(weights, data.features.Row(i));
    const int predicted = p >= 0.5 ? 1 : 0;
    if (predicted == data.labels[i]) ++correct;
  }
  return static_cast<double>(correct) /
         static_cast<double>(data.num_records());
}

double CrossEntropyLoss(const std::vector<double>& weights,
                        const VflDataset& data) {
  SQM_CHECK(data.has_labels());
  double total = 0.0;
  constexpr double kEps = 1e-12;
  for (size_t i = 0; i < data.num_records(); ++i) {
    const double p = std::clamp(
        PredictProbability(weights, data.features.Row(i)), kEps, 1.0 - kEps);
    total += data.labels[i] == 1 ? -std::log(p) : -std::log(1.0 - p);
  }
  return total / static_cast<double>(data.num_records());
}

double PcaUtility(const Matrix& x, const Matrix& subspace) {
  return CapturedVariance(x, subspace);
}

}  // namespace sqm
