#ifndef SQM_VFL_LOGISTIC_H_
#define SQM_VFL_LOGISTIC_H_

#include <cstdint>
#include <vector>

#include "core/sqm.h"
#include "core/status.h"
#include "vfl/dataset.h"

namespace sqm {

/// Differentially private logistic regression, Section V-B of the paper.
/// Five trainers sharing one result type:
///  - TrainSqmLogistic: the paper's VFL mechanism — per-round polynomial
///    gradient (order-1 Taylor sigmoid, Eq. 9) evaluated with SQM.
///  - TrainDpSgd: central DPSGD [54] with exact sigmoid and per-record
///    clipping (the paper's "Centralized" curve).
///  - TrainApproxPoly: central Gaussian mechanism on the *polynomial*
///    gradient, no quantization (Figure 5's "Approx-Poly" curve).
///  - TrainLocalDpLogistic: Algorithm 4 baseline — perturb the raw data,
///    train to convergence on the noisy database.
///  - TrainNonPrivateLogistic: plain SGD reference ceiling.

struct LogisticOptions {
  double epsilon = 1.0;
  double delta = 1e-5;
  /// Poisson per-record sampling probability q for each round.
  double sample_rate = 0.01;
  /// Number of gradient rounds R (each on an independent Poisson batch).
  size_t rounds = 100;
  double learning_rate = 0.5;
  /// ||w||_2 is clipped to this after every step (the paper clips to 1).
  double weight_clip = 1.0;
  uint64_t seed = 42;

  // SQM-specific.
  double gamma = 8192.0;
  MpcBackend backend = MpcBackend::kPlaintext;
  size_t num_clients = 0;  ///< 0 = one per column incl. the label client.
  double network_latency_seconds = 0.0;
  /// Taylor truncation order for the sigmoid (1 in the paper; 3/5/7
  /// supported for the extension ablation).
  size_t taylor_order = 1;
};

struct LogisticResult {
  std::vector<double> weights;
  double train_accuracy = 0.0;
  double test_accuracy = 0.0;
  /// Noise diagnostics: Skellam mu (SQM) or Gaussian sigma (others).
  double mu = 0.0;
  double sigma = 0.0;
  /// Accumulated SQM timing over all rounds (SQM trainer only).
  SqmTiming timing;
  NetworkStats network;
};

Result<LogisticResult> TrainSqmLogistic(const VflDataset& train,
                                        const VflDataset& test,
                                        const LogisticOptions& options);

Result<LogisticResult> TrainDpSgd(const VflDataset& train,
                                  const VflDataset& test,
                                  const LogisticOptions& options);

Result<LogisticResult> TrainApproxPoly(const VflDataset& train,
                                       const VflDataset& test,
                                       const LogisticOptions& options);

Result<LogisticResult> TrainLocalDpLogistic(const VflDataset& train,
                                            const VflDataset& test,
                                            const LogisticOptions& options);

Result<LogisticResult> TrainNonPrivateLogistic(const VflDataset& train,
                                               const VflDataset& test,
                                               const LogisticOptions& options);

/// Builds the paper's Eq. 9 gradient polynomial f(w, (x, y)) for the
/// current weights: dimension t is
///   c_0 * x_t + sum_j (c_1 w_j) x_j x_t - y x_t
/// with (c_0, c_1) the Taylor coefficients (1/2, 1/4 at order 1). Variables
/// 0..d-1 are the features, variable d is the label. Exposed for tests and
/// the quickstart example.
PolynomialVector BuildLogisticGradientPolynomial(
    const std::vector<double>& weights, size_t taylor_order = 1);

}  // namespace sqm

#endif  // SQM_VFL_LOGISTIC_H_
