#ifndef SQM_VFL_PCA_H_
#define SQM_VFL_PCA_H_

#include <cstdint>

#include "core/sqm.h"
#include "core/status.h"
#include "math/matrix.h"

namespace sqm {

/// Differentially private PCA, Section V-A of the paper: the server learns
/// the principal rank-k subspace of X from a perturbed covariance matrix.
/// Four mechanisms sharing one result type:
///  - SqmPca: the paper's VFL mechanism (quantize + Skellam + MPC).
///  - CentralDpPca: Analyze-Gauss [65], the central-DP upper bound.
///  - LocalDpPca: Algorithm 4 baseline (per-entry Gaussian on raw data).
///  - NonPrivatePca: exact top-k (reference ceiling).

struct PcaResult {
  /// n x k orthonormal subspace estimate.
  Matrix subspace;
  /// ||X V||_F^2 on the *clean* data — Figure 2's utility.
  double utility = 0.0;
  /// Noise / quantization diagnostics where applicable.
  double mu = 0.0;     ///< Skellam parameter actually used (SQM).
  double sigma = 0.0;  ///< Gaussian std actually used (central / local).
  SqmTiming timing;    ///< Filled by SqmPca only.
  NetworkStats network;
};

struct PcaOptions {
  size_t k = 5;
  double epsilon = 1.0;
  double delta = 1e-5;
  /// Record norm bound c; data is normalized to this before the mechanism.
  double record_norm_bound = 1.0;
  uint64_t seed = 42;

  // SQM-specific.
  double gamma = 4096.0;
  MpcBackend backend = MpcBackend::kPlaintext;
  size_t num_clients = 0;  ///< 0 = one per attribute (the paper's setup).
  double network_latency_seconds = 0.0;
};

/// SQM instantiation (Section V-A): coefficients are all 1 and degree is
/// uniformly 2, so coefficient pre-processing is skipped; only the upper
/// triangle of x^T x is computed securely and mirrored. mu is calibrated
/// from Lemma 5's sensitivity for a single release at (epsilon, delta),
/// server-observed.
Result<PcaResult> SqmPca(const Matrix& x, const PcaOptions& options);

/// Analyze-Gauss: C = X^T X + symmetric Gaussian noise calibrated to the
/// Frobenius sensitivity c^2.
Result<PcaResult> CentralDpPca(const Matrix& x, const PcaOptions& options);

/// Local-DP baseline: perturb X entry-wise (sigma from Lemma 12's
/// calibration), then PCA on the noisy Gram matrix.
Result<PcaResult> LocalDpPca(const Matrix& x, const PcaOptions& options);

/// Exact top-k subspace of X (no privacy).
Result<PcaResult> NonPrivatePca(const Matrix& x, size_t k);

}  // namespace sqm

#endif  // SQM_VFL_PCA_H_
