#ifndef SQM_VFL_LINEAR_H_
#define SQM_VFL_LINEAR_H_

#include <cstdint>
#include <vector>

#include "core/sqm.h"
#include "core/status.h"
#include "math/matrix.h"

namespace sqm {

/// Linear (ridge) regression under SQM — a third instantiation beyond the
/// paper's PCA and LR. Unlike logistic regression, the squared-loss
/// gradient
///     f(w, (x, y)) = <w, x> * x - y * x
/// is *exactly* a degree-2 polynomial of the record, so SQM applies with
/// no Taylor approximation at all: the only error sources are
/// quantization (vanishing in gamma) and the calibrated Skellam noise.
/// This makes ridge regression the cleanest demonstration of the
/// polynomial-evaluation framework of Section III.
///
/// The L2 regularizer lambda * w depends only on the public weights, so
/// the server adds it during post-processing at zero privacy cost.

/// Records with continuous targets; ||x||_2 <= 1 and |y| <= 1 are enforced
/// by normalization before training.
struct RegressionDataset {
  std::string name;
  Matrix features;              ///< m x d.
  std::vector<double> targets;  ///< m continuous responses.

  size_t num_records() const { return features.rows(); }
  size_t num_features() const { return features.cols(); }
};

struct LinearOptions {
  double epsilon = 1.0;
  double delta = 1e-5;
  double sample_rate = 0.05;
  size_t rounds = 100;
  double learning_rate = 0.5;
  double weight_clip = 1.0;
  /// Ridge penalty coefficient (applied server-side).
  double l2_penalty = 1e-3;
  uint64_t seed = 42;

  double gamma = 4096.0;
  MpcBackend backend = MpcBackend::kPlaintext;
  size_t num_clients = 0;  ///< 0 = one per column + a target client.
};

struct LinearResult {
  std::vector<double> weights;
  double train_rmse = 0.0;
  double test_rmse = 0.0;
  double mu = 0.0;     ///< SQM trainer.
  double sigma = 0.0;  ///< Gaussian trainers.
};

/// Root-mean-squared prediction error of weights on `data`.
double Rmse(const std::vector<double>& weights,
            const RegressionDataset& data);

/// The SQM trainer: per round, the clients evaluate the exact degree-2
/// gradient polynomial on a Poisson batch with distributed Skellam noise;
/// mu is calibrated once via the subsampled accountant with the Lemma-4
/// style sensitivity bound.
Result<LinearResult> TrainSqmLinear(const RegressionDataset& train,
                                    const RegressionDataset& test,
                                    const LinearOptions& options);

/// Central DP-SGD baseline (per-record clipping + Gaussian noise).
Result<LinearResult> TrainDpSgdLinear(const RegressionDataset& train,
                                      const RegressionDataset& test,
                                      const LinearOptions& options);

/// Algorithm-4 local-DP baseline: perturb the raw (x, y) records, then
/// ordinary ridge regression on the noisy data.
Result<LinearResult> TrainLocalDpLinear(const RegressionDataset& train,
                                        const RegressionDataset& test,
                                        const LinearOptions& options);

/// Non-private SGD ceiling.
Result<LinearResult> TrainNonPrivateLinear(const RegressionDataset& train,
                                           const RegressionDataset& test,
                                           const LinearOptions& options);

/// Builds the exact gradient polynomial over variables x (0..d-1) and the
/// target y (variable d): dimension t is sum_j w_j x_j x_t - y x_t.
PolynomialVector BuildLinearGradientPolynomial(
    const std::vector<double>& weights);

/// Synthetic regression data: y = <w*, x> + noise, normalized so that
/// ||x||_2 <= 1 and |y| <= 1.
struct SyntheticRegressionSpec {
  std::string name = "synthetic-linreg";
  size_t rows = 2000;
  size_t cols = 20;
  double noise_std = 0.05;
  uint64_t seed = 1;
};
RegressionDataset GenerateRegressionDataset(
    const SyntheticRegressionSpec& spec);

/// Deterministic split helper mirroring SplitTrainTest for regression data.
struct RegressionSplit {
  RegressionDataset train;
  RegressionDataset test;
};
Result<RegressionSplit> SplitRegression(const RegressionDataset& data,
                                        double train_fraction,
                                        uint64_t seed);

}  // namespace sqm

#endif  // SQM_VFL_LINEAR_H_
