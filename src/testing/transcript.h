#ifndef SQM_TESTING_TRANSCRIPT_H_
#define SQM_TESTING_TRANSCRIPT_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "net/lockstep.h"
#include "net/transport.h"
#include "testing/stat_check.h"

namespace sqm {
namespace testing {

/// One wire message as it actually crossed the network (post-tamper when a
/// ByzantineInterceptor ran first in the chain).
struct TranscriptEntry {
  uint64_t round = 0;  ///< Communication rounds completed at send time.
  std::string phase;
  size_t from = 0;
  size_t to = 0;
  std::vector<uint64_t> payload;

  bool operator==(const TranscriptEntry& other) const {
    return round == other.round && phase == other.phase &&
           from == other.from && to == other.to && payload == other.payload;
  }
};

/// Everything that crossed the wire in one protocol execution, in global
/// send order. Driver-mode runs produce the same global order under every
/// transport, which is what makes transcript equality a fuzz invariant and
/// replay bit-exact.
struct Transcript {
  size_t num_parties = 0;
  std::vector<TranscriptEntry> entries;
};

/// Serializes a transcript to JSON; payload elements round-trip exactly
/// (field elements exceed double precision, so the parser's integer path
/// matters here).
std::string TranscriptToJson(const Transcript& transcript);
Result<Transcript> TranscriptFromJson(const std::string& json);

/// First divergence between two transcripts.
struct TranscriptDiff {
  bool identical = true;
  size_t first_divergence = 0;  ///< Entry index (min size when lengths differ).
  std::string description;      ///< Human-readable divergence summary.
};

TranscriptDiff CompareTranscripts(const Transcript& a, const Transcript& b);

/// MessageInterceptor that captures every cross-party message. Chain a
/// ByzantineInterceptor in front (Chain) to record the on-the-wire truth
/// *after* tampering: swallowed messages are not recorded, replays are
/// recorded as separate entries. Thread-safe; entries are globally ordered
/// by the interceptor's own lock (on a ThreadedTransport, concurrent sends
/// are recorded in their serialization order).
class TranscriptRecorder : public MessageInterceptor {
 public:
  explicit TranscriptRecorder(size_t num_parties) {
    transcript_.num_parties = num_parties;
  }

  /// Runs `next` (non-owning, may be nullptr) before recording — the
  /// tamper-then-record composition.
  void Chain(MessageInterceptor* next) { next_ = next; }

  SendVerdict OnSend(const WireContext& context,
                     std::vector<uint64_t>& payload) override;

  Transcript transcript() const;
  size_t size() const;
  void Clear();

 private:
  MessageInterceptor* next_ = nullptr;
  mutable std::mutex mu_;
  Transcript transcript_;
};

/// Feeds a recorded transcript back into a LockstepTransport: every entry
/// is enqueued on its original channel with its original phase label, with
/// EndRound() reproducing the original round boundaries. After replay, a
/// consumer draining the open-phase broadcasts reconstructs the released
/// values bit-exactly — the repro path for schedule-fuzz failures.
/// Fails when the transport's party count does not match.
Status ReplayIntoLockstep(const Transcript& transcript,
                          LockstepTransport* transport);

/// Statistical transcript-privacy verifier, generalizing
/// tests/mpc_privacy_test.cc: everything a small coalition receives from
/// honest parties must be statistically uniform over the field — shares
/// below the threshold carry no information. Bins field elements by top
/// bits and chi-square-tests against uniform.
class TranscriptPrivacyVerifier {
 public:
  struct Options {
    size_t bins = 16;
    /// Reject threshold: p-values below this fail. Far below any plausible
    /// test-flakiness level; a genuinely non-uniform view lands at ~0.
    double min_p_value = 1e-9;
  };

  TranscriptPrivacyVerifier() = default;
  explicit TranscriptPrivacyVerifier(Options options) : options_(options) {}

  /// Every payload element of messages received by a coalition member from
  /// a non-member.
  static std::vector<uint64_t> CoalitionView(
      const Transcript& transcript, const std::vector<size_t>& coalition);

  /// Chi-square of the coalition's received elements against uniform.
  Result<ChiSquareResult> VerifyUniform(
      const Transcript& transcript,
      const std::vector<size_t>& coalition) const;

  /// Pass/fail wrapper: kIntegrityViolation with the p-value when the view
  /// is distinguishable from uniform.
  Status CheckCoalitionUniform(const Transcript& transcript,
                               const std::vector<size_t>& coalition) const;

  /// Two-sample test: are the coalition's views under two different input
  /// databases distinguishable? (They must not be, below threshold.)
  Result<ChiSquareResult> CompareViews(
      const Transcript& a, const Transcript& b,
      const std::vector<size_t>& coalition) const;

 private:
  Options options_;
};

}  // namespace testing
}  // namespace sqm

#endif  // SQM_TESTING_TRANSCRIPT_H_
