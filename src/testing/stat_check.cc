#include "testing/stat_check.h"

#include <cmath>

#include "math/stats.h"

namespace sqm {
namespace testing {

Result<ChiSquareResult> ChiSquareGoodnessOfFit(
    const std::vector<uint64_t>& observed,
    const std::vector<double>& expected, size_t fitted) {
  if (observed.size() != expected.size()) {
    return Status::InvalidArgument(
        "observed and expected bin counts differ in length");
  }
  if (observed.size() < 2) {
    return Status::InvalidArgument("chi-square needs >= 2 bins");
  }
  if (observed.size() < fitted + 2) {
    return Status::InvalidArgument(
        "not enough bins for the number of fitted parameters");
  }
  double statistic = 0.0;
  for (size_t i = 0; i < observed.size(); ++i) {
    if (!(expected[i] > 0.0)) {
      return Status::InvalidArgument(
          "expected count in bin " + std::to_string(i) +
          " is not positive; pool sparse bins before testing");
    }
    const double diff = static_cast<double>(observed[i]) - expected[i];
    statistic += diff * diff / expected[i];
  }
  ChiSquareResult result;
  result.statistic = statistic;
  result.dof = static_cast<double>(observed.size() - 1 - fitted);
  result.p_value = ChiSquarePValue(statistic, result.dof);
  return result;
}

Result<ChiSquareResult> ChiSquareUniform(
    const std::vector<uint64_t>& observed) {
  if (observed.size() < 2) {
    return Status::InvalidArgument("chi-square needs >= 2 bins");
  }
  uint64_t total = 0;
  for (uint64_t count : observed) total += count;
  if (total == 0) {
    return Status::InvalidArgument("no observations");
  }
  const std::vector<double> expected(
      observed.size(),
      static_cast<double>(total) / static_cast<double>(observed.size()));
  return ChiSquareGoodnessOfFit(observed, expected);
}

Result<ChiSquareResult> ChiSquareTwoSample(const std::vector<uint64_t>& a,
                                           const std::vector<uint64_t>& b) {
  if (a.size() != b.size()) {
    return Status::InvalidArgument("samples have different bin counts");
  }
  double total_a = 0.0, total_b = 0.0;
  for (uint64_t count : a) total_a += static_cast<double>(count);
  for (uint64_t count : b) total_b += static_cast<double>(count);
  if (total_a == 0.0 || total_b == 0.0) {
    return Status::InvalidArgument("a sample has no observations");
  }
  // Standard two-sample statistic with sample-size weights k1 = sqrt(n2/n1),
  // k2 = sqrt(n1/n2); bins empty in both samples contribute nothing and
  // drop from the dof.
  const double k1 = std::sqrt(total_b / total_a);
  const double k2 = std::sqrt(total_a / total_b);
  double statistic = 0.0;
  size_t used_bins = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double ai = static_cast<double>(a[i]);
    const double bi = static_cast<double>(b[i]);
    if (ai + bi == 0.0) continue;
    const double diff = k1 * ai - k2 * bi;
    statistic += diff * diff / (ai + bi);
    ++used_bins;
  }
  if (used_bins < 2) {
    return Status::InvalidArgument("fewer than 2 non-empty bins");
  }
  ChiSquareResult result;
  result.statistic = statistic;
  result.dof = static_cast<double>(used_bins - 1);
  result.p_value = ChiSquarePValue(statistic, result.dof);
  return result;
}

std::vector<uint64_t> BinTopBits(const std::vector<uint64_t>& values,
                                 size_t bins) {
  // Field elements are < 2^61; shift so the requested number of top bits
  // indexes the bin, mirroring tests/mpc_privacy_test.cc's `v >> 57` for
  // 16 bins.
  size_t bits = 0;
  while ((size_t{1} << bits) < bins) ++bits;
  std::vector<uint64_t> counts(size_t{1} << bits, 0);
  const unsigned shift = 61 - static_cast<unsigned>(bits);
  for (uint64_t v : values) {
    ++counts[v >> shift];
  }
  return counts;
}

}  // namespace testing
}  // namespace sqm
