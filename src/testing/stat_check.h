#ifndef SQM_TESTING_STAT_CHECK_H_
#define SQM_TESTING_STAT_CHECK_H_

#include <cstdint>
#include <vector>

#include "core/status.h"

namespace sqm {
namespace testing {

/// Result of one chi-square test. The p-value is exact (regularized
/// incomplete gamma, math/stats.h), so callers assert p > alpha directly
/// instead of comparing against tabulated critical values.
struct ChiSquareResult {
  double statistic = 0.0;
  double dof = 0.0;
  double p_value = 1.0;
};

/// Pearson goodness-of-fit of observed counts against expected counts.
/// `expected` entries must be positive and, for the asymptotics to hold,
/// should be >= ~5 (callers pool tail bins). dof = bins - 1 - `fitted`
/// (number of distribution parameters estimated from the data; 0 when the
/// expected counts come from fixed parameters).
Result<ChiSquareResult> ChiSquareGoodnessOfFit(
    const std::vector<uint64_t>& observed,
    const std::vector<double>& expected, size_t fitted = 0);

/// Goodness-of-fit against the uniform distribution over the bins.
Result<ChiSquareResult> ChiSquareUniform(
    const std::vector<uint64_t>& observed);

/// Two-sample chi-square homogeneity test: were the two count vectors drawn
/// from the same distribution? Bins empty in both samples are skipped.
Result<ChiSquareResult> ChiSquareTwoSample(const std::vector<uint64_t>& a,
                                           const std::vector<uint64_t>& b);

/// Histograms 61-bit field elements by their top bits into `bins` bins
/// (bins must be a power of two <= 2^61). A uniform field element is
/// uniform over these bins up to O(bins / 2^61) — the binning used by the
/// transcript-privacy verifier, generalizing tests/mpc_privacy_test.cc.
std::vector<uint64_t> BinTopBits(const std::vector<uint64_t>& values,
                                 size_t bins);

}  // namespace testing
}  // namespace sqm

#endif  // SQM_TESTING_STAT_CHECK_H_
