#include "testing/transcript.h"

#include <algorithm>

#include "core/report_io.h"

namespace sqm {
namespace testing {

std::string TranscriptToJson(const Transcript& transcript) {
  JsonWriter writer;
  writer.BeginObject();
  writer.Field("num_parties", static_cast<uint64_t>(transcript.num_parties));
  writer.BeginArray("entries");
  for (const TranscriptEntry& entry : transcript.entries) {
    writer.BeginObject()
        .Field("round", entry.round)
        .Field("phase", entry.phase)
        .Field("from", static_cast<uint64_t>(entry.from))
        .Field("to", static_cast<uint64_t>(entry.to));
    writer.BeginArray("payload");
    for (uint64_t v : entry.payload) writer.Value(v);
    writer.EndArray();
    writer.EndObject();
  }
  writer.EndArray();
  writer.EndObject();
  return writer.str();
}

namespace {

Result<uint64_t> UintMember(const JsonValue& object, const std::string& key) {
  const JsonValue* member = object.Find(key);
  if (member == nullptr) {
    return Status::IoError("transcript entry is missing \"" + key + "\"");
  }
  if (member->kind != JsonValue::Kind::kNumber || !member->is_integer ||
      member->is_negative) {
    return Status::IoError("transcript field \"" + key +
                           "\" is not an unsigned integer");
  }
  return member->uint_value;
}

}  // namespace

Result<Transcript> TranscriptFromJson(const std::string& json) {
  SQM_ASSIGN_OR_RETURN(const JsonValue root, ParseJson(json));
  if (root.kind != JsonValue::Kind::kObject) {
    return Status::IoError("transcript document is not a JSON object");
  }
  Transcript transcript;
  SQM_ASSIGN_OR_RETURN(const uint64_t num_parties,
                       UintMember(root, "num_parties"));
  transcript.num_parties = static_cast<size_t>(num_parties);
  const JsonValue* entries = root.Find("entries");
  if (entries == nullptr || entries->kind != JsonValue::Kind::kArray) {
    return Status::IoError("transcript is missing its \"entries\" array");
  }
  transcript.entries.reserve(entries->items.size());
  for (const JsonValue& item : entries->items) {
    if (item.kind != JsonValue::Kind::kObject) {
      return Status::IoError("transcript entry is not a JSON object");
    }
    TranscriptEntry entry;
    SQM_ASSIGN_OR_RETURN(entry.round, UintMember(item, "round"));
    const JsonValue* phase = item.Find("phase");
    if (phase == nullptr || phase->kind != JsonValue::Kind::kString) {
      return Status::IoError("transcript entry is missing its phase label");
    }
    entry.phase = phase->string_value;
    SQM_ASSIGN_OR_RETURN(const uint64_t from, UintMember(item, "from"));
    SQM_ASSIGN_OR_RETURN(const uint64_t to, UintMember(item, "to"));
    entry.from = static_cast<size_t>(from);
    entry.to = static_cast<size_t>(to);
    if (entry.from >= transcript.num_parties ||
        entry.to >= transcript.num_parties) {
      return Status::IoError("transcript entry addresses a party out of "
                             "range");
    }
    const JsonValue* payload = item.Find("payload");
    if (payload == nullptr || payload->kind != JsonValue::Kind::kArray) {
      return Status::IoError("transcript entry is missing its payload");
    }
    entry.payload.reserve(payload->items.size());
    for (const JsonValue& element : payload->items) {
      if (element.kind != JsonValue::Kind::kNumber || !element.is_integer ||
          element.is_negative) {
        return Status::IoError(
            "transcript payload element is not an unsigned integer");
      }
      entry.payload.push_back(element.uint_value);
    }
    transcript.entries.push_back(std::move(entry));
  }
  return transcript;
}

TranscriptDiff CompareTranscripts(const Transcript& a, const Transcript& b) {
  TranscriptDiff diff;
  if (a.num_parties != b.num_parties) {
    diff.identical = false;
    diff.description = "party counts differ (" +
                       std::to_string(a.num_parties) + " vs " +
                       std::to_string(b.num_parties) + ")";
    return diff;
  }
  const size_t common = std::min(a.entries.size(), b.entries.size());
  for (size_t i = 0; i < common; ++i) {
    if (a.entries[i] == b.entries[i]) continue;
    diff.identical = false;
    diff.first_divergence = i;
    const TranscriptEntry& ea = a.entries[i];
    const TranscriptEntry& eb = b.entries[i];
    diff.description =
        "entry " + std::to_string(i) + " differs: (round " +
        std::to_string(ea.round) + ", " + ea.phase + ", " +
        std::to_string(ea.from) + "->" + std::to_string(ea.to) + ", " +
        std::to_string(ea.payload.size()) + " elements) vs (round " +
        std::to_string(eb.round) + ", " + eb.phase + ", " +
        std::to_string(eb.from) + "->" + std::to_string(eb.to) + ", " +
        std::to_string(eb.payload.size()) + " elements)";
    return diff;
  }
  if (a.entries.size() != b.entries.size()) {
    diff.identical = false;
    diff.first_divergence = common;
    diff.description = "transcript lengths differ (" +
                       std::to_string(a.entries.size()) + " vs " +
                       std::to_string(b.entries.size()) + " entries)";
  }
  return diff;
}

MessageInterceptor::SendVerdict TranscriptRecorder::OnSend(
    const WireContext& context, std::vector<uint64_t>& payload) {
  SendVerdict verdict;
  if (next_ != nullptr) {
    verdict = next_->OnSend(context, payload);
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto record = [&](const std::vector<uint64_t>& delivered) {
    TranscriptEntry entry;
    entry.round = context.round;
    entry.phase = context.phase;
    entry.from = context.from;
    entry.to = context.to;
    entry.payload = delivered;
    transcript_.entries.push_back(std::move(entry));
  };
  if (!verdict.swallow) {
    record(payload);
    for (const std::vector<uint64_t>& replay : verdict.replays) {
      record(replay);
    }
  }
  return verdict;
}

Transcript TranscriptRecorder::transcript() const {
  std::lock_guard<std::mutex> lock(mu_);
  return transcript_;
}

size_t TranscriptRecorder::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return transcript_.entries.size();
}

void TranscriptRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  transcript_.entries.clear();
}

Status ReplayIntoLockstep(const Transcript& transcript,
                          LockstepTransport* transport) {
  if (transport->num_parties() != transcript.num_parties) {
    return Status::InvalidArgument(
        "replay transport has " + std::to_string(transport->num_parties()) +
        " parties, transcript was recorded with " +
        std::to_string(transcript.num_parties));
  }
  uint64_t replayed_rounds = 0;
  for (const TranscriptEntry& entry : transcript.entries) {
    if (entry.round < replayed_rounds) {
      return Status::InvalidArgument(
          "transcript entries are not in round order — not a recorded "
          "execution");
    }
    while (replayed_rounds < entry.round) {
      transport->EndRound();
      ++replayed_rounds;
    }
    transport->SetPhase(entry.phase);
    transport->Send(entry.from, entry.to, entry.payload);
  }
  transport->SetPhase("");
  return Status::OK();
}

std::vector<uint64_t> TranscriptPrivacyVerifier::CoalitionView(
    const Transcript& transcript, const std::vector<size_t>& coalition) {
  auto in_coalition = [&](size_t party) {
    return std::find(coalition.begin(), coalition.end(), party) !=
           coalition.end();
  };
  std::vector<uint64_t> view;
  for (const TranscriptEntry& entry : transcript.entries) {
    if (!in_coalition(entry.to) || in_coalition(entry.from)) continue;
    view.insert(view.end(), entry.payload.begin(), entry.payload.end());
  }
  return view;
}

Result<ChiSquareResult> TranscriptPrivacyVerifier::VerifyUniform(
    const Transcript& transcript,
    const std::vector<size_t>& coalition) const {
  const std::vector<uint64_t> view = CoalitionView(transcript, coalition);
  if (view.size() < options_.bins * 5) {
    return Status::InvalidArgument(
        "coalition view has only " + std::to_string(view.size()) +
        " field elements; too few for a " + std::to_string(options_.bins) +
        "-bin test");
  }
  return ChiSquareUniform(BinTopBits(view, options_.bins));
}

Status TranscriptPrivacyVerifier::CheckCoalitionUniform(
    const Transcript& transcript,
    const std::vector<size_t>& coalition) const {
  SQM_ASSIGN_OR_RETURN(const ChiSquareResult result,
                       VerifyUniform(transcript, coalition));
  if (result.p_value < options_.min_p_value) {
    return Status::IntegrityViolation(
        "coalition view is distinguishable from uniform (chi-square " +
        std::to_string(result.statistic) + ", p = " +
        std::to_string(result.p_value) +
        "): shares leak information below the threshold");
  }
  return Status::OK();
}

Result<ChiSquareResult> TranscriptPrivacyVerifier::CompareViews(
    const Transcript& a, const Transcript& b,
    const std::vector<size_t>& coalition) const {
  const std::vector<uint64_t> view_a = CoalitionView(a, coalition);
  const std::vector<uint64_t> view_b = CoalitionView(b, coalition);
  return ChiSquareTwoSample(BinTopBits(view_a, options_.bins),
                            BinTopBits(view_b, options_.bins));
}

}  // namespace testing
}  // namespace sqm
