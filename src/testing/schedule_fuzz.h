#ifndef SQM_TESTING_SCHEDULE_FUZZ_H_
#define SQM_TESTING_SCHEDULE_FUZZ_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/status.h"
#include "testing/transcript.h"

namespace sqm {
namespace testing {

/// Configuration of one schedule-exploration fuzz sweep. Everything an
/// iteration does — fault probabilities, probe inputs, sharing randomness —
/// is derived from a single uint64 iteration seed, so any failure
/// reproduces bit-exactly from the seed the report names.
struct ScheduleFuzzOptions {
  uint64_t seed = 0xf022ed5eedULL;
  size_t iterations = 8;
  size_t num_parties = 5;
  size_t threshold = 2;
  /// Elements in each party's probe input vector.
  size_t vector_size = 6;
  /// Per-iteration fault intensities are drawn uniformly from [0, max].
  double max_drop_probability = 0.15;
  double max_reorder_probability = 0.25;
  double max_delay_mean_seconds = 0.001;
  /// Rounds of the per-party message-storm phase (0 disables it).
  size_t storm_rounds = 3;
  /// Stop at the first failing iteration (keeps its transcripts for
  /// replay); false sweeps every seed and counts failures.
  bool stop_on_failure = true;
};

/// Outcome of a sweep.
struct ScheduleFuzzReport {
  size_t iterations_run = 0;
  size_t failures = 0;
  uint64_t first_failing_seed = 0;  ///< Valid when failures > 0.
  std::string first_failure;        ///< Invariant that broke, human-readable.
  /// Aggregate fault/reliability counters over all threaded runs.
  uint64_t drops_injected = 0;
  uint64_t delays_injected = 0;
  uint64_t reorders_injected = 0;
  uint64_t retries = 0;
};

/// Seeded schedule-exploration fuzzer for ThreadedTransport.
///
/// Each iteration derives a fault mix and probe inputs from its seed, then
/// runs the same BGW probe (input sharing, a batched multiplication, an
/// inner product, opening) twice: once over a fault-free LockstepTransport
/// (the reference) and once over a ThreadedTransport with the drawn drops,
/// delays and reorders. Both runs record transcripts. The invariants:
///
///  1. the released values match the plaintext expectation exactly,
///  2. the threaded release is bit-identical to the lockstep release,
///  3. the two transcripts agree entry-by-entry (retransmissions recover
///     drops without changing what was logically sent).
///
/// A final message-storm phase runs every party on its own thread
/// (net/runner.h) against the same fault mix, verifying per-round content
/// integrity under real interleavings — the part TSan watches.
class ScheduleFuzzer {
 public:
  explicit ScheduleFuzzer(ScheduleFuzzOptions options);

  /// Runs the sweep. An error Status means the harness itself failed; a
  /// broken invariant is reported via `failures` / `first_failure`.
  Result<ScheduleFuzzReport> Run();

  /// Runs a single iteration from its seed — the repro entry point for a
  /// failure the report named. OK iff every invariant held.
  Status RunIteration(uint64_t iteration_seed);

  /// Transcripts of the most recent iteration (reference and threaded),
  /// for replay and divergence inspection.
  const Transcript& last_reference_transcript() const {
    return last_reference_;
  }
  const Transcript& last_threaded_transcript() const {
    return last_threaded_;
  }
  /// Values the most recent iteration's reference run released.
  const std::vector<int64_t>& last_reference_outputs() const {
    return last_outputs_;
  }

  const ScheduleFuzzOptions& options() const { return options_; }

 private:
  Status RunStorm(uint64_t iteration_seed, double drop_probability,
                  double reorder_probability, double delay_mean_seconds);

  ScheduleFuzzOptions options_;
  Transcript last_reference_;
  Transcript last_threaded_;
  std::vector<int64_t> last_outputs_;
  ScheduleFuzzReport accumulating_;
};

}  // namespace testing
}  // namespace sqm

#endif  // SQM_TESTING_SCHEDULE_FUZZ_H_
