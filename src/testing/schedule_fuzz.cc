#include "testing/schedule_fuzz.h"

#include "mpc/field.h"
#include "mpc/protocol.h"
#include "mpc/shamir.h"
#include "net/lockstep.h"
#include "net/runner.h"
#include "net/threaded.h"
#include "sampling/rng.h"

namespace sqm {
namespace testing {
namespace {

/// Deterministic storm-message content: receiver recomputes this and any
/// corruption or cross-wiring of (round, from, to, index) is caught.
uint64_t StormElement(uint64_t seed, uint64_t round, size_t from, size_t to,
                      size_t index) {
  uint64_t z = seed;
  z ^= round * 0x9E3779B97F4A7C15ULL;
  z ^= static_cast<uint64_t>(from) * 0xBF58476D1CE4E5B9ULL;
  z ^= static_cast<uint64_t>(to) * 0x94D049BB133111EBULL;
  z ^= static_cast<uint64_t>(index) + 1;
  z ^= z >> 30;
  z *= 0xBF58476D1CE4E5B9ULL;
  z ^= z >> 27;
  z *= 0x94D049BB133111EBULL;
  z ^= z >> 31;
  return z % Field::kModulus;
}

constexpr size_t kStormPayloadSize = 5;

}  // namespace

ScheduleFuzzer::ScheduleFuzzer(ScheduleFuzzOptions options)
    : options_(options) {}

Result<ScheduleFuzzReport> ScheduleFuzzer::Run() {
  accumulating_ = ScheduleFuzzReport{};
  Rng seed_stream(options_.seed);
  for (size_t i = 0; i < options_.iterations; ++i) {
    const uint64_t iteration_seed = seed_stream.NextUint64();
    const Status status = RunIteration(iteration_seed);
    ++accumulating_.iterations_run;
    if (!status.ok()) {
      if (accumulating_.failures == 0) {
        accumulating_.first_failing_seed = iteration_seed;
        accumulating_.first_failure = status.ToString();
      }
      ++accumulating_.failures;
      if (options_.stop_on_failure) break;
    }
  }
  return accumulating_;
}

Status ScheduleFuzzer::RunIteration(uint64_t iteration_seed) {
  const size_t n = options_.num_parties;
  SQM_RETURN_NOT_OK(ShamirScheme::Validate(n, options_.threshold));

  // Everything below is a pure function of the iteration seed.
  Rng derive(iteration_seed);
  const double drop = derive.NextDouble() * options_.max_drop_probability;
  const double reorder =
      derive.NextDouble() * options_.max_reorder_probability;
  const double delay = derive.NextDouble() * options_.max_delay_mean_seconds;
  std::vector<int64_t> x0(options_.vector_size);
  std::vector<int64_t> x1(options_.vector_size);
  for (auto& v : x0) v = static_cast<int64_t>(derive.NextBounded(2001)) - 1000;
  for (auto& v : x1) v = static_cast<int64_t>(derive.NextBounded(2001)) - 1000;

  // The probe: input sharing, a batched Mul, an inner product, two opens.
  // Driver mode in both runs, so the global send order — and therefore the
  // transcript — must be identical regardless of the fault schedule.
  auto run_probe = [&](Transport* net,
                       std::vector<int64_t>* outputs) -> Status {
    BgwProtocol protocol(ShamirScheme(n, options_.threshold), net,
                         iteration_seed ^ 0xb9d7);
    const SharedVector a =
        protocol.ShareFromParty(0, Field::EncodeVector(x0));
    const SharedVector b =
        protocol.ShareFromParty(1, Field::EncodeVector(x1));
    SQM_ASSIGN_OR_RETURN(const SharedVector prod, protocol.Mul(a, b));
    SQM_ASSIGN_OR_RETURN(const SharedVector ip, protocol.InnerProduct(a, b));
    *outputs = protocol.OpenSigned(prod);
    const std::vector<int64_t> ip_open = protocol.OpenSigned(ip);
    outputs->insert(outputs->end(), ip_open.begin(), ip_open.end());
    return Status::OK();
  };

  // Reference: fault-free lockstep.
  TranscriptRecorder reference_recorder(n);
  std::vector<int64_t> reference_outputs;
  {
    LockstepTransport lockstep(n, 0.0, Field::kWireBytes);
    lockstep.SetInterceptor(&reference_recorder);
    SQM_RETURN_NOT_OK(run_probe(&lockstep, &reference_outputs));
    lockstep.SetInterceptor(nullptr);
  }
  last_reference_ = reference_recorder.transcript();
  last_outputs_ = reference_outputs;

  // Expected plaintext values: the probe's inputs are small enough that
  // the products never wrap the field.
  std::vector<int64_t> expected(options_.vector_size, 0);
  int64_t expected_ip = 0;
  for (size_t t = 0; t < options_.vector_size; ++t) {
    expected[t] = x0[t] * x1[t];
    expected_ip += expected[t];
  }
  expected.push_back(expected_ip);
  if (reference_outputs != expected) {
    return Status::IntegrityViolation(
        "seed " + std::to_string(iteration_seed) +
        ": lockstep probe released wrong values");
  }

  // Faulted threaded run, driver mode.
  TranscriptRecorder threaded_recorder(n);
  std::vector<int64_t> threaded_outputs;
  ThreadedTransportOptions threaded_options;
  threaded_options.element_wire_bytes = Field::kWireBytes;
  threaded_options.receive_timeout_seconds = 0.02;
  threaded_options.max_retries = 6;
  threaded_options.retry_backoff_seconds = 0.0005;
  threaded_options.faults.all_links.drop_probability = drop;
  threaded_options.faults.all_links.reorder_probability = reorder;
  threaded_options.faults.all_links.delay_mean_seconds = delay;
  threaded_options.faults.seed = iteration_seed ^ 0xfa017;
  {
    ThreadedTransport threaded(n, threaded_options);
    threaded.SetInterceptor(&threaded_recorder);
    SQM_RETURN_NOT_OK(run_probe(&threaded, &threaded_outputs));
    const TransportStats stats = threaded.Snapshot();
    accumulating_.drops_injected += stats.drops_injected;
    accumulating_.delays_injected += stats.delays_injected;
    accumulating_.reorders_injected += stats.reorders_injected;
    accumulating_.retries += stats.retries;
    threaded.SetInterceptor(nullptr);
  }
  last_threaded_ = threaded_recorder.transcript();

  if (threaded_outputs != reference_outputs) {
    return Status::IntegrityViolation(
        "seed " + std::to_string(iteration_seed) +
        ": threaded release diverged from the lockstep reference");
  }
  const TranscriptDiff diff =
      CompareTranscripts(last_reference_, last_threaded_);
  if (!diff.identical) {
    return Status::IntegrityViolation(
        "seed " + std::to_string(iteration_seed) +
        ": transcripts diverged: " + diff.description);
  }

  if (options_.storm_rounds > 0) {
    SQM_RETURN_NOT_OK(RunStorm(iteration_seed, drop, reorder, delay));
  }
  return Status::OK();
}

Status ScheduleFuzzer::RunStorm(uint64_t iteration_seed,
                                double drop_probability,
                                double reorder_probability,
                                double delay_mean_seconds) {
  const size_t n = options_.num_parties;
  ThreadedTransportOptions storm_options;
  storm_options.element_wire_bytes = Field::kWireBytes;
  storm_options.receive_timeout_seconds = 0.05;
  storm_options.max_retries = 6;
  storm_options.retry_backoff_seconds = 0.0005;
  storm_options.faults.all_links.drop_probability = drop_probability;
  storm_options.faults.all_links.reorder_probability = reorder_probability;
  storm_options.faults.all_links.delay_mean_seconds = delay_mean_seconds;
  storm_options.faults.seed = iteration_seed ^ 0x5702a;
  ThreadedTransport storm(n, storm_options);

  // Every party on its own thread: all-to-all rounds of deterministic
  // content, verified element-by-element on receipt. The round barrier
  // guarantees at most one in-flight message per channel, so reordering
  // and delays may shuffle timing but never content.
  PartyRunner runner(n);
  return runner.Run([&](size_t party) -> Status {
    for (uint64_t round = 0; round < options_.storm_rounds; ++round) {
      for (size_t to = 0; to < n; ++to) {
        if (to == party) continue;
        Transport::Payload payload(kStormPayloadSize);
        for (size_t t = 0; t < kStormPayloadSize; ++t) {
          payload[t] = StormElement(iteration_seed, round, party, to, t);
        }
        storm.Send(party, to, std::move(payload));
      }
      for (size_t from = 0; from < n; ++from) {
        if (from == party) continue;
        SQM_ASSIGN_OR_RETURN(const Transport::Payload received,
                             storm.Receive(from, party));
        if (received.size() != kStormPayloadSize) {
          return Status::IntegrityViolation(
              "storm message from " + std::to_string(from) + " to " +
              std::to_string(party) + " has wrong size");
        }
        for (size_t t = 0; t < kStormPayloadSize; ++t) {
          if (received[t] !=
              StormElement(iteration_seed, round, from, party, t)) {
            return Status::IntegrityViolation(
                "storm message from " + std::to_string(from) + " to " +
                std::to_string(party) + " round " + std::to_string(round) +
                " corrupted at element " + std::to_string(t));
          }
        }
      }
      storm.ArriveRound(party);
    }
    return Status::OK();
  });
}

}  // namespace testing
}  // namespace sqm
