#ifndef SQM_TESTING_TAMPER_H_
#define SQM_TESTING_TAMPER_H_

#include <cstdint>
#include <limits>
#include <mutex>
#include <string>
#include <vector>

#include "net/transport.h"

namespace sqm {
namespace testing {

/// Which directed traffic a tamper policy applies to — FaultInjector-style
/// addressing (any party, a specific link, a phase label, a round window).
struct TamperTarget {
  static constexpr size_t kAnyParty = std::numeric_limits<size_t>::max();

  size_t from = kAnyParty;
  size_t to = kAnyParty;
  /// Empty matches every phase; otherwise must equal the transport's phase
  /// label at send time ("input", "mul", "open", "secagg_upload", ...).
  std::string phase;
  uint64_t min_round = 0;
  uint64_t max_round = std::numeric_limits<uint64_t>::max();

  bool Matches(const MessageInterceptor::WireContext& context) const;
};

/// One composable man-in-the-middle behavior.
struct TamperPolicy {
  enum class Kind {
    /// Adds `magnitude` (mod p) to payload element `element` — a perturbed
    /// share.
    kAdditive,
    /// XORs bit `bit` of payload element `element` — wire corruption.
    kBitFlip,
    /// Adds magnitude * alpha_to^degree to the targeted element, turning a
    /// degree-t dealing into a consistent higher-degree polynomial when
    /// applied across a dealer's whole fan-out (wrong-degree dealing).
    kWrongDegree,
    /// Adds magnitude * alpha_to to the targeted element, so different
    /// recipients see different values for the same logical broadcast
    /// (equivocation).
    kEquivocate,
    /// Duplicates the message: an identical copy is enqueued right behind
    /// the original.
    kReplay,
    /// Swallows the message entirely (targeted loss with no retransmit).
    kSwallow,
  };

  Kind kind = Kind::kAdditive;
  TamperTarget target;

  /// Index of the payload element to corrupt (clamped to the payload).
  size_t element = 0;
  /// Field offset for kAdditive/kWrongDegree/kEquivocate.
  uint64_t magnitude = 1;
  /// Bit index for kBitFlip (0..63; bits >= 61 overflow the field range,
  /// which checked decodes must also survive).
  unsigned bit = 0;
  /// Polynomial degree for kWrongDegree (use threshold+1 or higher to
  /// exceed the scheme's degree).
  size_t degree = 0;

  /// How many matching messages to tamper before going dormant.
  /// The default 1 is the "single-message tamper" of the conformance
  /// property; kAnyCount never disarms.
  static constexpr size_t kAnyCount = std::numeric_limits<size_t>::max();
  size_t max_applications = 1;
  /// Number of matching messages to let through untouched before the first
  /// application (pick the k-th matching message).
  size_t skip_matches = 0;
};

const char* TamperKindToString(TamperPolicy::Kind kind);

/// One tampering the interceptor actually performed, for test assertions
/// and failure repro logs.
struct TamperRecord {
  TamperPolicy::Kind kind = TamperPolicy::Kind::kAdditive;
  size_t policy_index = 0;
  size_t from = 0;
  size_t to = 0;
  uint64_t round = 0;
  std::string phase;
  size_t element = 0;
};

/// Man-in-the-middle Transport decorator: applies an ordered list of
/// TamperPolicies to every matching wire message. Attach with
/// Transport::SetInterceptor. Thread-safe (ThreadedTransport senders call
/// OnSend concurrently); deterministic given the send order.
class ByzantineInterceptor : public MessageInterceptor {
 public:
  ByzantineInterceptor() = default;
  explicit ByzantineInterceptor(std::vector<TamperPolicy> policies)
      : policies_(std::move(policies)),
        matches_seen_(policies_.size(), 0),
        applications_(policies_.size(), 0) {}

  /// Adds a policy (before the run; not thread-safe against OnSend).
  void AddPolicy(TamperPolicy policy);

  SendVerdict OnSend(const WireContext& context,
                     std::vector<uint64_t>& payload) override;

  /// Total tamperings performed across all policies.
  size_t total_applications() const;
  /// Tamperings performed by policy `i`.
  size_t applications(size_t i) const;
  /// Everything the interceptor did, in send order.
  std::vector<TamperRecord> log() const;

  /// Re-arms every policy and clears the log (for the next iteration of a
  /// fuzz sweep).
  void ResetCounters();

 private:
  std::vector<TamperPolicy> policies_;

  mutable std::mutex mu_;
  std::vector<size_t> matches_seen_;
  std::vector<size_t> applications_;
  std::vector<TamperRecord> log_;
};

}  // namespace testing
}  // namespace sqm

#endif  // SQM_TESTING_TAMPER_H_
