#include "testing/tamper.h"

#include <algorithm>

#include "mpc/field.h"

namespace sqm {
namespace testing {

bool TamperTarget::Matches(
    const MessageInterceptor::WireContext& context) const {
  if (from != kAnyParty && context.from != from) return false;
  if (to != kAnyParty && context.to != to) return false;
  if (!phase.empty() && context.phase != phase) return false;
  return context.round >= min_round && context.round <= max_round;
}

const char* TamperKindToString(TamperPolicy::Kind kind) {
  switch (kind) {
    case TamperPolicy::Kind::kAdditive:
      return "additive";
    case TamperPolicy::Kind::kBitFlip:
      return "bitflip";
    case TamperPolicy::Kind::kWrongDegree:
      return "wrong_degree";
    case TamperPolicy::Kind::kEquivocate:
      return "equivocate";
    case TamperPolicy::Kind::kReplay:
      return "replay";
    case TamperPolicy::Kind::kSwallow:
      return "swallow";
  }
  return "unknown";
}

void ByzantineInterceptor::AddPolicy(TamperPolicy policy) {
  policies_.push_back(std::move(policy));
  matches_seen_.push_back(0);
  applications_.push_back(0);
}

MessageInterceptor::SendVerdict ByzantineInterceptor::OnSend(
    const WireContext& context, std::vector<uint64_t>& payload) {
  SendVerdict verdict;
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < policies_.size(); ++i) {
    const TamperPolicy& policy = policies_[i];
    if (!policy.target.Matches(context)) continue;
    const size_t seen = matches_seen_[i]++;
    if (seen < policy.skip_matches) continue;
    if (applications_[i] >= policy.max_applications) continue;
    if (payload.empty() && policy.kind != TamperPolicy::Kind::kReplay &&
        policy.kind != TamperPolicy::Kind::kSwallow) {
      continue;  // Nothing to corrupt.
    }
    const size_t element = payload.empty()
                               ? 0
                               : std::min(policy.element, payload.size() - 1);
    switch (policy.kind) {
      case TamperPolicy::Kind::kAdditive:
        payload[element] = Field::Add(Field::Reduce(payload[element]),
                                      Field::Reduce(policy.magnitude));
        break;
      case TamperPolicy::Kind::kBitFlip:
        payload[element] ^= uint64_t{1} << (policy.bit & 63u);
        break;
      case TamperPolicy::Kind::kWrongDegree: {
        // Adding c * alpha_to^degree across a dealer's fan-out is exactly
        // what dealing with an extra degree-`degree` term would produce.
        const Field::Element alpha =
            static_cast<Field::Element>(context.to + 1);
        Field::Element term = Field::Reduce(policy.magnitude);
        for (size_t d = 0; d < policy.degree; ++d) {
          term = Field::Mul(term, alpha);
        }
        payload[element] =
            Field::Add(Field::Reduce(payload[element]), term);
        break;
      }
      case TamperPolicy::Kind::kEquivocate: {
        // Recipient-dependent offset: the same logical broadcast arrives
        // different at every receiver.
        const Field::Element alpha =
            static_cast<Field::Element>(context.to + 1);
        payload[element] =
            Field::Add(Field::Reduce(payload[element]),
                       Field::Mul(Field::Reduce(policy.magnitude), alpha));
        break;
      }
      case TamperPolicy::Kind::kReplay:
        verdict.replays.push_back(payload);
        break;
      case TamperPolicy::Kind::kSwallow:
        verdict.swallow = true;
        break;
    }
    ++applications_[i];
    TamperRecord record;
    record.kind = policy.kind;
    record.policy_index = i;
    record.from = context.from;
    record.to = context.to;
    record.round = context.round;
    record.phase = context.phase;
    record.element = element;
    log_.push_back(std::move(record));
    if (verdict.swallow) break;  // Later policies cannot see the message.
  }
  return verdict;
}

size_t ByzantineInterceptor::total_applications() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t total = 0;
  for (size_t count : applications_) total += count;
  return total;
}

size_t ByzantineInterceptor::applications(size_t i) const {
  std::lock_guard<std::mutex> lock(mu_);
  return applications_[i];
}

std::vector<TamperRecord> ByzantineInterceptor::log() const {
  std::lock_guard<std::mutex> lock(mu_);
  return log_;
}

void ByzantineInterceptor::ResetCounters() {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t& count : matches_seen_) count = 0;
  for (size_t& count : applications_) count = 0;
  log_.clear();
}

}  // namespace testing
}  // namespace sqm
