#ifndef SQM_DP_GAUSSIAN_H_
#define SQM_DP_GAUSSIAN_H_

#include <cstddef>

#include "core/status.h"

namespace sqm {

/// Continuous Gaussian mechanism accounting — used by the central-DP
/// baselines (Analyze-Gauss PCA, DPSGD, Approx-Poly) and the local-DP VFL
/// baseline (Algorithm 4 / Lemma 12).

/// RDP of the Gaussian mechanism: tau = alpha * sensitivity^2 / (2 sigma^2).
double GaussianRdp(double alpha, double l2_sensitivity, double sigma);

/// Exact delta of the Gaussian mechanism at a given epsilon (Balle & Wang,
/// "analytic Gaussian mechanism" — the tight characterization behind the
/// paper's Lemma 8):
///   delta = Phi(D/(2 sigma) - eps sigma / D) - e^eps Phi(-D/(2 sigma) -
///           eps sigma / D),  D = l2_sensitivity.
double GaussianDelta(double epsilon, double l2_sensitivity, double sigma);

/// Smallest sigma such that Gaussian noise with that standard deviation
/// satisfies (epsilon, delta)-DP for the given L2 sensitivity. Bisection on
/// the exact GaussianDelta; accurate to ~1e-12 relative.
Result<double> CalibrateGaussianSigma(double epsilon, double delta,
                                      double l2_sensitivity);

/// Standard normal CDF.
double StdNormalCdf(double x);

/// DPSGD accounting: epsilon after `rounds` Poisson-subsampled Gaussian
/// steps with sampling rate q, noise multiplier sigma (noise std divided by
/// the clipping norm). Uses the subsampled-RDP bound of Lemma 11 with the
/// Gaussian RDP curve and optimizes over the integer alpha grid.
double DpSgdEpsilon(double noise_multiplier, double q, size_t rounds,
                    double delta);

/// Smallest noise multiplier achieving (epsilon, delta) after `rounds`
/// subsampled steps — the calibration used for the central DPSGD baseline.
Result<double> CalibrateDpSgdNoise(double epsilon, double delta, double q,
                                   size_t rounds);

}  // namespace sqm

#endif  // SQM_DP_GAUSSIAN_H_
