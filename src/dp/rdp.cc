#include "dp/rdp.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/logging.h"

namespace sqm {

double RdpToEpsilon(double alpha, double tau, double delta) {
  SQM_CHECK(alpha > 1.0);
  SQM_CHECK(delta > 0.0 && delta < 1.0);
  SQM_CHECK(tau >= 0.0);
  // Lemma 9: eps = tau + [log(1/delta) + (alpha-1) log(1 - 1/alpha)
  //                       - log(alpha)] / (alpha - 1).
  return tau + (std::log(1.0 / delta) +
                (alpha - 1.0) * std::log(1.0 - 1.0 / alpha) -
                std::log(alpha)) /
                   (alpha - 1.0);
}

double BestEpsilonFromCurve(const std::function<double(double)>& tau_of_alpha,
                            const std::vector<double>& alphas, double delta,
                            double* best_alpha) {
  SQM_CHECK(!alphas.empty());
  double best = std::numeric_limits<double>::infinity();
  double arg = alphas.front();
  for (double alpha : alphas) {
    const double tau = tau_of_alpha(alpha);
    if (!std::isfinite(tau)) continue;
    const double eps = RdpToEpsilon(alpha, tau, delta);
    if (eps < best) {
      best = eps;
      arg = alpha;
    }
  }
  if (best_alpha != nullptr) *best_alpha = arg;
  return best;
}

PrivacyGuarantee GuaranteeFromCurve(
    const std::function<double(double)>& tau_of_alpha,
    const std::vector<double>& alphas, double delta) {
  PrivacyGuarantee guarantee;
  guarantee.delta = delta;
  guarantee.epsilon =
      BestEpsilonFromCurve(tau_of_alpha, alphas, delta,
                           &guarantee.best_alpha);
  return guarantee;
}

std::vector<double> DefaultAlphaGrid() {
  std::vector<double> alphas;
  for (size_t a = 2; a <= 128; ++a) alphas.push_back(static_cast<double>(a));
  return alphas;
}

double ComposeRdp(const std::vector<double>& taus) {
  double total = 0.0;
  for (double tau : taus) total += tau;
  return total;
}

double LogBinomial(size_t n, size_t k) {
  SQM_CHECK(k <= n);
  return std::lgamma(static_cast<double>(n) + 1.0) -
         std::lgamma(static_cast<double>(k) + 1.0) -
         std::lgamma(static_cast<double>(n - k) + 1.0);
}

double LogSumExp(const std::vector<double>& xs) {
  SQM_CHECK(!xs.empty());
  const double max_x = *std::max_element(xs.begin(), xs.end());
  if (!std::isfinite(max_x)) return max_x;
  double acc = 0.0;
  for (double x : xs) acc += std::exp(x - max_x);
  return max_x + std::log(acc);
}

double SubsampledRdp(size_t alpha, double q,
                     const std::function<double(size_t)>& tau_at_order) {
  SQM_CHECK(alpha >= 2);
  SQM_CHECK(q > 0.0 && q <= 1.0);
  if (q == 1.0) return tau_at_order(alpha);

  const double a = static_cast<double>(alpha);
  const double log1mq = std::log1p(-q);
  const double logq = std::log(q);

  std::vector<double> log_terms;
  log_terms.reserve(alpha);
  // l in {0, 1} combine to (1-q)^{alpha-1} (alpha*q - q + 1).
  log_terms.push_back((a - 1.0) * log1mq + std::log(a * q - q + 1.0));
  // l = 2..alpha: C(alpha, l) (1-q)^{alpha-l} q^l e^{(l-1) tau_l}.
  for (size_t l = 2; l <= alpha; ++l) {
    const double tau_l = tau_at_order(l);
    log_terms.push_back(LogBinomial(alpha, l) +
                        (a - static_cast<double>(l)) * log1mq +
                        static_cast<double>(l) * logq +
                        (static_cast<double>(l) - 1.0) * tau_l);
  }
  return LogSumExp(log_terms) / (a - 1.0);
}

}  // namespace sqm
