#include "dp/accountant.h"

#include <cmath>
#include <limits>

#include "core/logging.h"
#include "dp/gaussian.h"
#include "dp/rdp.h"
#include "dp/skellam.h"

namespace sqm {
namespace {

/// Per-event RDP at integer order alpha, with subsampling amplification
/// applied when the event is sampled.
double EventRdp(const PrivacyEvent& event, size_t alpha) {
  double per_round;
  if (event.sampling_rate >= 1.0) {
    per_round = event.rdp(static_cast<double>(alpha));
  } else {
    per_round = SubsampledRdp(alpha, event.sampling_rate, [&](size_t l) {
      return event.rdp(static_cast<double>(l));
    });
  }
  return static_cast<double>(event.count) * per_round;
}

}  // namespace

void PrivacyAccountant::AddGaussian(const std::string& label,
                                    double l2_sensitivity, double sigma,
                                    double sampling_rate, size_t count) {
  SQM_CHECK(sigma > 0.0 && count >= 1);
  PrivacyEvent event;
  event.label = label;
  event.rdp = [l2_sensitivity, sigma](double alpha) {
    return GaussianRdp(alpha, l2_sensitivity, sigma);
  };
  event.sampling_rate = sampling_rate;
  event.count = count;
  events_.push_back(std::move(event));
}

void PrivacyAccountant::AddSkellam(const std::string& label,
                                   double l1_sensitivity,
                                   double l2_sensitivity, double mu,
                                   double sampling_rate, size_t count) {
  SQM_CHECK(mu > 0.0 && count >= 1);
  PrivacyEvent event;
  event.label = label;
  event.rdp = [l1_sensitivity, l2_sensitivity, mu](double alpha) {
    return SkellamRdp(alpha, l1_sensitivity, l2_sensitivity, mu);
  };
  event.sampling_rate = sampling_rate;
  event.count = count;
  events_.push_back(std::move(event));
}

void PrivacyAccountant::AddSkellamWithDropouts(
    const std::string& label, double l1_sensitivity, double l2_sensitivity,
    double mu, size_t num_clients, size_t num_dropped, double sampling_rate,
    size_t count) {
  const double realized_mu =
      SkellamMuWithDropouts(mu, num_clients, num_dropped);
  SQM_CHECK(realized_mu > 0.0);
  AddSkellam(label, l1_sensitivity, l2_sensitivity, realized_mu,
             sampling_rate, count);
}

void PrivacyAccountant::AddEvent(PrivacyEvent event) {
  SQM_CHECK(event.rdp != nullptr);
  SQM_CHECK(event.count >= 1);
  SQM_CHECK(event.sampling_rate > 0.0 && event.sampling_rate <= 1.0);
  events_.push_back(std::move(event));
}

double PrivacyAccountant::TotalRdp(size_t alpha) const {
  SQM_CHECK(alpha >= 2);
  double total = 0.0;
  for (const PrivacyEvent& event : events_) {
    total += EventRdp(event, alpha);
  }
  return total;
}

Result<double> PrivacyAccountant::TotalEpsilon(double delta) const {
  if (delta <= 0.0 || delta >= 1.0) {
    return Status::InvalidArgument("delta must be in (0, 1)");
  }
  if (events_.empty()) return 0.0;
  const auto curve = [this](double alpha) {
    return TotalRdp(static_cast<size_t>(alpha));
  };
  return BestEpsilonFromCurve(curve, DefaultAlphaGrid(), delta);
}

Result<PrivacyGuarantee> PrivacyAccountant::TotalGuarantee(
    double delta) const {
  if (delta <= 0.0 || delta >= 1.0) {
    return Status::InvalidArgument("delta must be in (0, 1)");
  }
  PrivacyGuarantee guarantee;
  guarantee.delta = delta;
  if (events_.empty()) return guarantee;
  const auto curve = [this](double alpha) {
    return TotalRdp(static_cast<size_t>(alpha));
  };
  return GuaranteeFromCurve(curve, DefaultAlphaGrid(), delta);
}

Result<size_t> PrivacyAccountant::RemainingRepetitions(
    const PrivacyEvent& event, double target_epsilon, double delta,
    size_t max_repetitions) const {
  if (target_epsilon <= 0.0) {
    return Status::InvalidArgument("target_epsilon must be positive");
  }
  if (event.rdp == nullptr) {
    return Status::InvalidArgument("event has no RDP curve");
  }
  SQM_ASSIGN_OR_RETURN(const double base_eps, TotalEpsilon(delta));
  if (base_eps > target_epsilon) return size_t{0};

  const auto epsilon_with = [&](size_t k) -> double {
    if (k == 0) return base_eps;
    const auto curve = [&](double alpha) {
      PrivacyEvent scaled = event;
      scaled.count = event.count * k;
      return TotalRdp(static_cast<size_t>(alpha)) +
             EventRdp(scaled, static_cast<size_t>(alpha));
    };
    return BestEpsilonFromCurve(curve, DefaultAlphaGrid(), delta);
  };

  // Exponential probe then binary search on the monotone epsilon(k).
  size_t hi = 1;
  while (hi < max_repetitions && epsilon_with(hi) <= target_epsilon) {
    hi *= 2;
  }
  if (hi >= max_repetitions &&
      epsilon_with(max_repetitions) <= target_epsilon) {
    return max_repetitions;
  }
  size_t lo = hi / 2;  // epsilon_with(lo) <= target (or lo == 0).
  while (lo + 1 < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (epsilon_with(mid) <= target_epsilon) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

void PrivacyAccountant::Reset() { events_.clear(); }

}  // namespace sqm
