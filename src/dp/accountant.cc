#include "dp/accountant.h"

#include <cmath>
#include <limits>

#include "core/logging.h"
#include "dp/gaussian.h"
#include "dp/rdp.h"
#include "dp/skellam.h"
#include "obs/obs.h"

namespace sqm {
namespace {

/// Per-event RDP at integer order alpha, with subsampling amplification
/// applied when the event is sampled.
double EventRdp(const PrivacyEvent& event, size_t alpha) {
  double per_round;
  if (event.sampling_rate >= 1.0) {
    per_round = event.rdp(static_cast<double>(alpha));
  } else {
    per_round = SubsampledRdp(alpha, event.sampling_rate, [&](size_t l) {
      return event.rdp(static_cast<double>(l));
    });
  }
  return static_cast<double>(event.count) * per_round;
}

}  // namespace

void PrivacyAccountant::SetLedgerContext(double delta, double gamma,
                                         size_t dimension) {
  ledger_delta_ = delta;
  ledger_gamma_ = gamma;
  ledger_dimension_ = dimension;
}

void PrivacyAccountant::RecordLedgerEntry(obs::LedgerEntry entry) {
  entry.gamma = ledger_gamma_;
  entry.dimension = ledger_dimension_;
  if (ledger_delta_ > 0.0 && ledger_delta_ < 1.0 && !events_.empty()) {
    const PrivacyEvent& event = events_.back();
    const auto standalone = [&event](double alpha) {
      return EventRdp(event, static_cast<size_t>(alpha));
    };
    const PrivacyGuarantee guarantee =
        GuaranteeFromCurve(standalone, DefaultAlphaGrid(), ledger_delta_);
    entry.epsilon = guarantee.epsilon;
    entry.delta = ledger_delta_;
    entry.best_alpha = guarantee.best_alpha;
    const auto cumulative = [this](double alpha) {
      return TotalRdp(static_cast<size_t>(alpha));
    };
    entry.cumulative_epsilon =
        BestEpsilonFromCurve(cumulative, DefaultAlphaGrid(), ledger_delta_);
  }
  entry.sequence = ledger_.size();
  entry.elapsed_seconds = static_cast<double>(obs::NowMicros()) * 1e-6;
  if (obs::Enabled()) obs::PrivacyLedger::Global().Append(entry);
  ledger_.push_back(std::move(entry));
}

void PrivacyAccountant::AddGaussian(const std::string& label,
                                    double l2_sensitivity, double sigma,
                                    double sampling_rate, size_t count) {
  SQM_CHECK(sigma > 0.0 && count >= 1);
  PrivacyEvent event;
  event.label = label;
  event.rdp = [l2_sensitivity, sigma](double alpha) {
    return GaussianRdp(alpha, l2_sensitivity, sigma);
  };
  event.sampling_rate = sampling_rate;
  event.count = count;
  events_.push_back(std::move(event));

  obs::LedgerEntry entry;
  entry.mechanism = "gaussian";
  entry.label = label;
  entry.mu = sigma;
  entry.l2_sensitivity = l2_sensitivity;
  entry.sampling_rate = sampling_rate;
  entry.count = count;
  RecordLedgerEntry(std::move(entry));
}

void PrivacyAccountant::AddSkellam(const std::string& label,
                                   double l1_sensitivity,
                                   double l2_sensitivity, double mu,
                                   double sampling_rate, size_t count) {
  SQM_CHECK(mu > 0.0 && count >= 1);
  PrivacyEvent event;
  event.label = label;
  event.rdp = [l1_sensitivity, l2_sensitivity, mu](double alpha) {
    return SkellamRdp(alpha, l1_sensitivity, l2_sensitivity, mu);
  };
  event.sampling_rate = sampling_rate;
  event.count = count;
  events_.push_back(std::move(event));

  obs::LedgerEntry entry;
  entry.mechanism = "skellam";
  entry.label = label;
  entry.mu = mu;
  entry.l1_sensitivity = l1_sensitivity;
  entry.l2_sensitivity = l2_sensitivity;
  entry.sampling_rate = sampling_rate;
  entry.count = count;
  RecordLedgerEntry(std::move(entry));
}

void PrivacyAccountant::AddSkellamWithDropouts(
    const std::string& label, double l1_sensitivity, double l2_sensitivity,
    double mu, size_t num_clients, size_t num_dropped, double sampling_rate,
    size_t count) {
  const double realized_mu =
      SkellamMuWithDropouts(mu, num_clients, num_dropped);
  SQM_CHECK(realized_mu > 0.0);
  PrivacyEvent event;
  event.label = label;
  event.rdp = [l1_sensitivity, l2_sensitivity, realized_mu](double alpha) {
    return SkellamRdp(alpha, l1_sensitivity, l2_sensitivity, realized_mu);
  };
  event.sampling_rate = sampling_rate;
  event.count = count;
  events_.push_back(std::move(event));

  // The charge is honest at the realized mu; the ledger keeps the deficit
  // visible next to it.
  obs::LedgerEntry entry;
  entry.mechanism = "skellam_dropout";
  entry.label = label;
  entry.mu = realized_mu;
  entry.l1_sensitivity = l1_sensitivity;
  entry.l2_sensitivity = l2_sensitivity;
  entry.sampling_rate = sampling_rate;
  entry.count = count;
  entry.contributors = num_clients - num_dropped;
  entry.expected_contributors = num_clients;
  entry.deficit_mu = mu - realized_mu;
  RecordLedgerEntry(std::move(entry));
}

void PrivacyAccountant::AddEvent(PrivacyEvent event) {
  SQM_CHECK(event.rdp != nullptr);
  SQM_CHECK(event.count >= 1);
  SQM_CHECK(event.sampling_rate > 0.0 && event.sampling_rate <= 1.0);
  obs::LedgerEntry entry;
  entry.mechanism = "custom";
  entry.label = event.label;
  entry.sampling_rate = event.sampling_rate;
  entry.count = event.count;
  events_.push_back(std::move(event));
  RecordLedgerEntry(std::move(entry));
}

double PrivacyAccountant::TotalRdp(size_t alpha) const {
  SQM_CHECK(alpha >= 2);
  double total = 0.0;
  for (const PrivacyEvent& event : events_) {
    total += EventRdp(event, alpha);
  }
  return total;
}

Result<double> PrivacyAccountant::TotalEpsilon(double delta) const {
  if (delta <= 0.0 || delta >= 1.0) {
    return Status::InvalidArgument("delta must be in (0, 1)");
  }
  if (events_.empty()) return 0.0;
  const auto curve = [this](double alpha) {
    return TotalRdp(static_cast<size_t>(alpha));
  };
  return BestEpsilonFromCurve(curve, DefaultAlphaGrid(), delta);
}

Result<PrivacyGuarantee> PrivacyAccountant::TotalGuarantee(
    double delta) const {
  if (delta <= 0.0 || delta >= 1.0) {
    return Status::InvalidArgument("delta must be in (0, 1)");
  }
  PrivacyGuarantee guarantee;
  guarantee.delta = delta;
  if (events_.empty()) return guarantee;
  const auto curve = [this](double alpha) {
    return TotalRdp(static_cast<size_t>(alpha));
  };
  return GuaranteeFromCurve(curve, DefaultAlphaGrid(), delta);
}

Result<size_t> PrivacyAccountant::RemainingRepetitions(
    const PrivacyEvent& event, double target_epsilon, double delta,
    size_t max_repetitions) const {
  if (target_epsilon <= 0.0) {
    return Status::InvalidArgument("target_epsilon must be positive");
  }
  if (event.rdp == nullptr) {
    return Status::InvalidArgument("event has no RDP curve");
  }
  SQM_ASSIGN_OR_RETURN(const double base_eps, TotalEpsilon(delta));
  if (base_eps > target_epsilon) return size_t{0};

  const auto epsilon_with = [&](size_t k) -> double {
    if (k == 0) return base_eps;
    const auto curve = [&](double alpha) {
      PrivacyEvent scaled = event;
      scaled.count = event.count * k;
      return TotalRdp(static_cast<size_t>(alpha)) +
             EventRdp(scaled, static_cast<size_t>(alpha));
    };
    return BestEpsilonFromCurve(curve, DefaultAlphaGrid(), delta);
  };

  // Exponential probe then binary search on the monotone epsilon(k).
  size_t hi = 1;
  while (hi < max_repetitions && epsilon_with(hi) <= target_epsilon) {
    hi *= 2;
  }
  if (hi >= max_repetitions &&
      epsilon_with(max_repetitions) <= target_epsilon) {
    return max_repetitions;
  }
  size_t lo = hi / 2;  // epsilon_with(lo) <= target (or lo == 0).
  while (lo + 1 < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (epsilon_with(mid) <= target_epsilon) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

void PrivacyAccountant::Reset() {
  events_.clear();
  ledger_.clear();
}

}  // namespace sqm
