#ifndef SQM_DP_ACCOUNTANT_H_
#define SQM_DP_ACCOUNTANT_H_

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "core/status.h"
#include "dp/rdp.h"

namespace sqm {

/// A privacy event: one mechanism release described by its RDP curve
/// alpha -> tau(alpha), optionally repeated `count` times (composition) and
/// optionally amplified by Poisson subsampling at rate q.
struct PrivacyEvent {
  std::string label;
  /// Base RDP curve at integer orders (must be defined for alpha >= 2).
  std::function<double(double)> rdp;
  /// Poisson sampling rate; 1.0 = no subsampling.
  double sampling_rate = 1.0;
  /// Number of sequential repetitions of this event.
  size_t count = 1;
};

/// Composes heterogeneous DP mechanisms under Rényi accounting — the
/// bookkeeping a deployment needs when SQM releases (PCA one-shot, LR
/// training loops, baselines) share one privacy budget.
///
/// Each tracked event contributes count * amplify(rdp, q)(alpha) at every
/// order alpha (Lemmas 10 and 11); TotalEpsilon converts the summed curve
/// to (epsilon, delta) via Lemma 9, optimizing over the integer alpha grid.
class PrivacyAccountant {
 public:
  PrivacyAccountant() = default;

  /// Tracks a Gaussian release with the given L2 sensitivity and noise std.
  void AddGaussian(const std::string& label, double l2_sensitivity,
                   double sigma, double sampling_rate = 1.0,
                   size_t count = 1);

  /// Tracks a Skellam release (Lemma 1) with L1/L2 sensitivities and noise
  /// parameter mu.
  void AddSkellam(const std::string& label, double l1_sensitivity,
                  double l2_sensitivity, double mu,
                  double sampling_rate = 1.0, size_t count = 1);

  /// Tracks a Skellam release whose configured Sk(mu) was degraded by
  /// `num_dropped` of `num_clients` contributors dropping out: the curve
  /// is charged at the realized Sk((n-d)/n * mu) — the honest accounting
  /// for a kDegrade run.
  void AddSkellamWithDropouts(const std::string& label,
                              double l1_sensitivity, double l2_sensitivity,
                              double mu, size_t num_clients,
                              size_t num_dropped, double sampling_rate = 1.0,
                              size_t count = 1);

  /// Tracks an arbitrary RDP curve.
  void AddEvent(PrivacyEvent event);

  size_t num_events() const { return events_.size(); }
  const std::vector<PrivacyEvent>& events() const { return events_; }

  /// Total RDP of everything tracked so far, at integer order alpha >= 2.
  double TotalRdp(size_t alpha) const;

  /// Total (epsilon, delta) guarantee; delta in (0, 1).
  Result<double> TotalEpsilon(double delta) const;

  /// Like TotalEpsilon, but also reports the minimizing Rényi order — the
  /// form SqmReport records for degraded runs.
  Result<PrivacyGuarantee> TotalGuarantee(double delta) const;

  /// Remaining repetitions of `event` that fit a target epsilon: the
  /// largest k such that the tracked events plus k copies of `event` stay
  /// within (target_epsilon, delta). Returns 0 when even the tracked
  /// events exceed the target. Useful for "how many more training rounds
  /// can I afford" queries.
  Result<size_t> RemainingRepetitions(const PrivacyEvent& event,
                                      double target_epsilon,
                                      double delta,
                                      size_t max_repetitions = 100000) const;

  /// Drops all tracked events.
  void Reset();

 private:
  std::vector<PrivacyEvent> events_;
};

}  // namespace sqm

#endif  // SQM_DP_ACCOUNTANT_H_
