#ifndef SQM_DP_ACCOUNTANT_H_
#define SQM_DP_ACCOUNTANT_H_

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "core/status.h"
#include "dp/rdp.h"
#include "obs/ledger.h"

namespace sqm {

/// A privacy event: one mechanism release described by its RDP curve
/// alpha -> tau(alpha), optionally repeated `count` times (composition) and
/// optionally amplified by Poisson subsampling at rate q.
struct PrivacyEvent {
  std::string label;
  /// Base RDP curve at integer orders (must be defined for alpha >= 2).
  std::function<double(double)> rdp;
  /// Poisson sampling rate; 1.0 = no subsampling.
  double sampling_rate = 1.0;
  /// Number of sequential repetitions of this event.
  size_t count = 1;
};

/// Composes heterogeneous DP mechanisms under Rényi accounting — the
/// bookkeeping a deployment needs when SQM releases (PCA one-shot, LR
/// training loops, baselines) share one privacy budget.
///
/// Each tracked event contributes count * amplify(rdp, q)(alpha) at every
/// order alpha (Lemmas 10 and 11); TotalEpsilon converts the summed curve
/// to (epsilon, delta) via Lemma 9, optimizing over the integer alpha grid.
class PrivacyAccountant {
 public:
  PrivacyAccountant() = default;

  /// Tracks a Gaussian release with the given L2 sensitivity and noise std.
  void AddGaussian(const std::string& label, double l2_sensitivity,
                   double sigma, double sampling_rate = 1.0,
                   size_t count = 1);

  /// Tracks a Skellam release (Lemma 1) with L1/L2 sensitivities and noise
  /// parameter mu.
  void AddSkellam(const std::string& label, double l1_sensitivity,
                  double l2_sensitivity, double mu,
                  double sampling_rate = 1.0, size_t count = 1);

  /// Tracks a Skellam release whose configured Sk(mu) was degraded by
  /// `num_dropped` of `num_clients` contributors dropping out: the curve
  /// is charged at the realized Sk((n-d)/n * mu) — the honest accounting
  /// for a kDegrade run.
  void AddSkellamWithDropouts(const std::string& label,
                              double l1_sensitivity, double l2_sensitivity,
                              double mu, size_t num_clients,
                              size_t num_dropped, double sampling_rate = 1.0,
                              size_t count = 1);

  /// Tracks an arbitrary RDP curve.
  void AddEvent(PrivacyEvent event);

  /// Context stamped onto subsequent ledger entries: the delta at which
  /// each spend's standalone and cumulative epsilon are computed (0 leaves
  /// them unevaluated), plus the quantization scale and release dimension
  /// of the surrounding run. The SQM driver sets this before charging.
  void SetLedgerContext(double delta, double gamma = 0.0,
                        size_t dimension = 0);

  /// Spend timeline mirroring events(): one obs::LedgerEntry per Add*
  /// call, with mechanism parameters, dropout-deficit context and (when a
  /// ledger delta is set) the standalone and cumulative epsilon at that
  /// point. Always recorded locally; also forwarded to
  /// obs::PrivacyLedger::Global() while the observability switch is on.
  const std::vector<obs::LedgerEntry>& ledger() const { return ledger_; }

  size_t num_events() const { return events_.size(); }
  const std::vector<PrivacyEvent>& events() const { return events_; }

  /// Total RDP of everything tracked so far, at integer order alpha >= 2.
  double TotalRdp(size_t alpha) const;

  /// Total (epsilon, delta) guarantee; delta in (0, 1).
  Result<double> TotalEpsilon(double delta) const;

  /// Like TotalEpsilon, but also reports the minimizing Rényi order — the
  /// form SqmReport records for degraded runs.
  Result<PrivacyGuarantee> TotalGuarantee(double delta) const;

  /// Remaining repetitions of `event` that fit a target epsilon: the
  /// largest k such that the tracked events plus k copies of `event` stay
  /// within (target_epsilon, delta). Returns 0 when even the tracked
  /// events exceed the target. Useful for "how many more training rounds
  /// can I afford" queries.
  Result<size_t> RemainingRepetitions(const PrivacyEvent& event,
                                      double target_epsilon,
                                      double delta,
                                      size_t max_repetitions = 100000) const;

  /// Drops all tracked events (and the local ledger mirror).
  void Reset();

 private:
  /// Completes a ledger entry for the event just pushed onto events_:
  /// stamps context, computes the standalone and cumulative epsilon when a
  /// ledger delta is configured, and forwards to the global ledger when
  /// observability is enabled.
  void RecordLedgerEntry(obs::LedgerEntry entry);

  std::vector<PrivacyEvent> events_;
  std::vector<obs::LedgerEntry> ledger_;
  double ledger_delta_ = 0.0;
  double ledger_gamma_ = 0.0;
  size_t ledger_dimension_ = 0;
};

}  // namespace sqm

#endif  // SQM_DP_ACCOUNTANT_H_
