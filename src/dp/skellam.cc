#include "dp/skellam.h"

#include <algorithm>
#include <cmath>

#include "core/logging.h"
#include "dp/rdp.h"

namespace sqm {

double SkellamRdp(double alpha, double l1_sensitivity, double l2_sensitivity,
                  double mu) {
  SQM_CHECK(mu > 0.0);
  SQM_CHECK(alpha > 1.0);
  const double d1 = l1_sensitivity;
  const double d2sq = l2_sensitivity * l2_sensitivity;
  const double main_term = alpha * d2sq / (4.0 * mu);
  const double corr_a = ((2.0 * alpha - 1.0) * d2sq + 6.0 * d1) /
                        (16.0 * mu * mu);
  const double corr_b = 3.0 * d1 / (4.0 * mu);
  return main_term + std::min(corr_a, corr_b);
}

double SkellamRdpServer(double alpha, double l1_sensitivity,
                        double l2_sensitivity, double mu) {
  return SkellamRdp(alpha, l1_sensitivity, l2_sensitivity, mu);
}

double SkellamRdpClient(double alpha, double l1_sensitivity,
                        double l2_sensitivity, double mu, size_t num_clients) {
  SQM_CHECK(num_clients >= 2);
  const double n = static_cast<double>(num_clients);
  const double d2sq = l2_sensitivity * l2_sensitivity;
  // Lemma 4's closed form: doubled sensitivity (replace-one neighboring)
  // and noise reduced to (n-1)/n * mu because the client knows its share.
  return alpha * n * d2sq / ((n - 1.0) * mu) +
         3.0 * n * l1_sensitivity / (2.0 * (n - 1.0) * mu);
}

double SkellamEpsilonSingleRelease(double mu, double l1_sensitivity,
                                   double l2_sensitivity, double delta) {
  const auto tau_of_alpha = [&](double alpha) {
    return SkellamRdpServer(alpha, l1_sensitivity, l2_sensitivity, mu);
  };
  return BestEpsilonFromCurve(tau_of_alpha, DefaultAlphaGrid(), delta);
}

double SkellamMuWithDropouts(double mu, size_t num_clients,
                             size_t num_dropped) {
  SQM_CHECK(num_clients >= 1);
  SQM_CHECK(num_dropped <= num_clients);
  const double n = static_cast<double>(num_clients);
  const double d = static_cast<double>(num_dropped);
  return (n - d) / n * mu;
}

double SkellamEpsilonWithDropouts(double mu, size_t num_clients,
                                  size_t num_dropped, double l1_sensitivity,
                                  double l2_sensitivity, double delta) {
  const double realized_mu =
      SkellamMuWithDropouts(mu, num_clients, num_dropped);
  SQM_CHECK(realized_mu > 0.0);
  return SkellamEpsilonSingleRelease(realized_mu, l1_sensitivity,
                                     l2_sensitivity, delta);
}

double SkellamSubsampledEpsilon(double mu, double l1_sensitivity,
                                double l2_sensitivity, double q, size_t rounds,
                                double delta) {
  const auto tau_of_alpha = [&](double alpha) {
    const auto base = [&](size_t l) {
      // Lemma 7's tau_l = l*delta2^2/(4mu) + 3*delta1/(4mu): the Skellam
      // bound at order l with the simple min-branch.
      return SkellamRdp(static_cast<double>(l), l1_sensitivity,
                        l2_sensitivity, mu);
    };
    const double per_round =
        SubsampledRdp(static_cast<size_t>(alpha), q, base);
    return static_cast<double>(rounds) * per_round;
  };
  return BestEpsilonFromCurve(tau_of_alpha, DefaultAlphaGrid(), delta);
}

namespace {

/// Shared bisection driver: epsilon(mu) must be decreasing in mu.
template <typename EpsilonFn>
Result<double> CalibrateMu(double epsilon, double delta,
                           const EpsilonFn& eps_of_mu) {
  if (epsilon <= 0.0 || delta <= 0.0 || delta >= 1.0) {
    return Status::InvalidArgument(
        "Skellam calibration: need epsilon > 0 and delta in (0, 1)");
  }
  double lo = 1e-6;
  double hi = 1.0;
  size_t guard = 0;
  while (eps_of_mu(hi) > epsilon) {
    hi *= 4.0;
    if (++guard > 400) {
      return Status::Internal("mu bracket expansion failed");
    }
  }
  for (size_t iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (eps_of_mu(mid) > epsilon) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return hi;
}

}  // namespace

Result<double> CalibrateSkellamMuSingleRelease(double epsilon, double delta,
                                               double l1_sensitivity,
                                               double l2_sensitivity) {
  return CalibrateMu(epsilon, delta, [&](double mu) {
    return SkellamEpsilonSingleRelease(mu, l1_sensitivity, l2_sensitivity,
                                       delta);
  });
}

Result<double> CalibrateSkellamMuSubsampled(double epsilon, double delta,
                                            double l1_sensitivity,
                                            double l2_sensitivity, double q,
                                            size_t rounds) {
  if (rounds == 0) {
    return Status::InvalidArgument("rounds must be > 0");
  }
  return CalibrateMu(epsilon, delta, [&](double mu) {
    return SkellamSubsampledEpsilon(mu, l1_sensitivity, l2_sensitivity, q,
                                    rounds, delta);
  });
}

}  // namespace sqm
