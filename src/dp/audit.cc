#include "dp/audit.h"

#include <algorithm>
#include <cmath>

namespace sqm {
namespace {

/// Pr[sample > threshold] with add-one smoothing so ratios stay finite.
double TailProbability(const std::vector<double>& sorted, double threshold,
                       size_t* count_out) {
  const auto it =
      std::upper_bound(sorted.begin(), sorted.end(), threshold);
  const size_t count = static_cast<size_t>(sorted.end() - it);
  *count_out = count;
  return (static_cast<double>(count) + 1.0) /
         (static_cast<double>(sorted.size()) + 2.0);
}

}  // namespace

Result<AuditResult> AuditEpsilonLowerBound(
    const std::function<double(uint64_t)>& mechanism_x,
    const std::function<double(uint64_t)>& mechanism_xp,
    const AuditOptions& options) {
  if (mechanism_x == nullptr || mechanism_xp == nullptr) {
    return Status::InvalidArgument("audit: mechanisms must be callable");
  }
  if (options.trials < 100) {
    return Status::InvalidArgument("audit: need at least 100 trials");
  }
  if (options.delta < 0.0 || options.delta >= 1.0) {
    return Status::InvalidArgument("audit: delta must be in [0, 1)");
  }

  std::vector<double> samples_x(options.trials);
  std::vector<double> samples_xp(options.trials);
  for (size_t t = 0; t < options.trials; ++t) {
    samples_x[t] = mechanism_x(t);
    samples_xp[t] = mechanism_xp(t + options.trials);
  }
  std::sort(samples_x.begin(), samples_x.end());
  std::sort(samples_xp.begin(), samples_xp.end());

  // Probe thresholds at pooled quantiles.
  std::vector<double> pooled = samples_x;
  pooled.insert(pooled.end(), samples_xp.begin(), samples_xp.end());
  std::sort(pooled.begin(), pooled.end());

  AuditResult result;
  for (size_t k = 1; k < options.thresholds; ++k) {
    const size_t index =
        k * (pooled.size() - 1) / options.thresholds;
    const double threshold = pooled[index];
    size_t count_x = 0;
    size_t count_xp = 0;
    const double p = TailProbability(samples_x, threshold, &count_x);
    const double q = TailProbability(samples_xp, threshold, &count_xp);
    // Evaluate both the event {out > c} and its complement, in both
    // directions (the DP inequality must hold for every event).
    const double events[4] = {
        std::log(std::max(p - options.delta, 1e-300) / q),
        std::log(std::max(q - options.delta, 1e-300) / p),
        std::log(std::max((1.0 - p) - options.delta, 1e-300) / (1.0 - q)),
        std::log(std::max((1.0 - q) - options.delta, 1e-300) / (1.0 - p)),
    };
    const size_t support = std::min(count_x, count_xp);
    const size_t complement_support =
        options.trials - std::max(count_x, count_xp);
    if (support >= options.min_count ||
        complement_support >= options.min_count) {
      ++result.events_evaluated;
      for (double e : events) {
        result.epsilon_lower_bound =
            std::max(result.epsilon_lower_bound, e);
      }
    }
  }
  if (result.events_evaluated == 0) {
    return Status::FailedPrecondition(
        "audit: no threshold event had enough mass; increase trials");
  }
  return result;
}

}  // namespace sqm
