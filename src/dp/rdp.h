#ifndef SQM_DP_RDP_H_
#define SQM_DP_RDP_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "core/status.h"

namespace sqm {

/// Rényi-DP accounting toolkit (Appendix A of the paper).
///
/// All guarantees in the library are derived as RDP curves
/// alpha -> tau(alpha) and converted to classical (epsilon, delta)-DP at
/// reporting time, exactly as the paper does.

/// Converts an (alpha, tau)-RDP guarantee to epsilon at the given delta
/// (Lemma 9, Canonne-Kamath-Steinke conversion). Requires alpha > 1.
double RdpToEpsilon(double alpha, double tau, double delta);

/// Minimizes RdpToEpsilon over a curve tau(alpha) evaluated at `alphas`.
/// Returns the best epsilon; if `best_alpha` is non-null, stores the
/// minimizing order.
double BestEpsilonFromCurve(const std::function<double(double)>& tau_of_alpha,
                            const std::vector<double>& alphas, double delta,
                            double* best_alpha = nullptr);

/// A fully resolved classical guarantee, with the Rényi order that
/// produced it — what a report or a degraded-mode recomputation records.
struct PrivacyGuarantee {
  double epsilon = 0.0;
  double delta = 0.0;
  double best_alpha = 0.0;
};

/// BestEpsilonFromCurve packaged as a PrivacyGuarantee.
PrivacyGuarantee GuaranteeFromCurve(
    const std::function<double(double)>& tau_of_alpha,
    const std::vector<double>& alphas, double delta);

/// Default integer grid of Rényi orders 2..128 used by the calibrators.
std::vector<double> DefaultAlphaGrid();

/// Composition (Lemma 10): tau values at a common alpha add up.
double ComposeRdp(const std::vector<double>& taus);

/// Privacy amplification by Poisson subsampling (Lemma 11, Mironov et al.).
///
/// `alpha` must be an integer >= 2. `tau_at_order(l)` must return the
/// un-amplified RDP bound of the base mechanism at integer order l, for
/// l = 2..alpha. `q` is the per-record sampling probability. Computed in
/// log-space so it stays finite even when the inner taus are large.
double SubsampledRdp(size_t alpha, double q,
                     const std::function<double(size_t)>& tau_at_order);

/// log(n choose k) via lgamma.
double LogBinomial(size_t n, size_t k);

/// Numerically stable log(sum(exp(x_i))).
double LogSumExp(const std::vector<double>& xs);

}  // namespace sqm

#endif  // SQM_DP_RDP_H_
