#include "dp/gaussian.h"

#include <cmath>

#include "core/logging.h"
#include "dp/rdp.h"

namespace sqm {

double GaussianRdp(double alpha, double l2_sensitivity, double sigma) {
  SQM_CHECK(sigma > 0.0);
  return alpha * l2_sensitivity * l2_sensitivity / (2.0 * sigma * sigma);
}

double StdNormalCdf(double x) {
  return 0.5 * std::erfc(-x / std::sqrt(2.0));
}

double GaussianDelta(double epsilon, double l2_sensitivity, double sigma) {
  SQM_CHECK(sigma > 0.0 && l2_sensitivity > 0.0);
  const double r = l2_sensitivity / sigma;
  return StdNormalCdf(r / 2.0 - epsilon / r) -
         std::exp(epsilon) * StdNormalCdf(-r / 2.0 - epsilon / r);
}

Result<double> CalibrateGaussianSigma(double epsilon, double delta,
                                      double l2_sensitivity) {
  if (epsilon <= 0.0 || delta <= 0.0 || delta >= 1.0) {
    return Status::InvalidArgument(
        "CalibrateGaussianSigma: need epsilon > 0 and delta in (0, 1)");
  }
  if (l2_sensitivity <= 0.0) {
    return Status::InvalidArgument(
        "CalibrateGaussianSigma: sensitivity must be positive");
  }
  // GaussianDelta is decreasing in sigma; bracket then bisect.
  double lo = 1e-12 * l2_sensitivity;
  double hi = l2_sensitivity;  // Grow until delta(hi) <= target.
  size_t guard = 0;
  while (GaussianDelta(epsilon, l2_sensitivity, hi) > delta) {
    hi *= 2.0;
    if (++guard > 200) {
      return Status::Internal("sigma bracket expansion failed");
    }
  }
  for (size_t iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (GaussianDelta(epsilon, l2_sensitivity, mid) > delta) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return hi;
}

double DpSgdEpsilon(double noise_multiplier, double q, size_t rounds,
                    double delta) {
  SQM_CHECK(noise_multiplier > 0.0);
  SQM_CHECK(q > 0.0 && q <= 1.0);
  const auto tau_of_alpha = [&](double alpha) {
    const auto base = [&](size_t l) {
      return GaussianRdp(static_cast<double>(l), 1.0, noise_multiplier);
    };
    const double per_round =
        SubsampledRdp(static_cast<size_t>(alpha), q, base);
    return static_cast<double>(rounds) * per_round;
  };
  return BestEpsilonFromCurve(tau_of_alpha, DefaultAlphaGrid(), delta);
}

Result<double> CalibrateDpSgdNoise(double epsilon, double delta, double q,
                                   size_t rounds) {
  if (epsilon <= 0.0 || delta <= 0.0 || delta >= 1.0) {
    return Status::InvalidArgument(
        "CalibrateDpSgdNoise: need epsilon > 0 and delta in (0, 1)");
  }
  if (rounds == 0) {
    return Status::InvalidArgument("CalibrateDpSgdNoise: rounds must be > 0");
  }
  // Epsilon is decreasing in the noise multiplier; bracket then bisect.
  double lo = 1e-3;
  double hi = 1.0;
  size_t guard = 0;
  while (DpSgdEpsilon(hi, q, rounds, delta) > epsilon) {
    hi *= 2.0;
    if (++guard > 100) {
      return Status::Internal("noise multiplier bracket expansion failed");
    }
  }
  guard = 0;
  while (DpSgdEpsilon(lo, q, rounds, delta) < epsilon && lo > 1e-9) {
    lo *= 0.5;
    if (++guard > 100) break;
  }
  for (size_t iter = 0; iter < 100; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (DpSgdEpsilon(mid, q, rounds, delta) > epsilon) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return hi;
}

}  // namespace sqm
