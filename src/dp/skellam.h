#ifndef SQM_DP_SKELLAM_H_
#define SQM_DP_SKELLAM_H_

#include <cstddef>

#include "core/status.h"

namespace sqm {

/// RDP accounting for the Skellam mechanism (Lemma 1 of the paper,
/// following Agarwal et al. and Bao et al.'s Skellam mixture mechanism).

/// Lemma 1: RDP bound at integer order `alpha` for injecting Sk(mu) into an
/// integer-valued function with L1/L2 sensitivities delta1/delta2:
///   tau <= alpha*delta2^2/(4 mu)
///          + min(((2 alpha - 1) delta2^2 + 6 delta1) / (16 mu^2),
///                3 delta1 / (4 mu)).
double SkellamRdp(double alpha, double l1_sensitivity, double l2_sensitivity,
                  double mu);

/// Server-observed RDP of a single SQM release (Lemmas 3/4/5): the server
/// sees noise Sk(mu).
double SkellamRdpServer(double alpha, double l1_sensitivity,
                        double l2_sensitivity, double mu);

/// Client-observed RDP (Lemmas 3/4/5): a client knows its own noise share,
/// so the effective noise is Sk((n-1)/n * mu), and the sensitivity doubles
/// (replace-one neighboring under a known record count). The lemma states
///   tau_client = alpha n delta2^2 / ((n-1) mu) + 3 n delta1 / (2 (n-1) mu).
double SkellamRdpClient(double alpha, double l1_sensitivity,
                        double l2_sensitivity, double mu, size_t num_clients);

/// Epsilon of a single SQM release at the given delta (best alpha over the
/// default grid).
double SkellamEpsilonSingleRelease(double mu, double l1_sensitivity,
                                   double l2_sensitivity, double delta);

/// Effective aggregate noise parameter when `num_dropped` of `num_clients`
/// Sk(mu/n) contributors are lost: the release carries Sk((n-d)/n * mu)
/// instead of Sk(mu) (Skellam additivity; Agarwal et al.).
double SkellamMuWithDropouts(double mu, size_t num_clients,
                             size_t num_dropped);

/// Realized epsilon of a single release whose noise suffered the dropout
/// deficit above — the honest number a kDegrade run must report.
double SkellamEpsilonWithDropouts(double mu, size_t num_clients,
                                  size_t num_dropped, double l1_sensitivity,
                                  double l2_sensitivity, double delta);

/// Epsilon of R composed Poisson-subsampled SQM releases (the LR training
/// loop of Lemma 7), server-observed.
double SkellamSubsampledEpsilon(double mu, double l1_sensitivity,
                                double l2_sensitivity, double q, size_t rounds,
                                double delta);

/// Smallest mu achieving (epsilon, delta) server-observed DP for a single
/// release. Bisection; epsilon is decreasing in mu.
Result<double> CalibrateSkellamMuSingleRelease(double epsilon, double delta,
                                               double l1_sensitivity,
                                               double l2_sensitivity);

/// Smallest mu achieving (epsilon, delta) server-observed DP for R
/// subsampled releases (Lemma 7 accounting).
Result<double> CalibrateSkellamMuSubsampled(double epsilon, double delta,
                                            double l1_sensitivity,
                                            double l2_sensitivity, double q,
                                            size_t rounds);

}  // namespace sqm

#endif  // SQM_DP_SKELLAM_H_
