#ifndef SQM_DP_AUDIT_H_
#define SQM_DP_AUDIT_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "core/status.h"

namespace sqm {

/// Empirical differential-privacy audit: estimates a *lower bound* on the
/// epsilon of a scalar mechanism by running it many times on a pair of
/// neighboring databases and comparing output probabilities over threshold
/// events.
///
/// This is the black-box counterpart of the paper's analytical guarantees:
/// if the implementation matched its proof, the audited epsilon-hat must
/// not exceed the calibrated epsilon (up to sampling error). The test
/// suite runs it against SQM releases on neighboring databases — the kind
/// of end-to-end check that catches the floating-point/rounding privacy
/// bugs the paper's Section I warns about (sensitivity underestimation,
/// non-private noise sampling).
struct AuditOptions {
  /// Runs of the mechanism per database.
  size_t trials = 20000;
  /// The delta of the (epsilon, delta) guarantee being audited.
  double delta = 1e-5;
  /// Number of threshold events probed (spread over the pooled output
  /// quantiles).
  size_t thresholds = 64;
  /// Events with fewer than this many hits on either side are skipped —
  /// their probability estimates are too noisy to trust.
  size_t min_count = 50;
};

struct AuditResult {
  /// Largest log-likelihood ratio observed over all probed events, after
  /// subtracting delta — a statistical lower bound on the true epsilon.
  double epsilon_lower_bound = 0.0;
  /// Number of threshold events that had enough mass to evaluate.
  size_t events_evaluated = 0;
};

/// `mechanism_x` / `mechanism_xp` run the mechanism on the two neighboring
/// databases; each call must use fresh randomness derived from `seed`.
Result<AuditResult> AuditEpsilonLowerBound(
    const std::function<double(uint64_t seed)>& mechanism_x,
    const std::function<double(uint64_t seed)>& mechanism_xp,
    const AuditOptions& options = {});

}  // namespace sqm

#endif  // SQM_DP_AUDIT_H_
