#ifndef SQM_NET_LIVENESS_H_
#define SQM_NET_LIVENESS_H_

#include <cstddef>
#include <vector>

#include "core/status.h"
#include "core/sync.h"

namespace sqm {

/// Failure-detector verdict for one party.
///
/// State machine (per party, monotone towards kDead):
///   kAlive --(timeout failures >= suspect_after)--> kSuspected
///   kSuspected --(timeout failures >= dead_after)--> kDead
///   kSuspected --(successful receive)--> kAlive
///   any --(kUnavailable receive, i.e. the transport knows the peer
///          crashed)--> kDead
/// kDead is absorbing for the protocol layers: a party declared dead never
/// rejoins a round on its own (its sends are stale and its shares must not
/// be mixed back into a quorum). The single sanctioned exception is the
/// recovery layer's Revive(): after a supervised restart the party proved
/// itself alive at a resume barrier, every level it was dead for is redone,
/// so no stale share of its can reach a quorum.
enum class PartyLiveness { kAlive, kSuspected, kDead };

const char* PartyLivenessToString(PartyLiveness state);

/// Thresholds converting per-receive failures into liveness verdicts.
struct LivenessOptions {
  /// Consecutive timed-out receives before a party becomes kSuspected.
  size_t suspect_after = 1;
  /// Consecutive timed-out receives before a suspected party is declared
  /// kDead. kUnavailable (the transport's "peer crashed" verdict) kills
  /// immediately regardless of this budget.
  size_t dead_after = 2;
};

/// Shared failure detector for one protocol run.
///
/// Protocol layers (BgwProtocol, BgwEngine, the SQM pipeline) feed every
/// receive outcome into one tracker, so a party declared dead during the
/// input phase is skipped — no further timeout windows burned on it — in
/// every later multiplication and opening round. Thread-safe: per-party
/// threads of a ThreadedTransport run may record outcomes concurrently.
class LivenessTracker {
 public:
  explicit LivenessTracker(size_t num_parties,
                           LivenessOptions options = LivenessOptions{});

  size_t num_parties() const { return num_parties_; }
  const LivenessOptions& options() const { return options_; }

  PartyLiveness state(size_t party) const;
  bool IsDead(size_t party) const;

  /// Records a failed receive whose *sender* was `party`. kUnavailable
  /// means the transport positively knows the peer crashed: immediate
  /// death. Any other code (kDeadlineExceeded in practice) counts against
  /// the consecutive-failure budget.
  void RecordFailure(size_t party, StatusCode code);

  /// Records a successful receive from `party`: clears its suspicion
  /// counter and restores kSuspected back to kAlive. A dead party stays
  /// dead.
  void RecordSuccess(size_t party);

  /// Administrative kill (e.g. a quorum decision taken elsewhere).
  void MarkDead(size_t party);

  /// Administrative resurrection: returns `party` to kAlive with a clean
  /// failure counter — even from kDead. ONLY the recovery layer may call
  /// this, and only after the party answered a resume barrier under a new
  /// incarnation (the failed level is then redone by everyone, so none of
  /// the revived party's pre-crash shares can be recombined).
  void Revive(size_t party);

  /// Indices of all non-dead parties, ascending. Suspected parties count
  /// as survivors: they may still deliver, and quorum math should not give
  /// up on them until they are positively dead.
  std::vector<size_t> Survivors() const;

  /// Indices of all dead parties, ascending.
  std::vector<size_t> Dead() const;

  size_t num_alive() const;
  size_t num_dead() const;

  /// Forgets everything (all parties alive). For reusing a tracker across
  /// independent runs, not for resurrecting parties within one.
  void Reset();

 private:
  struct State {
    PartyLiveness liveness = PartyLiveness::kAlive;
    size_t consecutive_failures = 0;
  };

  LivenessOptions options_;
  const size_t num_parties_;
  mutable Mutex mu_;
  std::vector<State> states_ SQM_GUARDED_BY(mu_);
};

}  // namespace sqm

#endif  // SQM_NET_LIVENESS_H_
