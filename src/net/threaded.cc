#include "net/threaded.h"

#include <algorithm>
#include <thread>

#include "core/logging.h"
#include "obs/trace.h"

namespace sqm {

namespace {

std::chrono::steady_clock::duration ToDuration(double seconds) {
  return std::chrono::duration_cast<std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(seconds));
}

/// Fault-injection instant on the party track, with channel context.
void TraceFault(const char* name, size_t from, size_t to) {
  if (!sqm::obs::Enabled()) return;
  obs::TraceEvent event;
  event.name = name;
  event.category = "net";
  event.AddArg("from", static_cast<int64_t>(from));
  event.AddArg("to", static_cast<int64_t>(to));
  obs::Tracer::Global().Instant(event);
}

}  // namespace

ThreadedTransport::ThreadedTransport(size_t num_parties,
                                     ThreadedTransportOptions options)
    : Transport(num_parties, options.per_round_latency_seconds,
                options.element_wire_bytes),
      options_(options),
      faults_(num_parties, options.faults),
      mailboxes_(num_parties * num_parties) {
  SQM_CHECK(options_.mailbox_capacity >= 1);
  SQM_CHECK(options_.receive_timeout_seconds > 0.0);
  SQM_CHECK(options_.retry_backoff_seconds >= 0.0);
  for (auto& box : mailboxes_) box = std::make_unique<Mailbox>();
}

ThreadedTransport::~ThreadedTransport() = default;

void ThreadedTransport::Send(size_t from, size_t to, Payload payload) {
  CheckParty(from, to);
  Mailbox& box = mailbox(from, to);

  if (from == to) {
    // A party's messages to itself live in its own memory: no faults, no
    // accounting, but still through the mailbox so driver- and per-party
    // mode behave identically.
    MutexLock lock(box.mu);
    while (box.queue.size() >= options_.mailbox_capacity) {
      box.space.Wait(box.mu);
    }
    box.queue.push_back(
        Entry{std::move(payload), std::chrono::steady_clock::now()});
    box.ready.NotifyOne();
    return;
  }

  if (faults_.HasCrashed(from, completed_rounds())) {
    // The sender is dead: the message vanishes and can never be
    // retransmitted.
    RecordCrashLoss();
    TraceFault("net.fault.crash_loss", from, to);
    return;
  }

  obs::Span span("net.send", "net");
  span.AddArg("from", static_cast<int64_t>(from));
  span.AddArg("to", static_cast<int64_t>(to));
  // The interceptor (adversarial harness) rewrites the wire before fault
  // injection: a tampered payload can still be dropped or delayed, and a
  // replayed copy draws its own independent fault fate.
  for (Payload& delivered : InterceptSend(from, to, std::move(payload))) {
    DeliverFaulted(from, to, std::move(delivered));
  }
}

void ThreadedTransport::DeliverFaulted(size_t from, size_t to,
                                       Payload payload) {
  Mailbox& box = mailbox(from, to);
  const FaultInjector::SendFate fate = faults_.OnSend(from, to);
  RecordSend(from, to, payload.size());

  if (fate.drop) {
    RecordDrop();
    TraceFault("net.fault.drop", from, to);
    MutexLock lock(box.mu);
    box.retransmit.push_back(std::move(payload));
    return;
  }

  Entry entry{std::move(payload), std::chrono::steady_clock::now()};
  if (fate.delay_seconds > 0.0) {
    entry.deliver_at += ToDuration(fate.delay_seconds);
    RecordDelay();
    TraceFault("net.fault.delay", from, to);
  }

  MutexLock lock(box.mu);
  while (box.queue.size() >= options_.mailbox_capacity) {
    box.space.Wait(box.mu);
  }
  if (fate.reorder && !box.queue.empty()) {
    box.queue.push_front(std::move(entry));
    RecordReorder();
    TraceFault("net.fault.reorder", from, to);
  } else {
    box.queue.push_back(std::move(entry));
  }
  box.ready.NotifyOne();
}

Result<Transport::Payload> ThreadedTransport::Receive(size_t from,
                                                      size_t to) {
  CheckParty(from, to);
  Mailbox& box = mailbox(from, to);
  double backoff = options_.retry_backoff_seconds;

  // Spans the whole receive including blocking waits, timeouts and retry
  // backoff — the "where does party j sit idle" signal in the trace.
  obs::Span span("net.recv.wait", "net");
  span.AddArg("from", static_cast<int64_t>(from));
  span.AddArg("to", static_cast<int64_t>(to));

  for (size_t attempt = 0;; ++attempt) {
    const auto deadline = std::chrono::steady_clock::now() +
                          ToDuration(options_.receive_timeout_seconds);
    ReleasableMutexLock lock(box.mu);
    while (true) {
      const auto now = std::chrono::steady_clock::now();
      // Deliver the oldest ready entry; delayed entries behind it do not
      // block delivery (the link reorders around in-flight packets).
      auto ready = std::find_if(
          box.queue.begin(), box.queue.end(),
          [&](const Entry& entry) { return entry.deliver_at <= now; });
      if (ready != box.queue.end()) {
        Payload payload = std::move(ready->payload);
        box.queue.erase(ready);
        box.space.NotifyOne();
        return payload;
      }
      if (!box.queue.empty()) {
        // Messages are in flight (fault-injected delay): a timeout would
        // lie, so wait for the earliest scheduled delivery instead.
        auto earliest = box.queue.front().deliver_at;
        for (const Entry& entry : box.queue) {
          earliest = std::min(earliest, entry.deliver_at);
        }
        box.ready.WaitUntil(box.mu, earliest);
        continue;
      }
      if (now >= deadline) break;
      box.ready.WaitUntil(box.mu, deadline);
    }

    // Timed out with an empty channel.
    RecordTimeout();
    TraceFault("net.recv.timeout", from, to);
    const bool sender_crashed = faults_.HasCrashed(from, completed_rounds());
    if (attempt >= options_.max_retries) {
      if (sender_crashed) {
        return Status::Unavailable(
            "party " + std::to_string(from) + " crashed; receive " +
            std::to_string(from) + " -> " + std::to_string(to) +
            " cannot complete");
      }
      return Status::DeadlineExceeded(
          "receive timed out on channel " + std::to_string(from) + " -> " +
          std::to_string(to) + " after " + std::to_string(attempt) +
          " retries");
    }
    if (!sender_crashed && !box.retransmit.empty()) {
      // Request retransmission of a dropped message: redelivered after the
      // backoff and charged as fresh traffic, like any resent packet.
      Payload payload = std::move(box.retransmit.front());
      box.retransmit.pop_front();
      lock.Release();
      RecordRetry();
      TraceFault("net.recv.retry", from, to);
      RecordSend(from, to, payload.size());
      if (backoff > 0.0) std::this_thread::sleep_for(ToDuration(backoff));
      return payload;
    }
    lock.Release();
    if (backoff > 0.0) std::this_thread::sleep_for(ToDuration(backoff));
    backoff *= 2.0;
  }
}

bool ThreadedTransport::HasPending(size_t from, size_t to) const {
  CheckParty(from, to);
  const Mailbox& box = mailbox(from, to);
  MutexLock lock(box.mu);
  const auto now = std::chrono::steady_clock::now();
  return std::any_of(
      box.queue.begin(), box.queue.end(),
      [&](const Entry& entry) { return entry.deliver_at <= now; });
}

void ThreadedTransport::EndRound() {
  completed_rounds_.fetch_add(1, std::memory_order_acq_rel);
  Transport::EndRound();
}

void ThreadedTransport::ArriveRound(size_t party) {
  SQM_CHECK(party < num_parties());
  ReleasableMutexLock lock(round_mu_);
  const uint64_t generation = generation_;
  if (++arrived_ == num_parties()) {
    arrived_ = 0;
    ++generation_;
    completed_rounds_.fetch_add(1, std::memory_order_acq_rel);
    Transport::EndRound();
    lock.Release();
    round_cv_.NotifyAll();
    return;
  }
  while (generation_ == generation) {
    round_cv_.Wait(round_mu_);
  }
}

// Acquiring a vector of mutexes in a loop is beyond the static analysis
// (see the escape-hatch note in core/thread_annotations.h); the fixed
// acquisition order argument below is the manual proof.
size_t ThreadedTransport::Reset() SQM_NO_THREAD_SAFETY_ANALYSIS {
  // Atomic reset: hold every mailbox lock while draining and zeroing the
  // counters, so a concurrent sender can neither land a message in an
  // already-drained box nor be charged against pre-reset accounting. Only
  // Reset ever takes more than one mailbox lock, and it does so in a fixed
  // (channel-index) order, so this cannot deadlock against Send/Receive.
  for (auto& box : mailboxes_) {
    box->mu.Lock();
  }
  size_t dropped = 0;
  std::vector<ResetDrop> per_channel;
  for (size_t index = 0; index < mailboxes_.size(); ++index) {
    auto& box = mailboxes_[index];
    // Dropped count = undelivered queue entries + parked retransmissions,
    // matching LockstepTransport's "every undelivered message" convention.
    const size_t in_box = box->queue.size() + box->retransmit.size();
    dropped += in_box;
    if (in_box > 0) {
      per_channel.push_back(ResetDrop{index / num_parties(),
                                      index % num_parties(), in_box});
    }
    box->queue.clear();
    box->retransmit.clear();
  }
  {
    MutexLock lock(round_mu_);
    arrived_ = 0;
  }
  completed_rounds_.store(0, std::memory_order_release);
  ResetAccounting();
  for (auto& box : mailboxes_) {
    box->mu.Unlock();
    box->space.NotifyAll();
  }
  WarnDroppedOnReset("ThreadedTransport", dropped, per_channel);
  return dropped;
}

}  // namespace sqm
