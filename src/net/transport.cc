#include "net/transport.h"

#include "core/logging.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace sqm {

Transport::Transport(size_t num_parties, double per_round_latency_seconds,
                     size_t element_wire_bytes)
    : num_parties_(num_parties),
      per_round_latency_(per_round_latency_seconds),
      element_wire_bytes_(element_wire_bytes),
      start_(std::chrono::steady_clock::now()),
      channels_(num_parties * num_parties) {
  SQM_CHECK(num_parties >= 1);
  SQM_CHECK(per_round_latency_seconds >= 0.0);
  SQM_CHECK(element_wire_bytes >= 1);
  for (size_t from = 0; from < num_parties_; ++from) {
    for (size_t to = 0; to < num_parties_; ++to) {
      channels_[ChannelIndex(from, to)].from = from;
      channels_[ChannelIndex(from, to)].to = to;
    }
  }
  phases_.push_back(PhaseStats{"", NetworkStats{}});
}

Transport::~Transport() = default;

void Transport::CheckParty(size_t from, size_t to) const {
  SQM_CHECK(from < num_parties_ && to < num_parties_);
}

void Transport::EndRound() { RecordRound(); }

double Transport::SimulatedSeconds() const {
  MutexLock lock(mu_);
  return static_cast<double>(totals_.rounds) * per_round_latency_;
}

NetworkStats Transport::stats() const {
  MutexLock lock(mu_);
  return totals_;
}

TransportStats Transport::Snapshot() const {
  MutexLock lock(mu_);
  TransportStats snapshot;
  snapshot.num_parties = num_parties_;
  snapshot.totals = totals_;
  for (const ChannelStats& channel : channels_) {
    if (channel.messages > 0) snapshot.channels.push_back(channel);
  }
  for (const PhaseStats& phase : phases_) {
    if (phase.traffic.messages > 0 || phase.traffic.rounds > 0) {
      snapshot.phases.push_back(phase);
    }
  }
  snapshot.drops_injected = drops_;
  snapshot.delays_injected = delays_;
  snapshot.reorders_injected = reorders_;
  snapshot.receive_timeouts = timeouts_;
  snapshot.retries = retries_;
  snapshot.crash_losses = crash_losses_;
  snapshot.simulated_seconds =
      static_cast<double>(totals_.rounds) * per_round_latency_;
  snapshot.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  return snapshot;
}

void Transport::SetPhase(const std::string& phase) {
  {
    MutexLock lock(mu_);
    size_t index = phases_.size();
    for (size_t i = 0; i < phases_.size(); ++i) {
      if (phases_[i].phase == phase) {
        index = i;
        break;
      }
    }
    if (index == phases_.size()) {
      phases_.push_back(PhaseStats{phase, NetworkStats{}});
    }
    if (index == current_phase_) return;  // No transition, nothing to log.
    current_phase_ = index;
  }
  SQM_FLIGHT_EVENT("phase", phase.c_str(), 0);
}

std::string Transport::phase() const {
  MutexLock lock(mu_);
  return phases_[current_phase_].phase;
}

void Transport::SetInterceptor(MessageInterceptor* interceptor) {
  MutexLock lock(mu_);
  interceptor_ = interceptor;
}

MessageInterceptor* Transport::interceptor() const {
  MutexLock lock(mu_);
  return interceptor_;
}

std::vector<Transport::Payload> Transport::InterceptSend(size_t from,
                                                         size_t to,
                                                         Payload payload) {
  MessageInterceptor* hook;
  uint64_t round;
  std::string phase_label;
  {
    MutexLock lock(mu_);
    hook = interceptor_;
    round = totals_.rounds;
    phase_label = phases_[current_phase_].phase;
  }
  std::vector<Payload> deliveries;
  if (hook == nullptr || from == to) {
    deliveries.push_back(std::move(payload));
    return deliveries;
  }
  const MessageInterceptor::WireContext context{from, to, round,
                                                std::move(phase_label)};
  MessageInterceptor::SendVerdict verdict = hook->OnSend(context, payload);
  if (!verdict.swallow) deliveries.push_back(std::move(payload));
  for (Payload& replay : verdict.replays) {
    deliveries.push_back(std::move(replay));
  }
  return deliveries;
}

void Transport::MirrorToRegistry(const char* name, uint64_t n) {
  if (!obs::Enabled() || !registry_accounting()) return;
  // No static cache here: the metric name varies per call site, and these
  // paths already pay a mutex, so one registry map lookup is in the noise.
  obs::Registry::Global().GetCounter(name).Add(n);
}

void Transport::RecordSend(size_t from, size_t to, size_t elements) {
  const uint64_t bytes =
      static_cast<uint64_t>(elements) * element_wire_bytes_;
  {
    MutexLock lock(mu_);
    totals_.messages += 1;
    totals_.field_elements += elements;
    totals_.wire_bytes += bytes;
    ChannelStats& channel = channels_[ChannelIndex(from, to)];
    channel.messages += 1;
    channel.field_elements += elements;
    channel.wire_bytes += bytes;
    NetworkStats& phase = phases_[current_phase_].traffic;
    phase.messages += 1;
    phase.field_elements += elements;
    phase.wire_bytes += bytes;
  }
  // Mirror the same quantities into the metrics registry (outside mu_ —
  // counters are atomic) so TransportStats and the registry agree exactly.
  if (obs::Enabled() && registry_accounting()) {
    static obs::Counter& messages =
        obs::Registry::Global().GetCounter("net.send.messages");
    static obs::Counter& field_elements =
        obs::Registry::Global().GetCounter("net.send.field_elements");
    static obs::Counter& wire_bytes =
        obs::Registry::Global().GetCounter("net.send.wire_bytes");
    messages.Add(1);
    field_elements.Add(elements);
    wire_bytes.Add(bytes);
    SQM_OBS_HISTOGRAM_RECORD("net.send.elements_per_message", elements);
  }
}

void Transport::RecordRound() {
  {
    MutexLock lock(mu_);
    totals_.rounds += 1;
    phases_[current_phase_].traffic.rounds += 1;
  }
  MirrorToRegistry("net.rounds", 1);
}

void Transport::RecordDrop() {
  {
    MutexLock lock(mu_);
    ++drops_;
  }
  MirrorToRegistry("net.fault.drops", 1);
}

void Transport::RecordDelay() {
  {
    MutexLock lock(mu_);
    ++delays_;
  }
  MirrorToRegistry("net.fault.delays", 1);
}

void Transport::RecordReorder() {
  {
    MutexLock lock(mu_);
    ++reorders_;
  }
  MirrorToRegistry("net.fault.reorders", 1);
}

void Transport::RecordTimeout() {
  {
    MutexLock lock(mu_);
    ++timeouts_;
  }
  MirrorToRegistry("net.recv.timeouts", 1);
}

void Transport::RecordRetry() {
  {
    MutexLock lock(mu_);
    ++retries_;
  }
  MirrorToRegistry("net.recv.retries", 1);
}

void Transport::RecordCrashLoss() {
  {
    MutexLock lock(mu_);
    ++crash_losses_;
  }
  MirrorToRegistry("net.fault.crash_losses", 1);
}

void Transport::WarnDroppedOnReset(const char* transport_name,
                                   size_t dropped,
                                   const std::vector<ResetDrop>& per_channel) {
  if (dropped == 0) return;
  uint64_t warnings = 0;
  uint64_t lifetime = 0;
  {
    MutexLock lock(mu_);
    ++reset_warnings_;
    reset_dropped_total_ += dropped;
    warnings = reset_warnings_;
    lifetime = reset_dropped_total_;
  }
  // Per-peer attribution: a partition strands messages on one peer's
  // channels, a crash strands them everywhere — the breakdown tells the
  // two apart from one log line.
  std::string breakdown;
  for (const ResetDrop& drop : per_channel) {
    if (drop.count == 0) continue;
    if (!breakdown.empty()) breakdown += ", ";
    breakdown += std::to_string(drop.from) + "->" + std::to_string(drop.to) +
                 ":" + std::to_string(drop.count);
  }
  std::string cumulative;
  if (warnings > 1) {
    cumulative = "; " + std::to_string(lifetime) + " across " +
                 std::to_string(warnings) + " resets";
  }
  SQM_LOG(kWarning) << transport_name << "::Reset dropped " << dropped
                    << " undelivered message(s) on " << per_channel.size()
                    << " channel(s) [" << breakdown << "]" << cumulative
                    << "; a correct synchronous protocol drains every round";
}

void Transport::ResetAccounting() {
  MutexLock lock(mu_);
  totals_ = NetworkStats{};
  for (ChannelStats& channel : channels_) {
    channel.messages = 0;
    channel.field_elements = 0;
    channel.wire_bytes = 0;
  }
  phases_.clear();
  phases_.push_back(PhaseStats{"", NetworkStats{}});
  current_phase_ = 0;
  drops_ = delays_ = reorders_ = timeouts_ = retries_ = crash_losses_ = 0;
}

PhaseScope::PhaseScope(Transport* transport, const std::string& phase)
    : transport_(transport) {
  if (transport_ != nullptr) {
    previous_ = transport_->phase();
    transport_->SetPhase(phase);
  }
}

PhaseScope::~PhaseScope() {
  if (transport_ != nullptr) transport_->SetPhase(previous_);
}

}  // namespace sqm
