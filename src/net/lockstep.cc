#include "net/lockstep.h"

#include "core/logging.h"
#include "obs/trace.h"

namespace sqm {

LockstepTransport::LockstepTransport(size_t num_parties,
                                     double per_round_latency_seconds,
                                     size_t element_wire_bytes)
    : Transport(num_parties, per_round_latency_seconds, element_wire_bytes),
      queues_(num_parties * num_parties) {}

void LockstepTransport::ScheduleCrashes(
    const std::vector<CrashEvent>& crashes) {
  for (const CrashEvent& event : crashes) {
    SQM_CHECK(event.party < num_parties());
  }
  crashes_ = crashes;
}

bool LockstepTransport::HasCrashed(size_t party) const {
  const uint64_t completed_rounds = stats().rounds;
  for (const CrashEvent& event : crashes_) {
    if (event.party == party && completed_rounds >= event.after_rounds) {
      return true;
    }
  }
  return false;
}

void LockstepTransport::Send(size_t from, size_t to, Payload payload) {
  CheckParty(from, to);
  if (from != to && HasCrashed(from)) {
    RecordCrashLoss();
    if (obs::Enabled() && registry_accounting()) {
      obs::TraceEvent event;
      event.name = "net.fault.crash_loss";
      event.category = "net";
      event.AddArg("from", static_cast<int64_t>(from));
      event.AddArg("to", static_cast<int64_t>(to));
      obs::Tracer::Global().Instant(event);
    }
    return;
  }
  obs::Span span("net.send", "net");
  span.AddArg("from", static_cast<int64_t>(from));
  span.AddArg("to", static_cast<int64_t>(to));
  // The interceptor (adversarial harness) sees the message before any
  // accounting; a swallowed message never existed on the wire, a replay
  // counts as one more sent message.
  for (Payload& delivered : InterceptSend(from, to, std::move(payload))) {
    if (from != to) RecordSend(from, to, delivered.size());
    queues_[ChannelIndex(from, to)].push_back(std::move(delivered));
  }
}

Result<Transport::Payload> LockstepTransport::Receive(size_t from,
                                                      size_t to) {
  CheckParty(from, to);
  auto& queue = queues_[ChannelIndex(from, to)];
  if (queue.empty() && from != to && HasCrashed(from)) {
    return Status::Unavailable("party " + std::to_string(from) +
                               " crashed; channel " + std::to_string(from) +
                               " -> " + std::to_string(to) + " is dead");
  }
  if (queue.empty()) {
    return Status::FailedPrecondition(
        "receive with no pending message on channel " +
        std::to_string(from) + " -> " + std::to_string(to));
  }
  Payload payload = std::move(queue.front());
  queue.pop_front();
  return payload;
}

bool LockstepTransport::HasPending(size_t from, size_t to) const {
  CheckParty(from, to);
  return !queues_[ChannelIndex(from, to)].empty();
}

size_t LockstepTransport::Reset() {
  size_t dropped = 0;
  std::vector<ResetDrop> per_channel;
  for (size_t index = 0; index < queues_.size(); ++index) {
    auto& queue = queues_[index];
    if (queue.empty()) continue;
    dropped += queue.size();
    per_channel.push_back(ResetDrop{index / num_parties(),
                                    index % num_parties(), queue.size()});
    queue.clear();
  }
  WarnDroppedOnReset("LockstepTransport", dropped, per_channel);
  ResetAccounting();
  return dropped;
}

}  // namespace sqm
