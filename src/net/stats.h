#ifndef SQM_NET_STATS_H_
#define SQM_NET_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace sqm {

/// Serialized width of one payload element when no field-specific width is
/// configured. Transports account bytes with the width the *wire format*
/// needs (derived from the field modulus at the call site, e.g.
/// Field::kWireBytes), not with sizeof() of the in-memory representation.
inline constexpr size_t kDefaultElementWireBytes = 8;

/// Traffic and timing counters for a protocol execution.
///
/// Counting convention (all Transport implementations follow it): only
/// cross-party traffic counts. Self-sends (from == to) model a party
/// keeping its own sub-shares in memory; they are delivered but appear in
/// no counter. `wire_bytes` is accumulated at Send time from the
/// transport's configured serialized element width, so it reflects what a
/// real wire would carry; retransmissions triggered by fault injection are
/// charged again, like any resent packet.
struct NetworkStats {
  uint64_t messages = 0;        ///< Cross-party point-to-point sends.
  uint64_t field_elements = 0;  ///< Payload volume in field elements.
  uint64_t rounds = 0;          ///< Synchronous communication rounds.
  uint64_t wire_bytes = 0;      ///< Serialized payload bytes on the wire.

  uint64_t bytes() const { return wire_bytes; }

  NetworkStats& operator+=(const NetworkStats& other) {
    messages += other.messages;
    field_elements += other.field_elements;
    rounds += other.rounds;
    wire_bytes += other.wire_bytes;
    return *this;
  }

  NetworkStats& operator-=(const NetworkStats& other) {
    messages -= other.messages;
    field_elements -= other.field_elements;
    rounds -= other.rounds;
    wire_bytes -= other.wire_bytes;
    return *this;
  }

  friend NetworkStats operator-(NetworkStats lhs, const NetworkStats& rhs) {
    lhs -= rhs;
    return lhs;
  }
};

/// Per-directed-channel traffic counters (rounds are global, not per-link).
struct ChannelStats {
  size_t from = 0;
  size_t to = 0;
  uint64_t messages = 0;
  uint64_t field_elements = 0;
  uint64_t wire_bytes = 0;
};

/// Traffic attributed to one protocol phase (see Transport::SetPhase).
struct PhaseStats {
  std::string phase;
  NetworkStats traffic;
};

/// Full accounting snapshot of a Transport: global totals, the per-channel
/// and per-phase breakdowns, fault/retry counters, and both clocks.
struct TransportStats {
  size_t num_parties = 0;
  NetworkStats totals;
  /// One entry per directed channel with nonzero traffic.
  std::vector<ChannelStats> channels;
  /// One entry per phase label, in first-use order.
  std::vector<PhaseStats> phases;

  // Fault-injection and reliability counters (zero on lock-step transports).
  uint64_t drops_injected = 0;     ///< Messages dropped by the injector.
  uint64_t delays_injected = 0;    ///< Messages delivered late.
  uint64_t reorders_injected = 0;  ///< Messages delivered out of order.
  uint64_t receive_timeouts = 0;   ///< Blocking receives that timed out.
  uint64_t retries = 0;            ///< Successful retransmissions.
  uint64_t crash_losses = 0;       ///< Sends swallowed by a crashed party.

  /// Simulated communication time (rounds * per-round latency).
  double simulated_seconds = 0.0;
  /// Wall-clock lifetime of the transport up to this snapshot.
  double wall_seconds = 0.0;
};

}  // namespace sqm

#endif  // SQM_NET_STATS_H_
