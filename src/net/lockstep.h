#ifndef SQM_NET_LOCKSTEP_H_
#define SQM_NET_LOCKSTEP_H_

#include <deque>

#include "net/fault.h"
#include "net/transport.h"

namespace sqm {

/// Deterministic single-threaded transport reproducing the paper's
/// single-machine simulation (and the seed `SimulatedNetwork` semantics
/// bit-for-bit): messages queue in program order per directed channel, a
/// Receive with nothing pending hard-fails — in a correct synchronous
/// protocol every receive is matched by a send in the same round — and the
/// simulated clock advances by the per-round latency at every EndRound.
///
/// Not thread-safe for Send/Receive (accounting snapshots are); use
/// ThreadedTransport for concurrent parties.
class LockstepTransport : public Transport {
 public:
  LockstepTransport(size_t num_parties, double per_round_latency_seconds,
                    size_t element_wire_bytes = kDefaultElementWireBytes);

  void Send(size_t from, size_t to, Payload payload) override;
  Result<Payload> Receive(size_t from, size_t to) override;
  bool HasPending(size_t from, size_t to) const override;

  /// Installs a crash schedule (the only component of FaultOptions lockstep
  /// honors; probabilistic link faults need the threaded transport). A
  /// crashed party's sends are swallowed (counted as crash losses); a
  /// Receive from a crashed party with nothing queued returns kUnavailable
  /// — messages it sent before crashing remain deliverable.
  void ScheduleCrashes(const std::vector<CrashEvent>& crashes);

  /// Zeroes counters; warns (and returns the count) when undelivered
  /// messages are discarded, since that usually flags a protocol bug or a
  /// test that did not drain its rounds. Keeps the crash schedule.
  size_t Reset() override;

 private:
  bool HasCrashed(size_t party) const;

  std::vector<std::deque<Payload>> queues_;
  std::vector<CrashEvent> crashes_;
};

}  // namespace sqm

#endif  // SQM_NET_LOCKSTEP_H_
