#include "net/tcp/telemetry.h"

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <utility>

#include "core/json.h"
#include "core/logging.h"
#include "obs/obs.h"

namespace sqm::net {
namespace {

/// Clock probes fired per telemetry stream (one burst per incarnation).
/// The estimate keeps the probe with the smallest round trip, so a handful
/// of tries rides out scheduler noise without a long calibration phase.
constexpr int kClockProbes = 5;

/// Receive-timeout granularity of both ends' stream loops: how quickly a
/// stop flag is noticed and the upper bound probe echoes wait on top of the
/// true network delay.
constexpr double kPollSeconds = 0.05;

Status SendTelemetryFrame(const Socket& sock, const Frame& frame,
                          uint64_t session_key) {
  const std::vector<uint8_t> wire = EncodeFrame(frame, session_key);
  return WriteAll(sock, wire.data(), wire.size());
}

/// Reads one frame off a telemetry stream. A receive timeout at a frame
/// boundary surfaces as kDeadlineExceeded so the caller can do periodic
/// housekeeping; a timeout mid-frame keeps waiting (the bytes are already
/// committed on the stream) unless `stop` turns true.
Result<Frame> ReadTelemetryFrame(const Socket& sock, uint64_t session_key,
                                 const std::atomic<bool>& stop) {
  uint8_t len_bytes[4];
  size_t got = 0;
  for (;;) {
    const Status header = ReadFull(sock, len_bytes, 4, &got);
    if (header.ok()) break;
    if (header.code() == StatusCode::kDeadlineExceeded) {
      if (got == 0) return header;  // Frame boundary: housekeeping slot.
      if (stop.load()) return Status::Unavailable("telemetry stopping");
      continue;
    }
    return header;
  }
  uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<uint32_t>(len_bytes[i]) << (8 * i);
  }
  if (len < 8 || len > MaxEncodedFrameBytes(kMaxFrameElements)) {
    return Status::IntegrityViolation("telemetry frame length " +
                                      std::to_string(len) + " out of range");
  }
  std::vector<uint8_t> body(len);
  got = 0;
  for (;;) {
    const Status read = ReadFull(sock, body.data(), len, &got);
    if (read.ok()) break;
    if (read.code() == StatusCode::kDeadlineExceeded) {
      if (stop.load()) return Status::Unavailable("telemetry stopping");
      continue;
    }
    return read;
  }
  return DecodeFrame(body.data(), len, session_key);
}

/// Re-serializes a parsed JsonValue, preserving exact integers. Lets the
/// fleet document embed a party's snapshot (and its flight sub-document)
/// as a real JSON value instead of splicing raw text.
void WriteJsonValueInto(JsonWriter& writer, const JsonValue& value) {
  switch (value.kind) {
    case JsonValue::Kind::kNull:
      // JsonWriter has no null; the fleet schema never produces one
      // (absent members are skipped), so encode as false defensively.
      writer.Value(false);
      break;
    case JsonValue::Kind::kBool:
      writer.Value(value.bool_value);
      break;
    case JsonValue::Kind::kNumber:
      if (value.is_integer) {
        if (value.is_negative) {
          writer.Value(value.int_value);
        } else {
          writer.Value(value.uint_value);
        }
      } else {
        writer.Value(value.number);
      }
      break;
    case JsonValue::Kind::kString:
      writer.Value(value.string_value);
      break;
    case JsonValue::Kind::kArray:
      writer.BeginArray();
      for (const JsonValue& item : value.items) {
        WriteJsonValueInto(writer, item);
      }
      writer.EndArray();
      break;
    case JsonValue::Kind::kObject:
      writer.BeginObject();
      for (const auto& [key, member] : value.members) {
        writer.Key(key);
        WriteJsonValueInto(writer, member);
      }
      writer.EndObject();
      break;
  }
}

double NumberOr(const JsonValue* value, double fallback) {
  if (value == nullptr || value->kind != JsonValue::Kind::kNumber) {
    return fallback;
  }
  return value->number;
}

uint64_t UintOr(const JsonValue* value, uint64_t fallback) {
  if (value == nullptr || value->kind != JsonValue::Kind::kNumber ||
      !value->is_integer || value->is_negative) {
    return fallback;
  }
  return value->uint_value;
}

}  // namespace

std::vector<uint64_t> PackTelemetryJson(const std::string& json) {
  std::vector<uint64_t> payload;
  payload.reserve(1 + (json.size() + 7) / 8);
  payload.push_back(static_cast<uint64_t>(json.size()));
  for (size_t i = 0; i < json.size(); i += 8) {
    uint64_t word = 0;
    for (size_t k = 0; k < 8 && i + k < json.size(); ++k) {
      word |= static_cast<uint64_t>(static_cast<uint8_t>(json[i + k]))
              << (8 * k);
    }
    payload.push_back(word);
  }
  return payload;
}

Result<std::string> UnpackTelemetryJson(const std::vector<uint64_t>& payload) {
  if (payload.empty()) {
    return Status::IntegrityViolation("telemetry snapshot payload empty");
  }
  const uint64_t len = payload[0];
  if (len > (payload.size() - 1) * 8) {
    return Status::IntegrityViolation(
        "telemetry snapshot length " + std::to_string(len) +
        " exceeds payload of " + std::to_string(payload.size() - 1) +
        " words");
  }
  std::string json;
  json.resize(static_cast<size_t>(len));
  for (size_t i = 0; i < json.size(); ++i) {
    json[i] = static_cast<char>(
        (payload[1 + i / 8] >> (8 * (i % 8))) & 0xFF);
  }
  return json;
}

// ---------------------------------------------------------------------------
// TelemetryClient

TelemetryClient::TelemetryClient(TelemetryClientOptions options)
    : options_(std::move(options)) {}

TelemetryClient::~TelemetryClient() {
  stop_.store(true);
  if (thread_.joinable()) thread_.join();
}

Status TelemetryClient::SendFrame(FrameType type,
                                  std::vector<uint64_t> payload) {
  Frame frame;
  frame.type = type;
  frame.from = options_.party;
  frame.to = kTelemetryCoordinatorId;
  frame.incarnation = options_.incarnation;
  frame.seq = next_seq_++;
  frame.run_id = options_.run_id;
  frame.payload = std::move(payload);
  return SendTelemetryFrame(sock_, frame, options_.session_key);
}

Status TelemetryClient::SendSnapshot(const std::string& json) {
  return SendFrame(FrameType::kTelemetrySnapshot, PackTelemetryJson(json));
}

Status TelemetryClient::Start() {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(options_.connect_timeout_seconds));
  Result<Socket> sock = ConnectTo(options_.host, options_.port, deadline);
  if (!sock.ok()) return sock.status();
  sock_ = std::move(sock).ValueOrDie();
  SQM_RETURN_NOT_OK(SetRecvTimeout(sock_, kPollSeconds));
  SQM_RETURN_NOT_OK(SendFrame(FrameType::kTelemetryHello, {}));
  running_.store(true);
  thread_ = std::thread([this] { Run(); });
  return Status::OK();
}

void TelemetryClient::Run() {
  // Backdate the first tick so the initial snapshot (and the first durable
  // trace rewrite) lands immediately: a party crashing early in the
  // protocol must still have shipped a baseline.
  auto last_tick = std::chrono::steady_clock::now() -
                   std::chrono::duration_cast<
                       std::chrono::steady_clock::duration>(
                       std::chrono::duration<double>(
                           options_.snapshot_interval_seconds));
  while (!stop_.load()) {
    Result<Frame> frame =
        ReadTelemetryFrame(sock_, options_.session_key, stop_);
    if (!frame.ok()) {
      if (frame.status().code() != StatusCode::kDeadlineExceeded) {
        running_.store(false);  // Coordinator gone; party runs on.
        return;
      }
    } else {
      const Frame& received = frame.ValueOrDie();
      if (received.run_id != options_.run_id ||
          received.from != kTelemetryCoordinatorId) {
        running_.store(false);
        return;
      }
      if (received.type == FrameType::kBye) {
        running_.store(false);
        return;
      }
      if (received.type == FrameType::kTelemetryClock &&
          received.payload.size() == 1) {
        // Echo [t_c0, t_p]: the probe's coordinator send time plus our own
        // receive time, stamped on this process's trace clock.
        const uint64_t t_p = obs::NowMicros();
        if (!SendFrame(FrameType::kTelemetryClock,
                       {received.payload[0], t_p})
                 .ok()) {
          running_.store(false);
          return;
        }
      }
    }
    const auto now = std::chrono::steady_clock::now();
    if (std::chrono::duration<double>(now - last_tick).count() >=
        options_.snapshot_interval_seconds) {
      last_tick = now;
      if (options_.on_tick) options_.on_tick();
      if (options_.build_snapshot) {
        if (!SendSnapshot(options_.build_snapshot()).ok()) {
          running_.store(false);
          return;
        }
      }
    }
  }
}

void TelemetryClient::Stop(const std::string& final_snapshot_json) {
  stop_.store(true);
  if (thread_.joinable()) thread_.join();
  if (sock_.valid() && running_.load()) {
    // Best effort: the protocol is already finished, so a dead coordinator
    // costs nothing but this party's row in the fleet view.
    if (!final_snapshot_json.empty()) {
      (void)SendSnapshot(final_snapshot_json);
    }
    (void)SendFrame(FrameType::kBye, {});
  }
  running_.store(false);
  sock_.Close();
}

// ---------------------------------------------------------------------------
// TelemetryServer

TelemetryServer::TelemetryServer(uint64_t session_key, uint64_t run_id,
                                 size_t num_parties)
    : session_key_(session_key), run_id_(run_id) {
  MutexLock lock(mu_);
  parties_.resize(num_parties);
}

TelemetryServer::~TelemetryServer() { Stop(); }

Status TelemetryServer::Start(Socket listener) {
  if (!listener.valid()) {
    return Status::InvalidArgument("telemetry listener is not valid");
  }
  listener_ = std::move(listener);
  started_.store(true);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void TelemetryServer::Stop() {
  if (!started_.load()) return;
  stop_.store(true);
  ShutdownBoth(listener_);
  if (accept_thread_.joinable()) accept_thread_.join();
  // AcceptLoop has exited, so handlers_ is frozen and safe to walk.
  for (std::thread& handler : handlers_) {
    if (handler.joinable()) handler.join();
  }
  handlers_.clear();
  listener_.Close();
  started_.store(false);
}

void TelemetryServer::AcceptLoop() {
  while (!stop_.load()) {
    Result<Socket> conn = AcceptWithDeadline(
        listener_, std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(200));
    if (!conn.ok()) {
      if (conn.status().code() == StatusCode::kDeadlineExceeded) continue;
      return;  // Listener closed.
    }
    Socket sock = std::move(conn).ValueOrDie();
    if (!SetRecvTimeout(sock, kPollSeconds).ok()) continue;
    handlers_.emplace_back(
        [this, moved = std::make_shared<Socket>(std::move(sock))] {
          ServeStream(std::move(*moved));
        });
  }
}

void TelemetryServer::ServeStream(Socket sock) {
  // The stream must open with a verified hello naming the party.
  Result<Frame> hello = ReadTelemetryFrame(sock, session_key_, stop_);
  while (!hello.ok() &&
         hello.status().code() == StatusCode::kDeadlineExceeded &&
         !stop_.load()) {
    hello = ReadTelemetryFrame(sock, session_key_, stop_);
  }
  if (!hello.ok()) return;
  const Frame opener = std::move(hello).ValueOrDie();
  size_t num_parties = 0;
  {
    MutexLock lock(mu_);
    num_parties = parties_.size();
  }
  if (opener.type != FrameType::kTelemetryHello ||
      opener.run_id != run_id_ || opener.from >= num_parties) {
    return;
  }
  const uint32_t party = opener.from;
  const uint32_t incarnation = opener.incarnation;
  {
    MutexLock lock(mu_);
    PartyTelemetry& state = parties_[party];
    state.seen = true;
    state.connected = true;
    state.incarnation = incarnation;
    state.clock_rtt_micros = -1;  // Fresh estimate for this incarnation.
  }

  uint64_t next_seq = 1;
  auto send_frame = [&](FrameType type,
                        std::vector<uint64_t> payload) -> Status {
    Frame frame;
    frame.type = type;
    frame.from = kTelemetryCoordinatorId;
    frame.to = party;
    frame.incarnation = incarnation;
    frame.seq = next_seq++;
    frame.run_id = run_id_;
    frame.payload = std::move(payload);
    return SendTelemetryFrame(sock, frame, session_key_);
  };

  int probes_done = 0;
  uint64_t outstanding_t_c0 = 0;
  auto send_probe = [&]() -> bool {
    outstanding_t_c0 = obs::NowMicros();
    return send_frame(FrameType::kTelemetryClock, {outstanding_t_c0}).ok();
  };
  if (!send_probe()) return;

  for (;;) {
    Result<Frame> frame = ReadTelemetryFrame(sock, session_key_, stop_);
    if (!frame.ok()) {
      if (frame.status().code() == StatusCode::kDeadlineExceeded) {
        if (stop_.load()) break;
        continue;
      }
      break;  // EOF, reset, or a frame that failed verification.
    }
    const Frame& received = frame.ValueOrDie();
    if (received.run_id != run_id_ || received.from != party) break;
    if (received.type == FrameType::kBye) break;
    if (received.type == FrameType::kTelemetryClock) {
      if (received.payload.size() != 2 ||
          received.payload[0] != outstanding_t_c0 || outstanding_t_c0 == 0) {
        continue;  // Stale or malformed echo; the next probe re-syncs.
      }
      const uint64_t t_c1 = obs::NowMicros();
      const int64_t t_c0 = static_cast<int64_t>(received.payload[0]);
      const int64_t t_p = static_cast<int64_t>(received.payload[1]);
      const int64_t rtt = static_cast<int64_t>(t_c1) - t_c0;
      // NTP-style midpoint estimate: assuming symmetric path delay, the
      // party stamped t_p when the coordinator clock read (t_c0+t_c1)/2.
      const int64_t offset = (t_c0 + static_cast<int64_t>(t_c1)) / 2 - t_p;
      {
        MutexLock lock(mu_);
        PartyTelemetry& state = parties_[party];
        if (state.clock_rtt_micros < 0 || rtt < state.clock_rtt_micros) {
          state.clock_rtt_micros = rtt;
          state.clock_offset_micros = offset;
          state.offsets_by_incarnation[incarnation] = offset;
        }
      }
      outstanding_t_c0 = 0;
      if (++probes_done < kClockProbes) {
        if (!send_probe()) break;
      }
      continue;
    }
    if (received.type == FrameType::kTelemetrySnapshot) {
      Result<std::string> json = UnpackTelemetryJson(received.payload);
      if (json.ok()) ApplySnapshot(party, json.ValueOrDie());
      continue;
    }
    break;  // Data/handshake frames never belong on this stream.
  }
  MutexLock lock(mu_);
  parties_[party].connected = false;
}

void TelemetryServer::ApplySnapshot(uint32_t party, const std::string& json) {
  Result<JsonValue> parsed = ParseJson(json);
  if (!parsed.ok()) {
    SQM_LOG(kWarning) << "telemetry: party " << party
                      << " sent an unparseable snapshot: "
                      << parsed.status();
    return;
  }
  const JsonValue& doc = parsed.ValueOrDie();
  MutexLock lock(mu_);
  PartyTelemetry& state = parties_[party];
  ++state.snapshots;
  state.latest_json = json;
  state.incarnation = static_cast<uint32_t>(
      UintOr(doc.Find("incarnation"), state.incarnation));
  const JsonValue* final_member = doc.Find("final");
  if (final_member != nullptr &&
      final_member->kind == JsonValue::Kind::kBool) {
    state.final_seen = state.final_seen || final_member->bool_value;
  }
  const JsonValue* phase = doc.Find("phase");
  if (phase != nullptr && phase->kind == JsonValue::Kind::kString) {
    state.phase = phase->string_value;
  }
  if (const JsonValue* net = doc.Find("net");
      net != nullptr && net->kind == JsonValue::Kind::kObject) {
    state.net_messages = UintOr(net->Find("messages"), state.net_messages);
    state.net_field_elements =
        UintOr(net->Find("field_elements"), state.net_field_elements);
    state.net_wire_bytes =
        UintOr(net->Find("wire_bytes"), state.net_wire_bytes);
    state.net_rounds = UintOr(net->Find("rounds"), state.net_rounds);
  }
  state.ledger_epsilon =
      NumberOr(doc.Find("ledger_epsilon"), state.ledger_epsilon);
  state.beaver_pool_depth =
      NumberOr(doc.Find("beaver_pool_depth"), state.beaver_pool_depth);
}

PartyTelemetry TelemetryServer::Party(size_t party) const {
  MutexLock lock(mu_);
  SQM_CHECK(party < parties_.size());
  return parties_[party];
}

std::vector<PartyTelemetry> TelemetryServer::Fleet() const {
  MutexLock lock(mu_);
  return parties_;
}

Result<int64_t> TelemetryServer::ClockOffsetMicros(
    size_t party, uint32_t incarnation) const {
  MutexLock lock(mu_);
  if (party >= parties_.size()) {
    return Status::InvalidArgument("party out of range");
  }
  const auto it = parties_[party].offsets_by_incarnation.find(incarnation);
  if (it == parties_[party].offsets_by_incarnation.end()) {
    return Status::NotFound("no clock estimate for party " +
                            std::to_string(party) + " incarnation " +
                            std::to_string(incarnation));
  }
  return it->second;
}

Result<std::string> TelemetryServer::LatestFlightJson(size_t party) const {
  std::string latest;
  {
    MutexLock lock(mu_);
    if (party >= parties_.size()) {
      return Status::InvalidArgument("party out of range");
    }
    latest = parties_[party].latest_json;
  }
  if (latest.empty()) {
    return Status::NotFound("party " + std::to_string(party) +
                            " never sent a snapshot");
  }
  Result<JsonValue> parsed = ParseJson(latest);
  if (!parsed.ok()) return parsed.status();
  const JsonValue* flight = parsed.ValueOrDie().Find("flight");
  if (flight == nullptr || flight->kind != JsonValue::Kind::kObject) {
    return Status::NotFound("party " + std::to_string(party) +
                            " snapshot carries no flight member");
  }
  JsonWriter writer;
  WriteJsonValueInto(writer, *flight);
  return writer.str();
}

std::string TelemetryServer::FleetMetricsJson() const {
  const std::vector<PartyTelemetry> fleet = Fleet();
  JsonWriter writer;
  writer.BeginObject();
  writer.Field("run_id", run_id_);
  writer.BeginArray("parties");
  for (size_t j = 0; j < fleet.size(); ++j) {
    const PartyTelemetry& state = fleet[j];
    writer.BeginObject();
    writer.Field("party", static_cast<uint64_t>(j));
    writer.Field("connected", state.connected);
    writer.Field("final", state.final_seen);
    writer.Field("incarnation", static_cast<uint64_t>(state.incarnation));
    writer.Field("snapshots", state.snapshots);
    writer.Field("clock_offset_micros", state.clock_offset_micros);
    writer.Field("clock_rtt_micros", state.clock_rtt_micros);
    writer.Field("phase", state.phase);
    writer.Key("net");
    writer.BeginObject();
    writer.Field("messages", state.net_messages);
    writer.Field("field_elements", state.net_field_elements);
    writer.Field("wire_bytes", state.net_wire_bytes);
    writer.Field("rounds", state.net_rounds);
    writer.EndObject();
    writer.Field("ledger_epsilon", state.ledger_epsilon);
    writer.Field("beaver_pool_depth", state.beaver_pool_depth);
    if (!state.latest_json.empty()) {
      Result<JsonValue> parsed = ParseJson(state.latest_json);
      if (parsed.ok()) {
        writer.Key("state");
        WriteJsonValueInto(writer, parsed.ValueOrDie());
      }
    }
    writer.EndObject();
  }
  writer.EndArray();
  writer.EndObject();
  return writer.str();
}

std::string TelemetryServer::RenderFleetTable() const {
  const std::vector<PartyTelemetry> fleet = Fleet();
  std::string out =
      "party inc state phase        msgs     elems        bytes  rounds"
      "   eps      offset_us\n";
  for (size_t j = 0; j < fleet.size(); ++j) {
    const PartyTelemetry& state = fleet[j];
    const char* status = !state.seen        ? "-"
                         : state.final_seen ? "final"
                         : state.connected  ? "live"
                                            : "lost";
    char line[160];
    std::snprintf(line, sizeof(line),
                  "%5zu %3u %-5s %-10s %6" PRIu64 " %9" PRIu64 " %12" PRIu64
                  " %7" PRIu64 " %7.3f %10" PRId64 "\n",
                  j, state.incarnation, status,
                  state.phase.empty() ? "-" : state.phase.c_str(),
                  state.net_messages, state.net_field_elements,
                  state.net_wire_bytes, state.net_rounds,
                  state.ledger_epsilon, state.clock_offset_micros);
    out += line;
  }
  return out;
}

}  // namespace sqm::net
