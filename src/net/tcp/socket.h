#ifndef SQM_NET_TCP_SOCKET_H_
#define SQM_NET_TCP_SOCKET_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "core/status.h"

namespace sqm::net {

/// RAII owner of one POSIX socket descriptor. Move-only; the destructor
/// closes. This file (socket.h/.cc) is the ONLY module allowed to touch
/// raw socket syscalls — sqmlint's socket-discipline check rejects
/// `socket`/`connect`/`send`/`recv`/... anywhere else, so every errno is
/// converted into a Status exactly once, here.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();

  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Relinquishes ownership (caller closes).
  int Release();

  /// Closes now (idempotent).
  void Close();

 private:
  int fd_ = -1;
};

/// Creates a TCP listener bound to host:port (port 0 = ephemeral) with
/// SO_REUSEADDR, backlog accepted. `host` must be a numeric IPv4 address
/// ("127.0.0.1", "0.0.0.0") — deployment configs carry resolved addresses.
Result<Socket> ListenOn(const std::string& host, uint16_t port);

/// The port a listener (or connected socket) is actually bound to — how a
/// port-0 listener reports its ephemeral assignment.
Result<uint16_t> LocalPort(const Socket& socket);

/// Accepts one connection, waiting at most until `deadline`. Fails with
/// kDeadlineExceeded on timeout, kUnavailable if the listener is closed.
Result<Socket> AcceptWithDeadline(
    const Socket& listener, std::chrono::steady_clock::time_point deadline);

/// Connects to host:port, waiting at most until `deadline` (non-blocking
/// connect + poll). The returned socket is in blocking mode with
/// TCP_NODELAY set. kUnavailable on refusal/reset, kDeadlineExceeded on
/// timeout.
Result<Socket> ConnectTo(const std::string& host, uint16_t port,
                         std::chrono::steady_clock::time_point deadline);

/// Writes the whole buffer (retrying short writes; SIGPIPE suppressed).
/// kUnavailable when the peer has gone away.
Status WriteAll(const Socket& socket, const uint8_t* data, size_t len);

/// Reads exactly `len` bytes. kUnavailable on EOF or reset (peer gone),
/// kIoError on other failures. Blocks until satisfied; use ShutdownBoth
/// from another thread to force an in-flight read to return.
Status ReadAll(const Socket& socket, uint8_t* data, size_t len);

/// Like ReadAll but resumable: reads toward `len`, advancing `*got`. When
/// a receive timeout set via SetRecvTimeout expires, returns
/// kDeadlineExceeded with `*got` reflecting progress so the caller can
/// decide to keep waiting (mid-frame) or do housekeeping (frame boundary).
Status ReadFull(const Socket& socket, uint8_t* data, size_t len,
                size_t* got);

/// Arms SO_RCVTIMEO so blocked reads wake periodically (0 disables).
Status SetRecvTimeout(const Socket& socket, double seconds);

/// Half-closes both directions, waking any thread blocked in ReadAll /
/// WriteAll on this socket. Safe on an already-dead socket.
void ShutdownBoth(const Socket& socket);

/// Sets or clears FD_CLOEXEC. The coordinator pre-binds every party's
/// listener, marks them all close-on-exec, and clears the flag in each
/// child for that child's own listener only — so a party never inherits a
/// sibling's socket (an inherited listener would keep a dead party's port
/// half-alive and confuse reconnects).
Status SetCloseOnExec(const Socket& socket, bool enabled);

/// True when this platform supports the TCP transport (POSIX sockets).
bool TcpSupported();

}  // namespace sqm::net

#endif  // SQM_NET_TCP_SOCKET_H_
