#ifndef SQM_NET_TCP_PARTY_CONFIG_H_
#define SQM_NET_TCP_PARTY_CONFIG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/status.h"
#include "net/tcp/tcp_transport.h"

namespace sqm {
namespace net {

/// One networked SQM deployment, as shared by every process in the run:
/// the coordinator writes this file once and hands the SAME file to all n
/// sqm-party daemons plus itself. Everything in here is public knowledge
/// (the session key is a transport-authentication secret among the
/// parties, not data) — per-party private state is derived locally from
/// the party index.
///
/// This struct deliberately holds only scalars and strings (the query
/// polynomial is kept in poly/parser.h text form) so it can live in the
/// net layer: parsing it into Matrix/PolynomialVector objects happens in
/// core/party_sqm.h, which owns the math dependencies.
struct DeploymentConfig {
  /// Transport session identity: frames from another run are rejected.
  uint64_t run_id = 1;
  /// Shared SipHash MAC key authenticating every frame on every channel.
  uint64_t session_key = 0;
  /// Party roster; index == party id. parties[j].port == 0 is allowed for
  /// coordinator-managed runs where listeners are pre-bound and ports are
  /// rewritten before the config reaches the daemons.
  std::vector<TcpPeer> parties;

  /// Synthetic database: every process regenerates the full rows x cols
  /// matrix from data_seed and keeps only its own columns, so no data
  /// travels in the config. cols == 0 means one column per party.
  size_t rows = 16;
  size_t cols = 0;
  uint64_t data_seed = 7;

  /// Query polynomial in poly/parser.h text form, e.g. "x0*x0; x0*x1".
  std::string polynomial;

  /// SqmOptions mirror (names match core/sqm.h field for field).
  double gamma = 256.0;
  double mu = 0.0;
  uint64_t seed = 42;
  std::string dropout_policy = "abort";
  /// Multiplication backend: "grr" (online degree reduction) or "beaver"
  /// (offline triple pool; every party pre-deals the same pool from
  /// seed ^ 0xbea7e5 before the online phase, halving per-Mul rounds).
  /// Not combinable with supervised recovery (max_restarts > 0): the pool
  /// cursor is not part of the durable checkpoint.
  std::string mul_backend = "grr";
  double dp_delta = 1e-5;
  size_t bgw_threshold = 0;
  double record_norm_bound = 1.0;
  double max_f_l2 = 1.0;
  size_t mpc_max_attempts = 2;
  bool quantize_coefficients = true;
  bool check_capacity = true;

  /// Transport tuning (TcpTransportOptions mirror).
  double receive_timeout_seconds = 2.0;
  double connect_timeout_seconds = 10.0;
  size_t max_reconnect_attempts = 5;
  double reconnect_backoff_seconds = 0.05;

  /// Runtime observability kill switch for the whole fleet: false makes
  /// every process call obs::SetEnabled(false) before any protocol work,
  /// so no spans, metrics, flight events or telemetry streams exist and
  /// the wire carries no trace context. Released values are bit-identical
  /// either way (obs_distributed_test proves it).
  bool obs_enabled = true;
  /// Cadence of the party -> coordinator telemetry snapshots (and of the
  /// durable trace rewrites that keep pre-crash spans on disk).
  double telemetry_snapshot_interval_seconds = 0.25;

  /// Supervised recovery (docs/DEPLOYMENT.md "Recovery & supervision").
  /// max_restarts > 0 makes the coordinator respawn a dead party up to
  /// that many times, pointing it at its durable checkpoint; it REQUIRES
  /// recovery_deadline_seconds > 0, the per-incident budget every party
  /// spends at the resume barrier waiting for the restartee to rejoin
  /// before declaring it dead and falling back to the degrade path.
  size_t max_restarts = 0;
  /// Supervisor sleep before each respawn (crash storms damp out).
  double restart_backoff_seconds = 0.25;
  double recovery_deadline_seconds = 0.0;

  /// Socket-level chaos injection (ChaosOptions mirror; testing only,
  /// chaos_seed == 0 disables). chaos_partition_peer == SIZE_MAX means no
  /// induced partition.
  uint64_t chaos_seed = 0;
  std::string chaos_phase;
  size_t chaos_max_events = 8;
  double chaos_reset_probability = 0.0;
  double chaos_partial_write_probability = 0.0;
  double chaos_stall_probability = 0.0;
  double chaos_stall_seconds = 0.05;
  size_t chaos_partition_peer = static_cast<size_t>(-1);
  size_t chaos_partition_sends = 0;
};

/// Parses a deployment config from its JSON text. Structural validation
/// only (>= 2 parties, rows >= 1, non-empty polynomial, positive
/// timeouts); SQM-semantic validation happens when the options reach
/// SqmEvaluator/RunPartySqm.
Result<DeploymentConfig> ParseDeploymentConfig(const std::string& json);

/// Serializes; ParseDeploymentConfig(DeploymentConfigToJson(c)) == c.
std::string DeploymentConfigToJson(const DeploymentConfig& config);

/// The TcpTransportOptions for party `local_party` of this deployment.
/// `listen_fd` >= 0 adopts a pre-bound listening socket (coordinator
/// mode) instead of binding parties[local_party]. `incarnation` is the
/// process's restart generation (0 = first spawn; the supervisor passes
/// restarts-used on each respawn).
TcpTransportOptions TcpOptionsFromDeployment(const DeploymentConfig& config,
                                             size_t local_party,
                                             int listen_fd = -1,
                                             uint32_t incarnation = 0);

}  // namespace net

using net::DeploymentConfig;
using net::DeploymentConfigToJson;
using net::ParseDeploymentConfig;
using net::TcpOptionsFromDeployment;

}  // namespace sqm

#endif  // SQM_NET_TCP_PARTY_CONFIG_H_
