#include "net/tcp/frame.h"

#include <cstring>

namespace sqm::net {
namespace {

inline uint64_t Rotl(uint64_t x, int b) {
  return (x << b) | (x >> (64 - b));
}

inline void PutU16(std::vector<uint8_t>& out, uint16_t v) {
  out.push_back(static_cast<uint8_t>(v));
  out.push_back(static_cast<uint8_t>(v >> 8));
}

inline void PutU32(std::vector<uint8_t>& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

inline void PutU64(std::vector<uint8_t>& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

/// Bounds-checked little-endian reads over the frame body.
struct Reader {
  const uint8_t* p;
  size_t remaining;

  bool U16(uint16_t* v) {
    if (remaining < 2) return false;
    *v = static_cast<uint16_t>(p[0] | (p[1] << 8));
    p += 2;
    remaining -= 2;
    return true;
  }
  bool U32(uint32_t* v) {
    if (remaining < 4) return false;
    uint32_t x = 0;
    for (int i = 0; i < 4; ++i) x |= static_cast<uint32_t>(p[i]) << (8 * i);
    *v = x;
    p += 4;
    remaining -= 4;
    return true;
  }
  bool U64(uint64_t* v) {
    if (remaining < 8) return false;
    uint64_t x = 0;
    for (int i = 0; i < 8; ++i) x |= static_cast<uint64_t>(p[i]) << (8 * i);
    *v = x;
    p += 8;
    remaining -= 8;
    return true;
  }
  bool U8(uint8_t* v) {
    if (remaining < 1) return false;
    *v = p[0];
    ++p;
    --remaining;
    return true;
  }
  bool Bytes(size_t n, const uint8_t** out) {
    if (remaining < n) return false;
    *out = p;
    p += n;
    remaining -= n;
    return true;
  }
};

/// SplitMix64 finalizer, used only to expand the 64-bit session key into
/// the 128-bit SipHash key (not for protocol randomness).
inline uint64_t Mix64(uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

uint64_t SipHash24(uint64_t k0, uint64_t k1, const uint8_t* data,
                   size_t len) {
  uint64_t v0 = 0x736f6d6570736575ULL ^ k0;
  uint64_t v1 = 0x646f72616e646f6dULL ^ k1;
  uint64_t v2 = 0x6c7967656e657261ULL ^ k0;
  uint64_t v3 = 0x7465646279746573ULL ^ k1;

  auto round = [&] {
    v0 += v1;
    v1 = Rotl(v1, 13);
    v1 ^= v0;
    v0 = Rotl(v0, 32);
    v2 += v3;
    v3 = Rotl(v3, 16);
    v3 ^= v2;
    v0 += v3;
    v3 = Rotl(v3, 21);
    v3 ^= v0;
    v2 += v1;
    v1 = Rotl(v1, 17);
    v1 ^= v2;
    v2 = Rotl(v2, 32);
  };

  const size_t full_blocks = len / 8;
  for (size_t i = 0; i < full_blocks; ++i) {
    uint64_t m = 0;
    std::memcpy(&m, data + 8 * i, 8);
    v3 ^= m;
    round();
    round();
    v0 ^= m;
  }
  uint64_t last = static_cast<uint64_t>(len & 0xff) << 56;
  const size_t tail = len & 7;
  for (size_t i = 0; i < tail; ++i) {
    last |= static_cast<uint64_t>(data[full_blocks * 8 + i]) << (8 * i);
  }
  v3 ^= last;
  round();
  round();
  v0 ^= last;
  v2 ^= 0xff;
  round();
  round();
  round();
  round();
  return v0 ^ v1 ^ v2 ^ v3;
}

void DeriveMacKey(uint64_t session_key, uint64_t* k0, uint64_t* k1) {
  *k0 = Mix64(session_key);
  *k1 = Mix64(session_key ^ 0xa5a5a5a5a5a5a5a5ULL);
}

size_t MaxEncodedFrameBytes(size_t elements) {
  // length prefix + fixed header (incl. incarnation) + optional trace
  // context + phase cap + payload + MAC.
  return 4 + 2 + 1 + 1 + 4 + 4 + 4 + 8 + 8 + 16 + 2 + 256 + 4 +
         8 * elements + 8;
}

std::vector<uint8_t> EncodeFrame(const Frame& frame, uint64_t session_key) {
  std::vector<uint8_t> out;
  out.reserve(MaxEncodedFrameBytes(frame.payload.size()) - 250);
  PutU32(out, 0);  // Length prefix, patched below.
  const size_t body_start = out.size();

  PutU16(out, kTcpWireVersion);
  out.push_back(static_cast<uint8_t>(frame.type));
  out.push_back(frame.has_trace ? kFrameFlagTraceContext : 0);
  PutU32(out, frame.from);
  PutU32(out, frame.to);
  PutU32(out, frame.incarnation);
  PutU64(out, frame.seq);
  PutU64(out, frame.run_id);
  if (frame.has_trace) {
    PutU64(out, frame.trace_id);
    PutU64(out, frame.span_id);
  }
  const size_t phase_len = frame.phase.size() > 255 ? 255 : frame.phase.size();
  PutU16(out, static_cast<uint16_t>(phase_len));
  for (size_t i = 0; i < phase_len; ++i) {
    out.push_back(static_cast<uint8_t>(frame.phase[i]));
  }
  PutU32(out, static_cast<uint32_t>(frame.payload.size()));
  for (uint64_t word : frame.payload) PutU64(out, word);

  uint64_t k0 = 0;
  uint64_t k1 = 0;
  DeriveMacKey(session_key, &k0, &k1);
  const uint64_t mac =
      SipHash24(k0, k1, out.data() + body_start, out.size() - body_start);
  PutU64(out, mac);

  const uint32_t body_len = static_cast<uint32_t>(out.size() - body_start);
  for (int i = 0; i < 4; ++i) {
    out[i] = static_cast<uint8_t>(body_len >> (8 * i));
  }
  return out;
}

Result<Frame> DecodeFrame(const uint8_t* body, size_t len,
                          uint64_t session_key) {
  if (len < 8) {
    return Status::IntegrityViolation("tcp frame shorter than its MAC");
  }
  // Verify the MAC over everything before it, first: nothing from an
  // unauthenticated frame is interpreted beyond fixed-size reads.
  uint64_t k0 = 0;
  uint64_t k1 = 0;
  DeriveMacKey(session_key, &k0, &k1);
  const uint64_t expected = SipHash24(k0, k1, body, len - 8);
  uint64_t mac = 0;
  for (int i = 0; i < 8; ++i) {
    mac |= static_cast<uint64_t>(body[len - 8 + i]) << (8 * i);
  }
  if (mac != expected) {
    return Status::IntegrityViolation(
        "tcp frame MAC verification failed (wrong session key, corrupted "
        "stream, or tampering)");
  }

  Reader r{body, len - 8};
  Frame frame;
  uint16_t version = 0;
  uint8_t type = 0;
  uint8_t flags = 0;
  uint16_t phase_len = 0;
  uint32_t count = 0;
  if (!r.U16(&version) || !r.U8(&type) || !r.U8(&flags) ||
      !r.U32(&frame.from) || !r.U32(&frame.to) ||
      !r.U32(&frame.incarnation) || !r.U64(&frame.seq) ||
      !r.U64(&frame.run_id)) {
    return Status::IntegrityViolation("tcp frame header truncated");
  }
  if (version != kTcpWireVersion) {
    return Status::IntegrityViolation(
        "tcp frame protocol version " + std::to_string(version) +
        " != expected " + std::to_string(kTcpWireVersion));
  }
  if ((flags & ~kFrameFlagTraceContext) != 0) {
    return Status::IntegrityViolation(
        "tcp frame carries unknown flag bits " + std::to_string(flags));
  }
  if ((flags & kFrameFlagTraceContext) != 0) {
    frame.has_trace = true;
    if (!r.U64(&frame.trace_id) || !r.U64(&frame.span_id)) {
      return Status::IntegrityViolation("tcp frame trace context truncated");
    }
  }
  if (!r.U16(&phase_len)) {
    return Status::IntegrityViolation("tcp frame header truncated");
  }
  if (type < static_cast<uint8_t>(FrameType::kHello) ||
      type > static_cast<uint8_t>(FrameType::kTelemetrySnapshot)) {
    return Status::IntegrityViolation("unknown tcp frame type " +
                                      std::to_string(type));
  }
  frame.type = static_cast<FrameType>(type);
  const uint8_t* phase_bytes = nullptr;
  if (!r.Bytes(phase_len, &phase_bytes)) {
    return Status::IntegrityViolation("tcp frame phase label truncated");
  }
  frame.phase.assign(reinterpret_cast<const char*>(phase_bytes), phase_len);
  if (!r.U32(&count)) {
    return Status::IntegrityViolation("tcp frame payload count truncated");
  }
  if (count > kMaxFrameElements) {
    return Status::IntegrityViolation(
        "tcp frame payload count " + std::to_string(count) +
        " exceeds the " + std::to_string(kMaxFrameElements) +
        "-element cap");
  }
  if (r.remaining != static_cast<size_t>(count) * 8) {
    return Status::IntegrityViolation(
        "tcp frame payload length mismatch: " + std::to_string(r.remaining) +
        " bytes for " + std::to_string(count) + " elements");
  }
  frame.payload.resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint64_t word = 0;
    if (!r.U64(&word)) {
      return Status::IntegrityViolation("tcp frame payload truncated");
    }
    frame.payload[i] = word;
  }
  return frame;
}

}  // namespace sqm::net
