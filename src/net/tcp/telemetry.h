#ifndef SQM_NET_TCP_TELEMETRY_H_
#define SQM_NET_TCP_TELEMETRY_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/status.h"
#include "core/sync.h"
#include "net/tcp/frame.h"
#include "net/tcp/socket.h"

namespace sqm::net {

/// Pseudo party id the coordinator uses on the telemetry control stream.
/// Real party ids are roster indices (< n), so the value can never collide.
inline constexpr uint32_t kTelemetryCoordinatorId = 0xFFFFFFFFu;

/// Packs a JSON document into a kTelemetrySnapshot payload:
/// word 0 = byte length, then ceil(len/8) words of UTF-8 text,
/// little-endian, zero-padded.
std::vector<uint64_t> PackTelemetryJson(const std::string& json);

/// Inverse of PackTelemetryJson; kIntegrityViolation when the declared
/// byte length does not fit the payload.
Result<std::string> UnpackTelemetryJson(const std::vector<uint64_t>& payload);

struct TelemetryClientOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  uint64_t session_key = 0;
  uint64_t run_id = 0;
  uint32_t party = 0;
  uint32_t incarnation = 0;
  double connect_timeout_seconds = 5.0;
  double snapshot_interval_seconds = 0.25;
  /// Builds the JSON state document shipped in each periodic
  /// kTelemetrySnapshot (docs/OBSERVABILITY.md "Snapshot schema").
  std::function<std::string()> build_snapshot;
  /// Invoked once per snapshot interval on the telemetry thread, before
  /// build_snapshot. sqm-party uses it to rewrite the durable trace file,
  /// so a SIGKILL still leaves the pre-crash spans on disk.
  std::function<void()> on_tick;
};

/// The party-side half of the live telemetry channel: one background
/// thread holding a dedicated TCP connection to the coordinator, answering
/// clock-offset probes and shipping periodic state snapshots. Purely
/// observational — it shares no state with the protocol transport, and a
/// party whose telemetry connection fails runs to completion regardless.
class TelemetryClient {
 public:
  explicit TelemetryClient(TelemetryClientOptions options);
  ~TelemetryClient();

  /// Connects and sends kTelemetryHello, then spawns the streaming thread.
  /// Failure is not fatal to the party — the caller logs and proceeds.
  Status Start();

  /// Stops the streaming thread, then ships `final_snapshot_json` (built
  /// by the caller AFTER the protocol finished, from the report's frozen
  /// transport totals, so the fleet view reconciles exactly) and closes.
  void Stop(const std::string& final_snapshot_json);

  bool running() const { return running_.load(); }

 private:
  void Run();
  Status SendFrame(FrameType type, std::vector<uint64_t> payload);
  Status SendSnapshot(const std::string& json);

  TelemetryClientOptions options_;
  Socket sock_;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> running_{false};
  uint64_t next_seq_ = 1;  ///< Touched by Run(), and by Stop() after join.
};

/// What the coordinator knows about one party's telemetry stream.
struct PartyTelemetry {
  bool seen = false;       ///< A hello ever arrived.
  bool connected = false;  ///< A stream is currently open.
  bool final_seen = false; ///< The party shipped its final snapshot.
  uint32_t incarnation = 0;
  uint64_t snapshots = 0;
  /// Clock alignment for the CURRENT incarnation: add this to a timestamp
  /// on the party's trace clock to land on the coordinator's trace clock.
  /// Estimated NTP-style from the probe with the smallest round trip.
  int64_t clock_offset_micros = 0;
  int64_t clock_rtt_micros = -1;  ///< Best probe RTT; -1 = no estimate yet.
  std::string phase;
  uint64_t net_messages = 0;
  uint64_t net_field_elements = 0;
  uint64_t net_wire_bytes = 0;
  uint64_t net_rounds = 0;
  double ledger_epsilon = 0.0;
  double beaver_pool_depth = -1.0;  ///< -1 = party reported no pool.
  std::string latest_json;  ///< Last full snapshot document, verbatim.
  std::map<uint32_t, int64_t> offsets_by_incarnation;
};

/// The coordinator-side aggregator: accepts party telemetry streams on a
/// pre-bound listener, runs the clock-offset exchange against each
/// incarnation, and folds the per-party snapshots into a fleet view
/// (FleetMetricsJson / RenderFleetTable).
class TelemetryServer {
 public:
  TelemetryServer(uint64_t session_key, uint64_t run_id, size_t num_parties);
  ~TelemetryServer();

  /// Adopts the listener and spawns the accept loop.
  Status Start(Socket listener);

  /// Stops accepting, joins every stream handler. Idempotent.
  void Stop();

  PartyTelemetry Party(size_t party) const;
  std::vector<PartyTelemetry> Fleet() const;

  /// Clock offset (party trace clock -> coordinator trace clock) measured
  /// for the given incarnation; kNotFound if that incarnation never
  /// completed a probe.
  Result<int64_t> ClockOffsetMicros(size_t party, uint32_t incarnation) const;

  /// The "flight" member of the party's latest snapshot — the same
  /// document FlightRecorder::ToJson() produces — so the supervisor can
  /// write flight_<j>.json for a party that died by SIGKILL and never got
  /// to dump its own ring. kNotFound when no snapshot carried one.
  Result<std::string> LatestFlightJson(size_t party) const;

  /// fleet_metrics.json: {"run_id":..,"parties":[{"party":..,
  /// "connected":..,"final":..,"incarnation":..,"snapshots":..,
  /// "clock_offset_micros":..,"clock_rtt_micros":..,"phase":"..",
  /// "net":{"messages":..,"field_elements":..,"wire_bytes":..,
  /// "rounds":..},"ledger_epsilon":..,"beaver_pool_depth":..,
  /// "state":<latest snapshot document or null>},...]}.
  std::string FleetMetricsJson() const;

  /// One-screen live table (the --stats-interval / sqm-top view).
  std::string RenderFleetTable() const;

 private:
  void AcceptLoop();
  void ServeStream(Socket sock);
  void ApplySnapshot(uint32_t party, const std::string& json);

  const uint64_t session_key_;
  const uint64_t run_id_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> started_{false};
  Socket listener_;
  std::thread accept_thread_;
  std::vector<std::thread> handlers_;  ///< Appended only by AcceptLoop.
  mutable Mutex mu_;
  std::vector<PartyTelemetry> parties_ SQM_GUARDED_BY(mu_);
};

}  // namespace sqm::net

#endif  // SQM_NET_TCP_TELEMETRY_H_
