#ifndef SQM_NET_TCP_TCP_TRANSPORT_H_
#define SQM_NET_TCP_TCP_TRANSPORT_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/status.h"
#include "core/sync.h"
#include "net/tcp/frame.h"
#include "net/tcp/socket.h"
#include "net/transport.h"

namespace sqm {
namespace net {

/// One entry of the party roster: where party `i` listens.
struct TcpPeer {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
};

/// Seeded socket-level fault injection applied inside TcpTransport::Send —
/// the real-socket analogue of the in-process FaultInjector. Every
/// decision derives deterministically from `seed` (mixed with the local
/// party id, so faults are asymmetric across a mesh), injection can be
/// scoped to one phase label, and `max_events` bounds the total damage so
/// a chaotic run still converges. Handshake and goodbye frames are never
/// touched: chaos exercises the recovery machinery, not the authenticator.
struct ChaosOptions {
  /// 0 disables chaos entirely.
  uint64_t seed = 0;
  /// Only sends whose transport phase label equals this are eligible
  /// (empty = every phase).
  std::string phase;
  /// Hard cap on injected events across the transport's lifetime.
  size_t max_events = 8;
  /// Per-send probability of severing the connection instead of writing
  /// (a mid-protocol connection reset; the link reconnects).
  double reset_probability = 0.0;
  /// Per-send probability of writing only a prefix of the frame and then
  /// severing — the receiver sees a torn stream and drops the link.
  double partial_write_probability = 0.0;
  /// Per-send probability of stalling the write by `stall_seconds`.
  double stall_probability = 0.0;
  double stall_seconds = 0.05;
  /// When != SIZE_MAX: an asymmetric partition against this peer — the
  /// first `partition_sends` eligible cross-party sends to it are
  /// silently dropped (never written), while the peer's own frames keep
  /// arriving. Partition drops count against max_events.
  size_t partition_peer = static_cast<size_t>(-1);
  size_t partition_sends = 0;
};

struct TcpTransportOptions {
  /// Which roster entry this process plays. Unlike the in-process
  /// transports, a TcpTransport serves exactly ONE party: Send is valid
  /// only with from == local_party, Receive only with to == local_party.
  size_t local_party = 0;

  /// All n parties' listen addresses, indexed by party id (the local
  /// entry included — its port is where this process binds, unless
  /// `listen_fd` adopts a pre-bound socket).
  std::vector<TcpPeer> peers;

  /// Shared session key for SipHash-2-4 frame authentication. Every party
  /// of a run must hold the same key; frames from key-less or wrong-key
  /// senders fail MAC verification and sever the link.
  uint64_t session_key = 0;

  /// Run identifier carried in every frame; frames from a different run
  /// are rejected (stale daemons, crossed ports).
  uint64_t run_id = 0;

  double per_round_latency_seconds = 0.0;
  size_t element_wire_bytes = kDefaultElementWireBytes;

  /// How long one Receive waits for a pending message before returning
  /// kDeadlineExceeded (a liveness strike for the caller's tracker).
  double receive_timeout_seconds = 2.0;

  /// Window for establishing the initial full mesh in Create; dial
  /// attempts retry inside it (peers start in any order).
  double connect_timeout_seconds = 10.0;

  /// Reconnect policy after an established link drops: the dialing side
  /// retries with exponential backoff (base `reconnect_backoff_seconds`,
  /// doubled per attempt) up to `max_reconnect_attempts`, then declares
  /// the peer dead. The accepting side waits out the equivalent window
  /// (ReconnectWindowSeconds). This bound is what turns a killed peer
  /// into kUnavailable instead of a hang.
  size_t max_reconnect_attempts = 5;
  double reconnect_backoff_seconds = 0.05;

  /// When >= 0, adopt this already-bound, already-listening socket fd
  /// instead of binding peers[local_party]. The coordinator pre-binds all
  /// listeners (port 0 = ephemeral) and passes them to the spawned party
  /// processes, making localhost port assignment race-free.
  int listen_fd = -1;

  /// This party's restart generation under run_id: 0 for the first
  /// process, +1 per supervised respawn. Carried in every frame;
  /// handshakes presenting a LOWER incarnation than previously seen are
  /// rejected, a higher one flushes the link's replay state (the new
  /// process opens a fresh sequence space).
  uint32_t incarnation = 0;

  /// Extra seconds every peer keeps waiting for a vanished party beyond
  /// the dialer's own backoff schedule — sized to cover the supervisor's
  /// restart backoff plus process startup and listener rebinding, so a
  /// legitimate restart+rejoin never races the reconnect window. 0 = no
  /// allowance (crash-stop semantics, the pre-recovery behavior).
  double rejoin_window_seconds = 0.0;

  /// Seed for the decorrelation jitter on reconnect backoff (all peers of
  /// a restarted party would otherwise dial on the same exponential
  /// schedule). Deterministic: same seed, same schedule.
  uint64_t jitter_seed = 0;

  /// Socket-level fault injection (testing only; seed 0 disables).
  ChaosOptions chaos;
};

/// Transport over real TCP sockets: one OS process per party, full mesh.
///
/// Framing is length-prefixed with a protocol-version + channel/phase
/// header and a SipHash-2-4 MAC under the shared session key (see
/// net/tcp/frame.h). Connection establishment uses a fixed convention —
/// the higher-numbered party dials the lower-numbered one — so exactly one
/// side of each pair owns reconnection. A dropped link is retried with
/// exponential backoff; when the budget is exhausted the peer is declared
/// dead and every subsequent Receive from it fails kUnavailable, which the
/// protocol layer's LivenessTracker maps to an immediate kDead verdict.
///
/// Accounting goes through the shared Transport hooks, so TransportStats
/// and the obs registry's "net.*" counters reconcile exactly as they do
/// for the in-process transports: sends count at the instant the frame is
/// handed to the wire (delivered or not), receives are never counted,
/// self-sends bypass both the socket layer and the statistics.
class TcpTransport : public Transport {
 public:
  /// Builds the transport and establishes the full mesh, blocking up to
  /// connect_timeout_seconds. Fails (and cleans up) if any link cannot be
  /// established in that window.
  static Result<std::unique_ptr<TcpTransport>> Create(
      const TcpTransportOptions& options);

  ~TcpTransport() override;

  /// `from` must equal local_party (a process can only send as itself).
  void Send(size_t from, size_t to, Payload payload) override;

  /// `to` must equal local_party. Blocks up to receive_timeout_seconds;
  /// kUnavailable once the sending peer is positively dead (link closed
  /// and reconnect window exhausted, or graceful goodbye received),
  /// kDeadlineExceeded otherwise.
  Result<Payload> Receive(size_t from, size_t to) override;

  bool HasPending(size_t from, size_t to) const override;

  size_t Reset() override;

  /// True once the peer's link has been declared dead (reconnect budget
  /// exhausted or goodbye received). Feeds protocol-level quorum logic.
  bool PeerDead(size_t peer) const;

  /// Upper bound in seconds between a peer vanishing and PeerDead turning
  /// true: the sum of the exponential-backoff reconnect schedule plus the
  /// rejoin allowance (`rejoin_window_seconds`, covering supervisor
  /// restart backoff and listener rebinding after a respawn).
  double ReconnectWindowSeconds() const;

  /// Sends goodbye frames on all live links and tears the mesh down
  /// (idempotent; also run by the destructor). After a graceful shutdown
  /// peers mark this party departed without burning reconnect attempts.
  void Shutdown();

  /// The port the local listener is actually bound to (resolves port 0).
  uint16_t listen_port() const { return listen_port_; }

 private:
  /// One live connection. Held by shared_ptr so a writer that copied the
  /// pointer can never race the reader thread closing the fd.
  struct Conn {
    Socket sock;
    Mutex write_mu;  ///< Serializes whole frames onto the stream.
  };

  enum class LinkState : uint8_t { kConnecting, kUp, kDown, kDead };

  struct Link {
    LinkState state = LinkState::kConnecting;
    std::shared_ptr<Conn> conn;
    std::chrono::steady_clock::time_point down_since;
    uint64_t send_seq = 0;       ///< Next outgoing data-frame sequence.
    uint64_t last_recv_seq = 0;  ///< Highest verified incoming sequence.
    bool departed = false;       ///< Peer said goodbye (no reconnects).
    /// The peer's restart generation as learned from its last verified
    /// handshake. Data frames must match it exactly; a higher one at
    /// handshake resets last_recv_seq (fresh sequence space), a lower one
    /// is rejected as a stale process.
    uint32_t peer_incarnation = 0;
    bool has_peer_incarnation = false;
  };

  explicit TcpTransport(const TcpTransportOptions& options);

  Status Start();
  Status WaitMeshUp(std::chrono::steady_clock::time_point deadline);

  void AcceptorMain();
  void DialerMain(size_t peer);
  void AcceptSideMain(size_t peer);

  /// Reads frames from an installed connection until error/goodbye;
  /// returns the terminal status. Runs on the link's owner thread.
  Status ReadLoop(size_t peer, const std::shared_ptr<Conn>& conn);

  /// Performs the dialer-side handshake on a fresh connection.
  Status DialHandshake(const std::shared_ptr<Conn>& conn, size_t peer);

  void InstallConn(size_t peer, std::shared_ptr<Conn> conn);
  void MarkDown(size_t peer);
  void MarkDead(size_t peer, const char* reason);

  /// Registers the incarnation a verified handshake presented for `peer`:
  /// rejects a stale (lower) incarnation, flushes replay state on a newer
  /// one, keeps sequence state on an equal one (same process, new socket).
  Status NoteIncarnation(size_t peer, uint32_t incarnation);

  /// The jittered exponential backoff before reconnect attempt `attempt`
  /// to `peer` (deterministic in jitter_seed; capped so the reconnect
  /// window is probed frequently even late in the schedule).
  double ReconnectBackoffSeconds(size_t peer, size_t cycle,
                                 size_t attempt) const;

  /// What chaos (if any) to inject into the next eligible send to `to`.
  enum class ChaosAction : uint8_t { kNone, kDrop, kReset, kPartial, kStall };
  ChaosAction NextChaosAction(size_t to, const std::string& phase_label);

  bool ShuttingDown() const;

  const TcpTransportOptions options_;
  const size_t me_;
  uint16_t listen_port_ = 0;

  Socket listener_;
  std::vector<std::thread> threads_;

  mutable Mutex mu_;
  CondVar recv_cv_;  ///< Signaled on inbox pushes and death verdicts.
  CondVar link_cv_;  ///< Signaled on link state changes.
  std::vector<Link> links_ SQM_GUARDED_BY(mu_);
  std::vector<std::deque<Payload>> inboxes_ SQM_GUARDED_BY(mu_);
  bool shutting_down_ SQM_GUARDED_BY(mu_) = false;
  /// Chaos bookkeeping: one draw per eligible send, events capped.
  uint64_t chaos_draws_ SQM_GUARDED_BY(mu_) = 0;
  size_t chaos_events_ SQM_GUARDED_BY(mu_) = 0;
  size_t chaos_partition_drops_ SQM_GUARDED_BY(mu_) = 0;
};

}  // namespace net

// The roster/options types are part of the deployment-facing surface;
// re-export them at namespace sqm like the other transport option structs.
using net::TcpPeer;
using net::TcpTransport;
using net::TcpTransportOptions;

}  // namespace sqm

#endif  // SQM_NET_TCP_TCP_TRANSPORT_H_
