#include "net/tcp/tcp_transport.h"

#include <algorithm>
#include <utility>

#include "core/logging.h"
#include "obs/flight_recorder.h"
#include "obs/trace.h"

namespace sqm {
namespace net {

namespace {

using Clock = std::chrono::steady_clock;

/// Track ids for the per-link reader threads: track kRecvTrackBase + peer.
/// Exactly one reader owns a link at a time, so recv spans on one track
/// never overlap (party tracks are 0..n-1, anonymous threads >= 1000).
constexpr int32_t kRecvTrackBase = 100;

Clock::duration Seconds(double s) {
  return std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(s));
}

/// Slice-sleeps `total`, returning early (false) when `abort()` turns true.
template <typename AbortFn>
bool InterruptibleSleep(Clock::duration total, AbortFn abort) {
  const Clock::time_point deadline = Clock::now() + total;
  while (Clock::now() < deadline) {
    if (abort()) return false;
    const auto remaining = deadline - Clock::now();
    std::this_thread::sleep_for(
        std::min<Clock::duration>(remaining, std::chrono::milliseconds(50)));
  }
  return !abort();
}

/// SplitMix64 finalizer: stateless deterministic hashing for backoff
/// jitter and chaos decisions (not protocol randomness — those streams
/// live in sampling/rng.h and never touch the transport).
uint64_t Mix64(uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Maps a hash word to [0, 1).
double UnitDouble(uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

TcpTransport::TcpTransport(const TcpTransportOptions& options)
    : Transport(options.peers.size(), options.per_round_latency_seconds,
                options.element_wire_bytes),
      options_(options),
      me_(options.local_party) {
  MutexLock lock(mu_);
  links_.resize(options.peers.size());
  inboxes_.resize(options.peers.size());
  links_[me_].state = LinkState::kUp;  // A party's own memory is never down.
  const Clock::time_point now = Clock::now();
  for (Link& link : links_) link.down_since = now;
}

TcpTransport::~TcpTransport() { Shutdown(); }

Result<std::unique_ptr<TcpTransport>> TcpTransport::Create(
    const TcpTransportOptions& options) {
  if (!TcpSupported()) {
    return Status::Unimplemented(
        "TCP transport requires POSIX sockets on this platform");
  }
  const size_t n = options.peers.size();
  if (n < 2) {
    return Status::InvalidArgument(
        "TCP transport needs a roster of >= 2 parties");
  }
  if (options.local_party >= n) {
    return Status::InvalidArgument(
        "local_party " + std::to_string(options.local_party) +
        " outside the " + std::to_string(n) + "-party roster");
  }
  std::unique_ptr<TcpTransport> transport(new TcpTransport(options));
  SQM_RETURN_NOT_OK(transport->Start());
  SQM_RETURN_NOT_OK(transport->WaitMeshUp(
      Clock::now() + Seconds(options.connect_timeout_seconds)));
  return transport;
}

Status TcpTransport::Start() {
  if (options_.listen_fd >= 0) {
    listener_ = Socket(options_.listen_fd);
  } else {
    SQM_ASSIGN_OR_RETURN(
        listener_,
        ListenOn(options_.peers[me_].host, options_.peers[me_].port));
  }
  SQM_ASSIGN_OR_RETURN(listen_port_, LocalPort(listener_));

  const size_t n = options_.peers.size();
  if (me_ + 1 < n) {
    threads_.emplace_back([this] { AcceptorMain(); });
  }
  for (size_t peer = 0; peer < n; ++peer) {
    if (peer == me_) continue;
    if (peer < me_) {
      threads_.emplace_back([this, peer] { DialerMain(peer); });
    } else {
      threads_.emplace_back([this, peer] { AcceptSideMain(peer); });
    }
  }
  return Status::OK();
}

Status TcpTransport::WaitMeshUp(Clock::time_point deadline) {
  MutexLock lock(mu_);
  const bool ready = link_cv_.WaitUntil(mu_, deadline, [this]()
                                            SQM_REQUIRES(mu_) {
    for (size_t peer = 0; peer < links_.size(); ++peer) {
      if (peer == me_) continue;
      if (links_[peer].state == LinkState::kDead) return true;  // Fail fast.
      if (links_[peer].state != LinkState::kUp) return false;
    }
    return true;
  });
  std::string missing;
  for (size_t peer = 0; peer < links_.size(); ++peer) {
    if (peer == me_ || links_[peer].state == LinkState::kUp) continue;
    if (!missing.empty()) missing += ", ";
    missing += std::to_string(peer);
  }
  if (!ready || !missing.empty()) {
    return Status::Unavailable("party " + std::to_string(me_) +
                               " could not establish tcp links to parties [" +
                               missing + "] within " +
                               std::to_string(options_.connect_timeout_seconds) +
                               " s");
  }
  return Status::OK();
}

bool TcpTransport::ShuttingDown() const {
  MutexLock lock(mu_);
  return shutting_down_;
}

void TcpTransport::InstallConn(size_t peer, std::shared_ptr<Conn> conn) {
  MutexLock lock(mu_);
  const bool was_down = links_[peer].state == LinkState::kDown;
  links_[peer].conn = std::move(conn);
  links_[peer].state = LinkState::kUp;
  link_cv_.NotifyAll();
  if (was_down) RecordRetry();  // A successful reconnect is a recovery.
  SQM_FLIGHT_EVENT("link_up", "", static_cast<int64_t>(peer));
}

void TcpTransport::MarkDown(size_t peer) {
  MutexLock lock(mu_);
  if (links_[peer].state != LinkState::kUp &&
      links_[peer].state != LinkState::kConnecting) {
    return;
  }
  links_[peer].state = LinkState::kDown;
  links_[peer].down_since = Clock::now();
  links_[peer].conn.reset();
  link_cv_.NotifyAll();
  SQM_FLIGHT_EVENT("link_down", "", static_cast<int64_t>(peer));
}

void TcpTransport::MarkDead(size_t peer, const char* reason) {
  MutexLock lock(mu_);
  if (links_[peer].state == LinkState::kDead) return;
  links_[peer].state = LinkState::kDead;
  links_[peer].conn.reset();
  link_cv_.NotifyAll();
  recv_cv_.NotifyAll();  // Blocked receives must fail kUnavailable now.
  SQM_FLIGHT_EVENT("link_dead", reason, static_cast<int64_t>(peer));
  SQM_LOG(kInfo) << "TcpTransport party " << me_ << ": peer " << peer
                 << " declared dead (" << reason << ")";
}

Status TcpTransport::NoteIncarnation(size_t peer, uint32_t incarnation) {
  MutexLock lock(mu_);
  Link& link = links_[peer];
  if (link.has_peer_incarnation && incarnation < link.peer_incarnation) {
    return Status::IntegrityViolation(
        "peer " + std::to_string(peer) + " presented stale incarnation " +
        std::to_string(incarnation) + " < " +
        std::to_string(link.peer_incarnation));
  }
  if (!link.has_peer_incarnation || incarnation > link.peer_incarnation) {
    // A restarted peer opens a fresh sequence space: flush the replay
    // state so its new frames (seq starting over at 1) are accepted. Any
    // frame captured under the old incarnation can still never land —
    // ReadLoop checks the incarnation on every data frame. An EQUAL
    // incarnation (same process, new socket after a transient reset)
    // keeps the sequence state, so pre-disconnect frames stay replayable
    // to no one.
    link.peer_incarnation = incarnation;
    link.has_peer_incarnation = true;
    link.last_recv_seq = 0;
  }
  return Status::OK();
}

Status TcpTransport::DialHandshake(const std::shared_ptr<Conn>& conn,
                                   size_t peer) {
  SQM_RETURN_NOT_OK(SetRecvTimeout(conn->sock, 2.0));
  Frame hello;
  hello.type = FrameType::kHello;
  hello.from = static_cast<uint32_t>(me_);
  hello.to = static_cast<uint32_t>(peer);
  hello.incarnation = options_.incarnation;
  hello.run_id = options_.run_id;
  const std::vector<uint8_t> wire =
      EncodeFrame(hello, options_.session_key);
  SQM_RETURN_NOT_OK(WriteAll(conn->sock, wire.data(), wire.size()));

  uint8_t len_bytes[4];
  SQM_RETURN_NOT_OK(ReadAll(conn->sock, len_bytes, 4));
  uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<uint32_t>(len_bytes[i]) << (8 * i);
  }
  if (len < 8 || len > MaxEncodedFrameBytes(0)) {
    return Status::IntegrityViolation("handshake ack frame length " +
                                      std::to_string(len) + " out of range");
  }
  std::vector<uint8_t> body(len);
  SQM_RETURN_NOT_OK(ReadAll(conn->sock, body.data(), len));
  SQM_ASSIGN_OR_RETURN(
      const Frame ack, DecodeFrame(body.data(), len, options_.session_key));
  if (ack.type != FrameType::kHelloAck || ack.from != peer ||
      ack.to != me_ || ack.run_id != options_.run_id) {
    return Status::IntegrityViolation(
        "handshake ack mismatch from peer " + std::to_string(peer));
  }
  SQM_RETURN_NOT_OK(NoteIncarnation(peer, ack.incarnation));
  return SetRecvTimeout(conn->sock, 0.25);
}

void TcpTransport::AcceptorMain() {
  while (!ShuttingDown()) {
    Result<Socket> accepted = AcceptWithDeadline(
        listener_, Clock::now() + std::chrono::milliseconds(250));
    if (!accepted.ok()) {
      if (accepted.status().code() == StatusCode::kDeadlineExceeded) {
        continue;
      }
      if (ShuttingDown() ||
          accepted.status().code() == StatusCode::kUnavailable) {
        return;
      }
      SQM_LOG(kWarning) << "TcpTransport party " << me_
                        << ": accept failed: " << accepted.status();
      continue;
    }
    auto conn = std::make_shared<Conn>();
    conn->sock = std::move(accepted).ValueOrDie();

    // Handshake: the dialer must present a MAC-verified HELLO naming this
    // run and this recipient before any payload is believed.
    const Status armed = SetRecvTimeout(conn->sock, 2.0);
    if (!armed.ok()) continue;
    uint8_t len_bytes[4];
    if (!ReadAll(conn->sock, len_bytes, 4).ok()) continue;
    uint32_t len = 0;
    for (int i = 0; i < 4; ++i) {
      len |= static_cast<uint32_t>(len_bytes[i]) << (8 * i);
    }
    if (len < 8 || len > MaxEncodedFrameBytes(0)) continue;
    std::vector<uint8_t> body(len);
    if (!ReadAll(conn->sock, body.data(), len).ok()) continue;
    Result<Frame> hello =
        DecodeFrame(body.data(), len, options_.session_key);
    if (!hello.ok()) {
      SQM_LOG(kWarning) << "TcpTransport party " << me_
                        << ": rejected connection: " << hello.status();
      continue;
    }
    const Frame& frame = hello.ValueOrDie();
    const size_t peer = frame.from;
    if (frame.type != FrameType::kHello || frame.run_id != options_.run_id ||
        frame.to != me_ || peer <= me_ || peer >= options_.peers.size()) {
      SQM_LOG(kWarning) << "TcpTransport party " << me_
                        << ": rejected hello (wrong run, role, or party id)";
      continue;
    }
    if (PeerDead(peer)) continue;  // Dead is absorbing; no resurrection.
    const Status noted = NoteIncarnation(peer, frame.incarnation);
    if (!noted.ok()) {
      SQM_LOG(kWarning) << "TcpTransport party " << me_
                        << ": rejected hello: " << noted;
      continue;
    }

    Frame ack;
    ack.type = FrameType::kHelloAck;
    ack.from = static_cast<uint32_t>(me_);
    ack.to = static_cast<uint32_t>(peer);
    ack.incarnation = options_.incarnation;
    ack.run_id = options_.run_id;
    const std::vector<uint8_t> wire =
        EncodeFrame(ack, options_.session_key);
    if (!WriteAll(conn->sock, wire.data(), wire.size()).ok()) continue;
    if (!SetRecvTimeout(conn->sock, 0.25).ok()) continue;
    InstallConn(peer, std::move(conn));
  }
}

void TcpTransport::DialerMain(size_t peer) {
  const TcpPeer& address = options_.peers[peer];
  // Initial mesh phase: peers start in any order, so refusals are retried
  // until the connect window closes.
  const Clock::time_point initial_deadline =
      Clock::now() + Seconds(options_.connect_timeout_seconds);
  bool established = false;
  while (!ShuttingDown() && !established) {
    auto conn = std::make_shared<Conn>();
    Result<Socket> sock =
        ConnectTo(address.host, address.port,
                  std::min(initial_deadline,
                           Clock::now() + std::chrono::seconds(1)));
    if (sock.ok()) {
      conn->sock = std::move(sock).ValueOrDie();
      const Status shaken = DialHandshake(conn, peer);
      if (shaken.ok()) {
        InstallConn(peer, conn);
        established = true;
        const Status terminal = ReadLoop(peer, conn);
        if (ShuttingDown()) return;
        if (terminal.code() == StatusCode::kUnavailable &&
            PeerDead(peer)) {
          return;  // Goodbye received; ReadLoop already marked dead.
        }
        MarkDown(peer);
        break;  // Fall through to the reconnect loop.
      }
    }
    if (Clock::now() >= initial_deadline) {
      MarkDead(peer, "initial connect window exhausted");
      return;
    }
    if (!InterruptibleSleep(std::chrono::milliseconds(20),
                            [this] { return ShuttingDown(); })) {
      return;
    }
  }

  // Reconnect phase: jittered exponential backoff inside an elapsed-time
  // window — the SAME window AcceptSideMain waits out, so both sides of a
  // pair give up together. Bounding by elapsed time (not attempt count)
  // is what lets the rejoin allowance work: a supervised restart takes
  // restart-backoff + process-startup seconds, during which every dial is
  // refused, and an attempt-counted loop would burn its budget long
  // before the peer's listener is back.
  size_t cycle = 0;
  while (!ShuttingDown()) {
    const Clock::time_point window_end =
        Clock::now() + Seconds(ReconnectWindowSeconds());
    bool reconnected = false;
    size_t attempt = 0;
    while (!ShuttingDown() && Clock::now() < window_end) {
      const double backoff = ReconnectBackoffSeconds(peer, cycle, attempt);
      ++attempt;
      if (!InterruptibleSleep(Seconds(backoff),
                              [this] { return ShuttingDown(); })) {
        return;
      }
      if (Clock::now() >= window_end) break;
      auto conn = std::make_shared<Conn>();
      Result<Socket> sock = ConnectTo(address.host, address.port,
                                      Clock::now() + std::chrono::seconds(1));
      if (!sock.ok()) continue;
      conn->sock = std::move(sock).ValueOrDie();
      if (!DialHandshake(conn, peer).ok()) continue;
      InstallConn(peer, conn);
      reconnected = true;
      const Status terminal = ReadLoop(peer, conn);
      if (ShuttingDown()) return;
      if (terminal.code() == StatusCode::kUnavailable && PeerDead(peer)) {
        return;
      }
      MarkDown(peer);
      break;  // Fresh window after every successful period.
    }
    ++cycle;
    if (!reconnected) {
      MarkDead(peer, "reconnect window exhausted");
      return;
    }
  }
}

double TcpTransport::ReconnectBackoffSeconds(size_t peer, size_t cycle,
                                             size_t attempt) const {
  // Exponential base schedule, capped per-sleep at 0.5 s so the window is
  // probed frequently even late in the schedule (a restarting peer's
  // listener comes back at an unpredictable point inside the window).
  const size_t exponent = attempt < 10 ? attempt : 10;
  double backoff = options_.reconnect_backoff_seconds *
                   static_cast<double>(uint64_t{1} << exponent);
  if (backoff > 0.5) backoff = 0.5;
  // Decorrelation jitter in [0.5, 1.0) of the base value, derived from
  // the transport's seed: all peers of a restarted party would otherwise
  // dial on the SAME exponential schedule (thundering herd on its fresh
  // listener). Deterministic, so chaos tests reproduce exactly.
  const uint64_t h = Mix64(options_.jitter_seed ^
                           (uint64_t{0x9e37} * (me_ + 1)) ^
                           (uint64_t(peer) << 40) ^ (uint64_t(cycle) << 20) ^
                           uint64_t(attempt));
  return backoff * (0.5 + 0.5 * UnitDouble(h));
}

void TcpTransport::AcceptSideMain(size_t peer) {
  for (;;) {
    std::shared_ptr<Conn> conn;
    {
      MutexLock lock(mu_);
      const Clock::time_point deadline =
          links_[peer].down_since +
          Seconds(links_[peer].state == LinkState::kConnecting
                      ? options_.connect_timeout_seconds
                      : ReconnectWindowSeconds());
      const bool changed =
          link_cv_.WaitUntil(mu_, deadline, [&]() SQM_REQUIRES(mu_) {
            return shutting_down_ ||
                   links_[peer].state == LinkState::kUp ||
                   links_[peer].state == LinkState::kDead;
          });
      if (shutting_down_) return;
      if (links_[peer].state == LinkState::kDead) return;
      if (!changed) {
        // Window expired without the dialer coming back.
        links_[peer].state = LinkState::kDead;
        links_[peer].conn.reset();
        link_cv_.NotifyAll();
        recv_cv_.NotifyAll();
        SQM_LOG(kInfo) << "TcpTransport party " << me_ << ": peer " << peer
                       << " declared dead (reconnect window expired)";
        return;
      }
      conn = links_[peer].conn;
    }
    if (conn == nullptr) continue;
    const Status terminal = ReadLoop(peer, conn);
    if (ShuttingDown()) return;
    if (terminal.code() == StatusCode::kUnavailable && PeerDead(peer)) {
      return;  // Goodbye path.
    }
    {
      // Only demote the link if this reader's connection is still the
      // installed one (the acceptor may have replaced it already).
      MutexLock lock(mu_);
      if (links_[peer].conn == conn &&
          links_[peer].state == LinkState::kUp) {
        links_[peer].state = LinkState::kDown;
        links_[peer].down_since = Clock::now();
        links_[peer].conn.reset();
        link_cv_.NotifyAll();
      }
    }
  }
}

Status TcpTransport::ReadLoop(size_t peer,
                              const std::shared_ptr<Conn>& conn) {
  if (obs::Enabled()) {
    obs::Tracer::Global().SetTrackName(
        kRecvTrackBase + static_cast<int32_t>(peer),
        "recv from party " + std::to_string(peer));
  }
  obs::TrackScope recv_track(kRecvTrackBase + static_cast<int32_t>(peer));
  std::vector<uint8_t> body;
  for (;;) {
    uint8_t len_bytes[4];
    size_t got = 0;
    for (;;) {
      const Status header = ReadFull(conn->sock, len_bytes, 4, &got);
      if (header.ok()) break;
      if (header.code() == StatusCode::kDeadlineExceeded) {
        if (ShuttingDown()) return Status::OK();
        MutexLock lock(mu_);
        if (links_[peer].conn != conn) return Status::OK();  // Replaced.
        continue;
      }
      return header;
    }
    uint32_t len = 0;
    for (int i = 0; i < 4; ++i) {
      len |= static_cast<uint32_t>(len_bytes[i]) << (8 * i);
    }
    if (len < 8 || len > MaxEncodedFrameBytes(kMaxFrameElements)) {
      return Status::IntegrityViolation(
          "tcp frame length " + std::to_string(len) + " out of range");
    }
    body.resize(len);
    got = 0;
    for (;;) {
      // Mid-frame timeouts keep waiting: the bytes are committed on the
      // stream, and a genuinely dead peer surfaces as EOF/reset instead.
      const Status read = ReadFull(conn->sock, body.data(), len, &got);
      if (read.ok()) break;
      if (read.code() == StatusCode::kDeadlineExceeded) {
        if (ShuttingDown()) return Status::OK();
        continue;
      }
      return read;
    }
    Result<Frame> decoded =
        DecodeFrame(body.data(), len, options_.session_key);
    if (!decoded.ok()) {
      SQM_LOG(kWarning) << "TcpTransport party " << me_ << ": severing link "
                        << peer << ": " << decoded.status();
      return decoded.status();
    }
    Frame frame = std::move(decoded).ValueOrDie();
    if (frame.from != peer || frame.to != me_ ||
        frame.run_id != options_.run_id) {
      return Status::IntegrityViolation(
          "tcp frame addressed (" + std::to_string(frame.from) + " -> " +
          std::to_string(frame.to) + ") arrived on link " +
          std::to_string(peer) + " -> " + std::to_string(me_));
    }
    if (frame.type == FrameType::kBye) {
      MarkDead(peer, "peer departed gracefully");
      return Status::Unavailable("peer departed");
    }
    if (frame.type != FrameType::kData) {
      return Status::IntegrityViolation("unexpected mid-stream frame type");
    }
    MutexLock lock(mu_);
    if (links_[peer].has_peer_incarnation &&
        frame.incarnation != links_[peer].peer_incarnation) {
      return Status::IntegrityViolation(
          "tcp frame incarnation " + std::to_string(frame.incarnation) +
          " != link incarnation " +
          std::to_string(links_[peer].peer_incarnation) +
          " (frame captured before the peer's restart)");
    }
    if (frame.seq <= links_[peer].last_recv_seq) {
      return Status::IntegrityViolation(
          "tcp frame sequence " + std::to_string(frame.seq) +
          " not above " + std::to_string(links_[peer].last_recv_seq) +
          " (replayed or re-ordered frame)");
    }
    links_[peer].last_recv_seq = frame.seq;
    if (obs::Enabled()) {
      // The recv span plus the finishing half of the sender's flow arrow:
      // same id as the peer's net.send span (propagated in the frame
      // header), so the merged trace draws send -> receive causally across
      // processes. "bp":"e" binds the arrowhead to this recv span.
      obs::Span recv_span("net.recv", "net");
      recv_span.AddArg("peer", static_cast<int64_t>(peer));
      recv_span.AddArg("seq", static_cast<int64_t>(frame.seq));
      recv_span.AddArg("elements",
                       static_cast<int64_t>(frame.payload.size()));
      if (frame.has_trace) {
        obs::Tracer::Global().FlowFinish("net.link", "net", frame.span_id);
      }
      SQM_FLIGHT_EVENT2("recv", frame.phase.c_str(),
                        static_cast<int64_t>(peer),
                        static_cast<int64_t>(frame.seq));
    }
    inboxes_[peer].push_back(std::move(frame.payload));
    recv_cv_.NotifyAll();
  }
}

void TcpTransport::Send(size_t from, size_t to, Payload payload) {
  CheckParty(from, to);
  SQM_CHECK(from == me_);
  if (to == me_) {
    // Self-send: the party's own memory — no wire, no statistics.
    MutexLock lock(mu_);
    inboxes_[me_].push_back(std::move(payload));
    recv_cv_.NotifyAll();
    return;
  }
  const std::string phase_label = phase();
  std::vector<Payload> deliveries = InterceptSend(from, to, std::move(payload));
  for (Payload& out : deliveries) {
    std::shared_ptr<Conn> conn;
    uint64_t seq = 0;
    bool up = false;
    {
      MutexLock lock(mu_);
      seq = ++links_[to].send_seq;
      if (links_[to].state == LinkState::kUp) {
        conn = links_[to].conn;
        up = conn != nullptr;
      }
    }
    RecordSend(from, to, out.size());
    if (!up) {
      // The peer is down or dead: the frame is irrecoverably unsent, the
      // same verdict the in-process transports give sends to a crashed
      // party. The receiver's timeout/liveness machinery handles the gap.
      RecordCrashLoss();
      continue;
    }
    const ChaosAction chaos = NextChaosAction(to, phase_label);
    if (chaos == ChaosAction::kDrop) {
      // Asymmetric partition: the frame silently vanishes while the
      // peer's own traffic keeps arriving. Receivers see only a sequence
      // gap (allowed — seq must be increasing, not contiguous) and a
      // missing message, i.e. exactly what a one-way partition looks like.
      RecordDrop();
      continue;
    }
    if (chaos == ChaosAction::kReset) {
      // Connection reset instead of the write: the reader on this link
      // wakes with EOF and the reconnect machinery takes over.
      RecordCrashLoss();
      ShutdownBoth(conn->sock);
      MarkDown(to);
      continue;
    }
    obs::Span send_span("net.send", "net");
    send_span.AddArg("peer", static_cast<int64_t>(to));
    send_span.AddArg("seq", static_cast<int64_t>(seq));
    send_span.AddArg("elements", static_cast<int64_t>(out.size()));
    Frame frame;
    frame.type = FrameType::kData;
    frame.from = static_cast<uint32_t>(from);
    frame.to = static_cast<uint32_t>(to);
    frame.incarnation = options_.incarnation;
    frame.seq = seq;
    frame.run_id = options_.run_id;
    frame.phase = phase_label;
    frame.payload = std::move(out);
    if (obs::Enabled() && obs::Tracer::TraceId() != 0) {
      // Trace-context propagation: the receiver's net.recv links back to
      // this span through the frame header (under the MAC). Gated on a
      // nonzero trace id so plain library users and the kill-switched
      // builds keep a context-free wire.
      frame.has_trace = true;
      frame.trace_id = obs::Tracer::TraceId();
      frame.span_id = send_span.id();
      obs::Tracer::Global().FlowStart("net.link", "net", send_span.id());
    }
    if (obs::Enabled()) {
      SQM_FLIGHT_EVENT2("send", phase_label.c_str(),
                        static_cast<int64_t>(to),
                        static_cast<int64_t>(seq));
    }
    const std::vector<uint8_t> wire =
        EncodeFrame(frame, options_.session_key);
    if (chaos == ChaosAction::kStall) {
      // Fault injection, not a retry: the stall IS the event under test.
      // sqmlint:allow(retry-discipline)
      std::this_thread::sleep_for(Seconds(options_.chaos.stall_seconds));
    }
    Status written = Status::OK();
    {
      MutexLock write_lock(conn->write_mu);
      if (chaos == ChaosAction::kPartial) {
        // Torn write: commit a prefix, then sever. The receiver's framing
        // layer sees a truncated stream and drops the connection — the
        // partial frame can never decode (its MAC is missing).
        const size_t prefix = wire.size() / 2;
        written = WriteAll(conn->sock, wire.data(), prefix);
        ShutdownBoth(conn->sock);
        written = Status::Unavailable("chaos: torn write");
      } else {
        written = WriteAll(conn->sock, wire.data(), wire.size());
      }
    }
    if (!written.ok()) {
      RecordCrashLoss();
      // Wake the link's reader promptly so reconnection starts now.
      ShutdownBoth(conn->sock);
      MarkDown(to);
    }
  }
}

TcpTransport::ChaosAction TcpTransport::NextChaosAction(
    size_t to, const std::string& phase_label) {
  const ChaosOptions& chaos = options_.chaos;
  if (chaos.seed == 0) return ChaosAction::kNone;
  if (!chaos.phase.empty() && phase_label != chaos.phase) {
    return ChaosAction::kNone;
  }
  MutexLock lock(mu_);
  if (chaos_events_ >= chaos.max_events) return ChaosAction::kNone;
  const uint64_t draw = chaos_draws_++;
  if (to == chaos.partition_peer &&
      chaos_partition_drops_ < chaos.partition_sends) {
    ++chaos_partition_drops_;
    ++chaos_events_;
    return ChaosAction::kDrop;
  }
  const double u = UnitDouble(
      Mix64(chaos.seed ^ (uint64_t{0xc4a05} * (me_ + 1)) ^ (draw << 8) ^
            uint64_t(to)));
  double threshold = chaos.reset_probability;
  if (u < threshold) {
    ++chaos_events_;
    return ChaosAction::kReset;
  }
  threshold += chaos.partial_write_probability;
  if (u < threshold) {
    ++chaos_events_;
    return ChaosAction::kPartial;
  }
  threshold += chaos.stall_probability;
  if (u < threshold) {
    ++chaos_events_;
    return ChaosAction::kStall;
  }
  return ChaosAction::kNone;
}

Result<Transport::Payload> TcpTransport::Receive(size_t from, size_t to) {
  CheckParty(from, to);
  SQM_CHECK(to == me_);
  const Clock::time_point deadline =
      Clock::now() + Seconds(options_.receive_timeout_seconds);
  MutexLock lock(mu_);
  for (;;) {
    if (!inboxes_[from].empty()) {
      Payload payload = std::move(inboxes_[from].front());
      inboxes_[from].pop_front();
      return payload;
    }
    if (from != me_ && links_[from].state == LinkState::kDead) {
      return Status::Unavailable(
          "party " + std::to_string(from) +
          " crashed (tcp link dead, reconnect window exhausted)");
    }
    if (Clock::now() >= deadline) {
      RecordTimeout();
      return Status::DeadlineExceeded(
          "receive from party " + std::to_string(from) + " timed out after " +
          std::to_string(options_.receive_timeout_seconds) + " s");
    }
    const bool woken = recv_cv_.WaitUntil(mu_, deadline);
    (void)woken;  // Timeout and wake both re-run the checks above.
  }
}

bool TcpTransport::HasPending(size_t from, size_t to) const {
  CheckParty(from, to);
  if (to != me_) return false;
  MutexLock lock(mu_);
  return !inboxes_[from].empty();
}

size_t TcpTransport::Reset() {
  size_t dropped = 0;
  std::vector<ResetDrop> per_channel;
  {
    MutexLock lock(mu_);
    for (size_t from = 0; from < inboxes_.size(); ++from) {
      std::deque<Payload>& inbox = inboxes_[from];
      if (!inbox.empty()) {
        dropped += inbox.size();
        per_channel.push_back(ResetDrop{from, me_, inbox.size()});
        inbox.clear();
      }
    }
  }
  WarnDroppedOnReset("TcpTransport", dropped, per_channel);
  ResetAccounting();
  return dropped;
}

bool TcpTransport::PeerDead(size_t peer) const {
  MutexLock lock(mu_);
  return links_[peer].state == LinkState::kDead;
}

double TcpTransport::ReconnectWindowSeconds() const {
  // Sum of the dialer's backoff schedule plus one connect attempt's slack:
  // the accepting side waits this long before declaring the dialer dead,
  // and callers can use it to bound worst-case stall on a killed peer.
  double window = 1.0;
  for (size_t attempt = 0; attempt < options_.max_reconnect_attempts;
       ++attempt) {
    window += options_.reconnect_backoff_seconds *
              static_cast<double>(uint64_t{1} << attempt);
  }
  // Rejoin allowance: when a supervisor may respawn a killed party, the
  // window must additionally cover its restart backoff, process startup,
  // and listener rebinding — otherwise the restarted party's rejoin races
  // a deadline that was sized for mere socket hiccups and loses.
  window += options_.rejoin_window_seconds;
  return window;
}

void TcpTransport::Shutdown() {
  bool already = false;
  {
    MutexLock lock(mu_);
    already = shutting_down_;
    shutting_down_ = true;
    link_cv_.NotifyAll();
    recv_cv_.NotifyAll();
  }
  if (already) return;

  // Graceful goodbyes: peers that hear a kBye mark this party departed
  // instead of burning their reconnect budget on it.
  for (size_t peer = 0; peer < options_.peers.size(); ++peer) {
    if (peer == me_) continue;
    std::shared_ptr<Conn> conn;
    uint64_t seq = 0;
    {
      MutexLock lock(mu_);
      if (links_[peer].state != LinkState::kUp) continue;
      conn = links_[peer].conn;
      seq = ++links_[peer].send_seq;
    }
    if (conn == nullptr) continue;
    Frame bye;
    bye.type = FrameType::kBye;
    bye.from = static_cast<uint32_t>(me_);
    bye.to = static_cast<uint32_t>(peer);
    bye.incarnation = options_.incarnation;
    bye.seq = seq;
    bye.run_id = options_.run_id;
    const std::vector<uint8_t> wire = EncodeFrame(bye, options_.session_key);
    MutexLock write_lock(conn->write_mu);
    const Status sent = WriteAll(conn->sock, wire.data(), wire.size());
    (void)sent;  // A peer that is already gone cannot hear the goodbye.
  }

  // Wake blocked readers, then join everything. Sockets close when the
  // last shared_ptr reference (reader or link slot) releases.
  {
    MutexLock lock(mu_);
    for (Link& link : links_) {
      if (link.conn != nullptr) ShutdownBoth(link.conn->sock);
    }
  }
  for (std::thread& thread : threads_) {
    if (thread.joinable()) thread.join();
  }
  threads_.clear();
  {
    MutexLock lock(mu_);
    for (Link& link : links_) link.conn.reset();
  }
  listener_.Close();
}

}  // namespace net
}  // namespace sqm
