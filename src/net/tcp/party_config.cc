#include "net/tcp/party_config.h"

#include "core/json.h"

namespace sqm {
namespace net {
namespace {

Status MissingField(const std::string& key) {
  return Status::InvalidArgument("deployment config: missing field \"" +
                                 key + "\"");
}

Status WrongType(const std::string& key, const char* want) {
  return Status::InvalidArgument("deployment config: field \"" + key +
                                 "\" is not " + want);
}

/// Optional-field readers: absent keys keep the struct default, present
/// keys must have the right type. Exact integers use the parser's
/// uint_value so u64 seeds and session keys survive above 2^53.
Status ReadUint(const JsonValue& obj, const std::string& key,
                uint64_t* out) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr) return Status::OK();
  if (v->kind != JsonValue::Kind::kNumber || !v->is_integer ||
      v->is_negative) {
    return WrongType(key, "a non-negative integer");
  }
  *out = v->uint_value;
  return Status::OK();
}

Status ReadSize(const JsonValue& obj, const std::string& key, size_t* out) {
  uint64_t value = *out;
  SQM_RETURN_NOT_OK(ReadUint(obj, key, &value));
  *out = static_cast<size_t>(value);
  return Status::OK();
}

Status ReadDouble(const JsonValue& obj, const std::string& key,
                  double* out) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr) return Status::OK();
  if (v->kind != JsonValue::Kind::kNumber) return WrongType(key, "a number");
  *out = v->number;
  return Status::OK();
}

Status ReadBool(const JsonValue& obj, const std::string& key, bool* out) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr) return Status::OK();
  if (v->kind != JsonValue::Kind::kBool) return WrongType(key, "a boolean");
  *out = v->bool_value;
  return Status::OK();
}

Status ReadString(const JsonValue& obj, const std::string& key,
                  std::string* out) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr) return Status::OK();
  if (v->kind != JsonValue::Kind::kString) return WrongType(key, "a string");
  *out = v->string_value;
  return Status::OK();
}

}  // namespace

Result<DeploymentConfig> ParseDeploymentConfig(const std::string& json) {
  SQM_ASSIGN_OR_RETURN(const JsonValue root, ParseJson(json));
  if (root.kind != JsonValue::Kind::kObject) {
    return Status::InvalidArgument(
        "deployment config: document is not a JSON object");
  }
  DeploymentConfig config;

  const JsonValue* parties = root.Find("parties");
  if (parties == nullptr) return MissingField("parties");
  if (parties->kind != JsonValue::Kind::kArray) {
    return WrongType("parties", "an array");
  }
  for (const JsonValue& entry : parties->items) {
    if (entry.kind != JsonValue::Kind::kObject) {
      return WrongType("parties[]", "an object with host/port");
    }
    TcpPeer peer;
    SQM_RETURN_NOT_OK(ReadString(entry, "host", &peer.host));
    uint64_t port = peer.port;
    SQM_RETURN_NOT_OK(ReadUint(entry, "port", &port));
    if (port > 65535) {
      return Status::InvalidArgument(
          "deployment config: port " + std::to_string(port) +
          " out of range");
    }
    peer.port = static_cast<uint16_t>(port);
    config.parties.push_back(peer);
  }
  if (config.parties.size() < 2) {
    return Status::InvalidArgument(
        "deployment config: need at least 2 parties, got " +
        std::to_string(config.parties.size()));
  }

  SQM_RETURN_NOT_OK(ReadUint(root, "run_id", &config.run_id));
  SQM_RETURN_NOT_OK(ReadUint(root, "session_key", &config.session_key));
  SQM_RETURN_NOT_OK(ReadSize(root, "rows", &config.rows));
  SQM_RETURN_NOT_OK(ReadSize(root, "cols", &config.cols));
  SQM_RETURN_NOT_OK(ReadUint(root, "data_seed", &config.data_seed));
  SQM_RETURN_NOT_OK(ReadString(root, "polynomial", &config.polynomial));
  SQM_RETURN_NOT_OK(ReadDouble(root, "gamma", &config.gamma));
  SQM_RETURN_NOT_OK(ReadDouble(root, "mu", &config.mu));
  SQM_RETURN_NOT_OK(ReadUint(root, "seed", &config.seed));
  SQM_RETURN_NOT_OK(
      ReadString(root, "dropout_policy", &config.dropout_policy));
  SQM_RETURN_NOT_OK(ReadString(root, "mul_backend", &config.mul_backend));
  SQM_RETURN_NOT_OK(ReadDouble(root, "dp_delta", &config.dp_delta));
  SQM_RETURN_NOT_OK(ReadSize(root, "bgw_threshold", &config.bgw_threshold));
  SQM_RETURN_NOT_OK(
      ReadDouble(root, "record_norm_bound", &config.record_norm_bound));
  SQM_RETURN_NOT_OK(ReadDouble(root, "max_f_l2", &config.max_f_l2));
  SQM_RETURN_NOT_OK(
      ReadSize(root, "mpc_max_attempts", &config.mpc_max_attempts));
  SQM_RETURN_NOT_OK(ReadBool(root, "quantize_coefficients",
                             &config.quantize_coefficients));
  SQM_RETURN_NOT_OK(ReadBool(root, "check_capacity", &config.check_capacity));
  SQM_RETURN_NOT_OK(ReadDouble(root, "receive_timeout_seconds",
                               &config.receive_timeout_seconds));
  SQM_RETURN_NOT_OK(ReadDouble(root, "connect_timeout_seconds",
                               &config.connect_timeout_seconds));
  SQM_RETURN_NOT_OK(ReadSize(root, "max_reconnect_attempts",
                             &config.max_reconnect_attempts));
  SQM_RETURN_NOT_OK(ReadDouble(root, "reconnect_backoff_seconds",
                               &config.reconnect_backoff_seconds));
  SQM_RETURN_NOT_OK(ReadBool(root, "obs_enabled", &config.obs_enabled));
  SQM_RETURN_NOT_OK(
      ReadDouble(root, "telemetry_snapshot_interval_seconds",
                 &config.telemetry_snapshot_interval_seconds));
  SQM_RETURN_NOT_OK(ReadSize(root, "max_restarts", &config.max_restarts));
  SQM_RETURN_NOT_OK(ReadDouble(root, "restart_backoff_seconds",
                               &config.restart_backoff_seconds));
  SQM_RETURN_NOT_OK(ReadDouble(root, "recovery_deadline_seconds",
                               &config.recovery_deadline_seconds));
  SQM_RETURN_NOT_OK(ReadUint(root, "chaos_seed", &config.chaos_seed));
  SQM_RETURN_NOT_OK(ReadString(root, "chaos_phase", &config.chaos_phase));
  SQM_RETURN_NOT_OK(
      ReadSize(root, "chaos_max_events", &config.chaos_max_events));
  SQM_RETURN_NOT_OK(ReadDouble(root, "chaos_reset_probability",
                               &config.chaos_reset_probability));
  SQM_RETURN_NOT_OK(ReadDouble(root, "chaos_partial_write_probability",
                               &config.chaos_partial_write_probability));
  SQM_RETURN_NOT_OK(ReadDouble(root, "chaos_stall_probability",
                               &config.chaos_stall_probability));
  SQM_RETURN_NOT_OK(
      ReadDouble(root, "chaos_stall_seconds", &config.chaos_stall_seconds));
  SQM_RETURN_NOT_OK(
      ReadSize(root, "chaos_partition_peer", &config.chaos_partition_peer));
  SQM_RETURN_NOT_OK(ReadSize(root, "chaos_partition_sends",
                             &config.chaos_partition_sends));

  if (config.rows == 0) {
    return Status::InvalidArgument("deployment config: rows must be >= 1");
  }
  if (config.polynomial.empty()) {
    return Status::InvalidArgument(
        "deployment config: polynomial must be non-empty");
  }
  if (config.receive_timeout_seconds <= 0.0 ||
      config.connect_timeout_seconds <= 0.0 ||
      config.reconnect_backoff_seconds < 0.0) {
    return Status::InvalidArgument(
        "deployment config: timeouts must be positive "
        "(backoff may be zero)");
  }
  if (config.telemetry_snapshot_interval_seconds <= 0.0) {
    return Status::InvalidArgument(
        "deployment config: telemetry_snapshot_interval_seconds must be "
        "positive");
  }
  if (config.max_restarts > 0 && config.recovery_deadline_seconds <= 0.0) {
    return Status::InvalidArgument(
        "deployment config: max_restarts > 0 requires "
        "recovery_deadline_seconds > 0 (the resume-barrier budget every "
        "party waits for a restarted peer; without it survivors would "
        "degrade before the respawn can rejoin)");
  }
  if (config.mul_backend != "grr" && config.mul_backend != "beaver") {
    return Status::InvalidArgument(
        "deployment config: unknown mul_backend \"" + config.mul_backend +
        "\" (expected grr or beaver)");
  }
  if (config.mul_backend == "beaver" && config.max_restarts > 0) {
    return Status::InvalidArgument(
        "deployment config: mul_backend=beaver cannot be combined with "
        "supervised recovery (max_restarts > 0): the Beaver pool cursor "
        "is not part of the durable checkpoint");
  }
  if (config.restart_backoff_seconds < 0.0 ||
      config.recovery_deadline_seconds < 0.0) {
    return Status::InvalidArgument(
        "deployment config: restart_backoff_seconds and "
        "recovery_deadline_seconds must be non-negative");
  }
  const double probs[] = {config.chaos_reset_probability,
                          config.chaos_partial_write_probability,
                          config.chaos_stall_probability};
  for (double p : probs) {
    if (p < 0.0 || p > 1.0) {
      return Status::InvalidArgument(
          "deployment config: chaos probabilities must be in [0, 1]");
    }
  }
  if (config.chaos_stall_seconds < 0.0) {
    return Status::InvalidArgument(
        "deployment config: chaos_stall_seconds must be non-negative");
  }
  return config;
}

std::string DeploymentConfigToJson(const DeploymentConfig& config) {
  JsonWriter w;
  w.BeginObject();
  w.Field("run_id", config.run_id);
  w.Field("session_key", config.session_key);
  w.BeginArray("parties");
  for (const TcpPeer& peer : config.parties) {
    w.BeginObject();
    w.Field("host", peer.host);
    w.Field("port", static_cast<uint64_t>(peer.port));
    w.EndObject();
  }
  w.EndArray();
  w.Field("rows", static_cast<uint64_t>(config.rows));
  w.Field("cols", static_cast<uint64_t>(config.cols));
  w.Field("data_seed", config.data_seed);
  w.Field("polynomial", config.polynomial);
  w.Field("gamma", config.gamma);
  w.Field("mu", config.mu);
  w.Field("seed", config.seed);
  w.Field("dropout_policy", config.dropout_policy);
  w.Field("mul_backend", config.mul_backend);
  w.Field("dp_delta", config.dp_delta);
  w.Field("bgw_threshold", static_cast<uint64_t>(config.bgw_threshold));
  w.Field("record_norm_bound", config.record_norm_bound);
  w.Field("max_f_l2", config.max_f_l2);
  w.Field("mpc_max_attempts",
          static_cast<uint64_t>(config.mpc_max_attempts));
  w.Field("quantize_coefficients", config.quantize_coefficients);
  w.Field("check_capacity", config.check_capacity);
  w.Field("receive_timeout_seconds", config.receive_timeout_seconds);
  w.Field("connect_timeout_seconds", config.connect_timeout_seconds);
  w.Field("max_reconnect_attempts",
          static_cast<uint64_t>(config.max_reconnect_attempts));
  w.Field("reconnect_backoff_seconds", config.reconnect_backoff_seconds);
  w.Field("obs_enabled", config.obs_enabled);
  w.Field("telemetry_snapshot_interval_seconds",
          config.telemetry_snapshot_interval_seconds);
  w.Field("max_restarts", static_cast<uint64_t>(config.max_restarts));
  w.Field("restart_backoff_seconds", config.restart_backoff_seconds);
  w.Field("recovery_deadline_seconds", config.recovery_deadline_seconds);
  w.Field("chaos_seed", config.chaos_seed);
  w.Field("chaos_phase", config.chaos_phase);
  w.Field("chaos_max_events",
          static_cast<uint64_t>(config.chaos_max_events));
  w.Field("chaos_reset_probability", config.chaos_reset_probability);
  w.Field("chaos_partial_write_probability",
          config.chaos_partial_write_probability);
  w.Field("chaos_stall_probability", config.chaos_stall_probability);
  w.Field("chaos_stall_seconds", config.chaos_stall_seconds);
  w.Field("chaos_partition_peer",
          static_cast<uint64_t>(config.chaos_partition_peer));
  w.Field("chaos_partition_sends",
          static_cast<uint64_t>(config.chaos_partition_sends));
  w.EndObject();
  return w.str();
}

TcpTransportOptions TcpOptionsFromDeployment(const DeploymentConfig& config,
                                             size_t local_party,
                                             int listen_fd,
                                             uint32_t incarnation) {
  TcpTransportOptions options;
  options.local_party = local_party;
  options.peers = config.parties;
  options.session_key = config.session_key;
  options.run_id = config.run_id;
  options.receive_timeout_seconds = config.receive_timeout_seconds;
  options.connect_timeout_seconds = config.connect_timeout_seconds;
  options.max_reconnect_attempts = config.max_reconnect_attempts;
  options.reconnect_backoff_seconds = config.reconnect_backoff_seconds;
  options.listen_fd = listen_fd;
  options.incarnation = incarnation;
  options.jitter_seed = config.seed ^ config.run_id;
  if (config.max_restarts > 0) {
    // Per restart the supervisor sleeps its backoff, then the respawned
    // process must load its checkpoint, rebind the listener, and complete
    // the mesh handshakes; 2 s of slack per restart covers that startup
    // on a loaded CI host. Every peer extends its reconnect window by
    // this allowance so a legitimate rejoin never races the window.
    options.rejoin_window_seconds =
        static_cast<double>(config.max_restarts) *
        (config.restart_backoff_seconds + 2.0);
  }
  options.chaos.seed = config.chaos_seed;
  options.chaos.phase = config.chaos_phase;
  options.chaos.max_events = config.chaos_max_events;
  options.chaos.reset_probability = config.chaos_reset_probability;
  options.chaos.partial_write_probability =
      config.chaos_partial_write_probability;
  options.chaos.stall_probability = config.chaos_stall_probability;
  options.chaos.stall_seconds = config.chaos_stall_seconds;
  options.chaos.partition_peer = config.chaos_partition_peer;
  options.chaos.partition_sends = config.chaos_partition_sends;
  return options;
}

}  // namespace net
}  // namespace sqm
