#include "net/tcp/socket.h"

#include <cerrno>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#define SQM_HAVE_POSIX_SOCKETS 1
#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>
#else
#define SQM_HAVE_POSIX_SOCKETS 0
#endif

namespace sqm::net {

namespace {

std::string ErrnoMessage(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

#if SQM_HAVE_POSIX_SOCKETS
int MillisUntil(std::chrono::steady_clock::time_point deadline) {
  const auto now = std::chrono::steady_clock::now();
  if (deadline <= now) return 0;
  const auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
          .count();
  // Poll in bounded slices so a deadline far in the future still reacts to
  // a concurrent ShutdownBoth within one slice.
  return ms > 200 ? 200 : static_cast<int>(ms);
}
#endif

}  // namespace

Socket::~Socket() { Close(); }

Socket::Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

int Socket::Release() {
  const int fd = fd_;
  fd_ = -1;
  return fd;
}

void Socket::Close() {
#if SQM_HAVE_POSIX_SOCKETS
  if (fd_ >= 0) {
    // EINTR on close is unrecoverable by retry (the fd state is
    // unspecified); record nothing and move on.
    const int rc = ::close(fd_);
    (void)rc;
    fd_ = -1;
  }
#else
  fd_ = -1;
#endif
}

bool TcpSupported() { return SQM_HAVE_POSIX_SOCKETS != 0; }

#if SQM_HAVE_POSIX_SOCKETS

Result<Socket> ListenOn(const std::string& host, uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IoError(ErrnoMessage("socket"));
  Socket sock(fd);

  const int one = 1;
  if (::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) != 0) {
    return Status::IoError(ErrnoMessage("setsockopt(SO_REUSEADDR)"));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not a numeric IPv4 address: " + host);
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Status::IoError(ErrnoMessage(("bind " + host).c_str()));
  }
  if (::listen(fd, 64) != 0) {
    return Status::IoError(ErrnoMessage("listen"));
  }
  return sock;
}

Result<uint16_t> LocalPort(const Socket& socket) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(socket.fd(), reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    return Status::IoError(ErrnoMessage("getsockname"));
  }
  return static_cast<uint16_t>(ntohs(addr.sin_port));
}

Result<Socket> AcceptWithDeadline(
    const Socket& listener, std::chrono::steady_clock::time_point deadline) {
  for (;;) {
    pollfd pfd{listener.fd(), POLLIN, 0};
    const int ready = ::poll(&pfd, 1, MillisUntil(deadline));
    if (ready < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(ErrnoMessage("poll(accept)"));
    }
    if (ready > 0) {
      if ((pfd.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0) {
        return Status::Unavailable("listener socket closed");
      }
      const int fd = ::accept(listener.fd(), nullptr, nullptr);
      if (fd < 0) {
        if (errno == EINTR || errno == ECONNABORTED || errno == EAGAIN ||
            errno == EWOULDBLOCK) {
          continue;
        }
        return Status::IoError(ErrnoMessage("accept"));
      }
      Socket sock(fd);
      const int one = 1;
      if (::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) !=
          0) {
        return Status::IoError(ErrnoMessage("setsockopt(TCP_NODELAY)"));
      }
      return sock;
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      return Status::DeadlineExceeded("accept timed out");
    }
  }
}

Result<Socket> ConnectTo(const std::string& host, uint16_t port,
                         std::chrono::steady_clock::time_point deadline) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IoError(ErrnoMessage("socket"));
  Socket sock(fd);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not a numeric IPv4 address: " + host);
  }
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    return Status::IoError(ErrnoMessage("fcntl(O_NONBLOCK)"));
  }
  const int rc =
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    if (errno == ECONNREFUSED) {
      return Status::Unavailable("connection refused by " + host + ":" +
                                 std::to_string(port));
    }
    return Status::IoError(ErrnoMessage("connect"));
  }
  if (rc != 0) {
    // Await writability = connect completion (or failure via SO_ERROR).
    for (;;) {
      pollfd pfd{fd, POLLOUT, 0};
      const int ready = ::poll(&pfd, 1, MillisUntil(deadline));
      if (ready < 0) {
        if (errno == EINTR) continue;
        return Status::IoError(ErrnoMessage("poll(connect)"));
      }
      if (ready > 0) break;
      if (std::chrono::steady_clock::now() >= deadline) {
        return Status::DeadlineExceeded("connect to " + host + ":" +
                                        std::to_string(port) + " timed out");
      }
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0) {
      return Status::IoError(ErrnoMessage("getsockopt(SO_ERROR)"));
    }
    if (err != 0) {
      if (err == ECONNREFUSED) {
        return Status::Unavailable("connection refused by " + host + ":" +
                                   std::to_string(port));
      }
      return Status::IoError(std::string("connect: ") + std::strerror(err));
    }
  }
  if (::fcntl(fd, F_SETFL, flags) != 0) {
    return Status::IoError(ErrnoMessage("fcntl(restore flags)"));
  }
  const int one = 1;
  if (::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) != 0) {
    return Status::IoError(ErrnoMessage("setsockopt(TCP_NODELAY)"));
  }
  return sock;
}

Status WriteAll(const Socket& socket, const uint8_t* data, size_t len) {
  size_t sent = 0;
  while (sent < len) {
#if defined(MSG_NOSIGNAL)
    const ssize_t n =
        ::send(socket.fd(), data + sent, len - sent, MSG_NOSIGNAL);
#else
    const ssize_t n = ::send(socket.fd(), data + sent, len - sent, 0);
#endif
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EPIPE || errno == ECONNRESET || errno == ENOTCONN) {
        return Status::Unavailable(ErrnoMessage("send: peer gone"));
      }
      return Status::IoError(ErrnoMessage("send"));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status ReadFull(const Socket& socket, uint8_t* data, size_t len,
                size_t* got) {
  while (*got < len) {
    const ssize_t n = ::recv(socket.fd(), data + *got, len - *got, 0);
    if (n == 0) {
      return Status::Unavailable("recv: connection closed by peer");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::DeadlineExceeded("recv timed out");
      }
      if (errno == ECONNRESET || errno == ENOTCONN || errno == EBADF) {
        return Status::Unavailable(ErrnoMessage("recv: peer gone"));
      }
      return Status::IoError(ErrnoMessage("recv"));
    }
    *got += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status ReadAll(const Socket& socket, uint8_t* data, size_t len) {
  size_t got = 0;
  return ReadFull(socket, data, len, &got);
}

Status SetRecvTimeout(const Socket& socket, double seconds) {
  timeval tv{};
  if (seconds > 0.0) {
    tv.tv_sec = static_cast<time_t>(seconds);
    tv.tv_usec = static_cast<suseconds_t>((seconds - static_cast<double>(
                                              tv.tv_sec)) * 1e6);
  }
  if (::setsockopt(socket.fd(), SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) !=
      0) {
    return Status::IoError(ErrnoMessage("setsockopt(SO_RCVTIMEO)"));
  }
  return Status::OK();
}

void ShutdownBoth(const Socket& socket) {
  if (socket.valid()) {
    // ENOTCONN here is routine (peer already gone); nothing to recover.
    const int rc = ::shutdown(socket.fd(), SHUT_RDWR);
    (void)rc;
  }
}

Status SetCloseOnExec(const Socket& socket, bool enabled) {
  const int flags = ::fcntl(socket.fd(), F_GETFD, 0);
  if (flags < 0) return Status::IoError(ErrnoMessage("fcntl(F_GETFD)"));
  const int updated = enabled ? (flags | FD_CLOEXEC) : (flags & ~FD_CLOEXEC);
  if (::fcntl(socket.fd(), F_SETFD, updated) != 0) {
    return Status::IoError(ErrnoMessage("fcntl(F_SETFD)"));
  }
  return Status::OK();
}

#else  // !SQM_HAVE_POSIX_SOCKETS

namespace {
Status NoSockets() {
  return Status::Unimplemented(
      "TCP transport requires POSIX sockets on this platform");
}
}  // namespace

Result<Socket> ListenOn(const std::string&, uint16_t) { return NoSockets(); }
Result<uint16_t> LocalPort(const Socket&) { return NoSockets(); }
Result<Socket> AcceptWithDeadline(const Socket&,
                                  std::chrono::steady_clock::time_point) {
  return NoSockets();
}
Result<Socket> ConnectTo(const std::string&, uint16_t,
                         std::chrono::steady_clock::time_point) {
  return NoSockets();
}
Status WriteAll(const Socket&, const uint8_t*, size_t) { return NoSockets(); }
Status ReadAll(const Socket&, uint8_t*, size_t) { return NoSockets(); }
Status ReadFull(const Socket&, uint8_t*, size_t, size_t*) {
  return NoSockets();
}
Status SetRecvTimeout(const Socket&, double) { return NoSockets(); }
Status SetCloseOnExec(const Socket&, bool) { return NoSockets(); }
void ShutdownBoth(const Socket&) {}

#endif  // SQM_HAVE_POSIX_SOCKETS

}  // namespace sqm::net
