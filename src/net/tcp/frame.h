#ifndef SQM_NET_TCP_FRAME_H_
#define SQM_NET_TCP_FRAME_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/status.h"

namespace sqm::net {

/// Wire protocol version carried in every frame header. Receivers reject
/// frames with a different version outright (kIntegrityViolation): a mixed
/// deployment must be upgraded atomically, not limped through.
/// Version 2 added the u32 incarnation field (party restart generation).
/// Version 3 added the optional trace-context block (flags bit 0) and the
/// telemetry frame kinds (5-7) used on the coordinator control stream.
inline constexpr uint16_t kTcpWireVersion = 3;

/// Flags bit 0: the 16-byte trace-context block (u64 trace_id, u64
/// span_id) is present between run_id and phase_len. Observability-only:
/// with the obs kill switch off the bit is never set and the wire carries
/// no context. All other flag bits must be zero (kIntegrityViolation).
inline constexpr uint8_t kFrameFlagTraceContext = 0x01;

/// Frame kinds exchanged on a TcpTransport link.
enum class FrameType : uint8_t {
  /// Connection opener, dialer -> acceptor: identifies the sending party
  /// and proves knowledge of the session key (the MAC covers run_id).
  kHello = 1,
  /// Acceptor -> dialer answer to a verified kHello.
  kHelloAck = 2,
  /// A protocol payload: one Transport::Send on the (from -> to) channel.
  kData = 3,
  /// Graceful goodbye: the peer finished its run and is closing. Receivers
  /// mark the link cleanly departed instead of starting reconnect attempts.
  kBye = 4,
  /// Telemetry stream opener, party -> coordinator: `from` is the party,
  /// `incarnation` its restart generation. Telemetry frames never appear
  /// on party-to-party links (the data ReadLoop rejects them).
  kTelemetryHello = 5,
  /// Clock-offset probe. Coordinator -> party: payload [t_c0] (coordinator
  /// send time, micros). Party -> coordinator echo: payload [t_c0, t_p]
  /// (the party's receive time on its own clock). The coordinator stamps
  /// t_c1 at echo receipt and estimates offset = (t_c0 + t_c1)/2 - t_p.
  kTelemetryClock = 6,
  /// Periodic party -> coordinator state snapshot. The payload packs a
  /// JSON document as [byte_len, ceil(len/8) * u64 words]; see
  /// docs/OBSERVABILITY.md for the schema (phase, metrics registry,
  /// transport totals, flight-recorder ring).
  kTelemetrySnapshot = 7,
};

/// One decoded frame. The length prefix (u32, little-endian, counting the
/// bytes that follow it) is handled by the socket layer; everything after
/// it is this struct. Layout, little-endian:
///
///   u16 version | u8 type | u8 flags | u32 from | u32 to |
///   u32 incarnation | u64 seq | u64 run_id |
///   [u64 trace_id | u64 span_id]   (present iff flags & kFrameFlagTraceContext)
///   u16 phase_len | phase bytes | u32 count | count * u64 payload | u64 mac
///
/// The MAC is SipHash-2-4 keyed from the shared session key over every
/// byte before it (version through payload), giving TLS-less channel
/// authentication: a peer that does not know the session key cannot forge
/// or splice frames. It is not encryption — payloads are cleartext shares,
/// which is acceptable on a trusted network segment and explicitly
/// documented in docs/DEPLOYMENT.md as the pre-TLS posture.
struct Frame {
  FrameType type = FrameType::kData;
  uint32_t from = 0;
  uint32_t to = 0;
  /// The sender's restart generation under this run_id: 0 for a party's
  /// first process, +1 per supervisor respawn. Handshakes carry it so a
  /// rejoining party resets its peers' replay state; data frames carry it
  /// so a frame captured before a crash (old incarnation, old seq space)
  /// can never be replayed into the new link.
  uint32_t incarnation = 0;
  /// Per-(link, direction) send counter; receivers require it to be
  /// strictly increasing, which rejects replayed or re-ordered frames.
  uint64_t seq = 0;
  /// Run identifier from the deployment config; frames from another run
  /// (a stale daemon, a crossed port) fail verification.
  uint64_t run_id = 0;
  /// Optional trace context (flags bit kFrameFlagTraceContext): the
  /// sender's trace id and the span id of the `net.send` span that emitted
  /// this frame, letting the receiver link its `net.recv` span causally
  /// across processes. Under the MAC like every other header field.
  bool has_trace = false;
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  /// Transport phase label at send time ("input", "mul", "census", ...).
  std::string phase;
  std::vector<uint64_t> payload;
};

/// Hard cap on payload elements per frame (32 MiB of payload). DecodeFrame
/// rejects larger counts before allocating, so a corrupt or hostile length
/// field cannot drive an allocation bomb.
inline constexpr size_t kMaxFrameElements = size_t{1} << 22;

/// Upper bound on the encoded byte size of a frame with `elements` payload
/// words (header + phase + MAC + length prefix slack).
size_t MaxEncodedFrameBytes(size_t elements);

/// SipHash-2-4 of `data` under the 128-bit key (k0, k1). Public-domain
/// construction (Aumasson–Bernstein); used as the frame MAC PRF.
uint64_t SipHash24(uint64_t k0, uint64_t k1, const uint8_t* data, size_t len);

/// Derives the two SipHash key words from the shared session key.
void DeriveMacKey(uint64_t session_key, uint64_t* k0, uint64_t* k1);

/// Serializes `frame` (including the leading u32 length prefix) and
/// appends the MAC computed under `session_key`.
std::vector<uint8_t> EncodeFrame(const Frame& frame, uint64_t session_key);

/// Parses and verifies one frame body (`len` bytes after the length
/// prefix). Fails with kIntegrityViolation on version mismatch, truncated
/// layout, oversized payload counts, or a MAC that does not verify under
/// `session_key`.
Result<Frame> DecodeFrame(const uint8_t* body, size_t len,
                          uint64_t session_key);

}  // namespace sqm::net

#endif  // SQM_NET_TCP_FRAME_H_
