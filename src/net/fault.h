#ifndef SQM_NET_FAULT_H_
#define SQM_NET_FAULT_H_

#include <cstdint>
#include <limits>
#include <tuple>
#include <vector>

#include "core/sync.h"
#include "sampling/rng.h"

namespace sqm {

/// Fault model for one directed link.
struct LinkFaults {
  /// Probability a sent message is lost in transit (recoverable by the
  /// transport's retry/retransmission path).
  double drop_probability = 0.0;
  /// Probability a message jumps ahead of the ones already queued on its
  /// channel (models IP-style reordering).
  double reorder_probability = 0.0;
  /// Mean of an exponential extra delivery delay in seconds; 0 disables.
  double delay_mean_seconds = 0.0;

  bool any() const {
    return drop_probability > 0.0 || reorder_probability > 0.0 ||
           delay_mean_seconds > 0.0;
  }
};

/// One scheduled party crash: `party` stops sending once `after_rounds`
/// communication rounds have completed. after_rounds = 0 means the party
/// never sends at all. A crashed party's sends are silently swallowed — no
/// retransmission possible.
struct CrashEvent {
  size_t party = 0;
  uint64_t after_rounds = 0;
};

/// Fault-injection configuration for a ThreadedTransport: a default fault
/// model for every link, per-link overrides, and any number of scheduled
/// party crashes. LockstepTransport honors the crash schedule too (via
/// ScheduleCrashes); the probabilistic link faults are threaded-only.
struct FaultOptions {
  static constexpr size_t kNoCrash = std::numeric_limits<size_t>::max();

  /// Applied to every cross-party link unless overridden below.
  LinkFaults all_links;
  /// (from, to, faults) overrides for specific directed links.
  std::vector<std::tuple<size_t, size_t, LinkFaults>> per_link;

  /// Scheduled crashes; multiple parties may crash, at different rounds
  /// (the quorum boundary n - d = 2t+1 vs 2t is exercised exactly this
  /// way). A party listed twice crashes at the earliest of its rounds.
  std::vector<CrashEvent> crashes;

  /// Legacy single-crash fields, kept so existing configurations keep
  /// working; merged into `crashes` by FaultInjector. Prefer `crashes`.
  size_t crash_party = kNoCrash;
  uint64_t crash_after_rounds = 0;

  /// Drives every fault decision; same seed -> same fault schedule.
  uint64_t seed = 0x5eed;

  bool any() const;

  /// The crash schedule with the legacy fields folded in (deduplicated per
  /// party, keeping the earliest round).
  std::vector<CrashEvent> EffectiveCrashes() const;
};

/// Deterministic per-link fault oracle. Each directed link owns an
/// independent RNG stream split from the seed, so adding faults to one link
/// does not perturb the schedule of another. Thread-safe.
class FaultInjector {
 public:
  FaultInjector(size_t num_parties, FaultOptions options);

  /// What happens to one message sent on (from -> to).
  struct SendFate {
    bool drop = false;
    bool reorder = false;
    double delay_seconds = 0.0;
  };

  /// Draws the fate of the next message on the link. `from == to` is never
  /// faulted (a party cannot lose its own memory).
  SendFate OnSend(size_t from, size_t to);

  /// True if `party` has crashed by the time `completed_rounds` rounds have
  /// finished.
  bool HasCrashed(size_t party, uint64_t completed_rounds) const;

  const FaultOptions& options() const { return options_; }
  const std::vector<CrashEvent>& crashes() const { return crashes_; }

 private:
  size_t num_parties_;
  FaultOptions options_;
  std::vector<CrashEvent> crashes_;      // Effective (merged) schedule.
  std::vector<LinkFaults> link_faults_;  // n*n resolved, row-major.
  mutable Mutex mu_;
  /// n*n independent streams; drawing from a stream mutates it, so every
  /// access goes through mu_.
  std::vector<Rng> link_rngs_ SQM_GUARDED_BY(mu_);
};

}  // namespace sqm

#endif  // SQM_NET_FAULT_H_
