#ifndef SQM_NET_TRANSPORT_H_
#define SQM_NET_TRANSPORT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "core/status.h"
#include "core/sync.h"
#include "net/stats.h"

namespace sqm {

/// Which Transport implementation a pipeline should construct.
enum class TransportMode {
  /// Deterministic single-threaded queues, seed `SimulatedNetwork`
  /// semantics: Receive hard-fails when no message is pending.
  kLockstep,
  /// Thread-safe bounded mailboxes with blocking receives, timeouts,
  /// retry/backoff and optional fault injection (src/net/threaded.h).
  kThreaded,
};

/// Wire-level message hook: sees (and may rewrite) every cross-party
/// message at the instant it enters the wire, before fault injection and
/// traffic accounting. This is the seam the adversarial conformance
/// harness (src/testing/) attaches to — a ByzantineInterceptor tampers
/// payloads, a TranscriptRecorder captures them — without the protocol
/// layer knowing an observer exists.
///
/// Self-sends (from == to) model a party's own memory and are never
/// presented to the interceptor: a wire adversary cannot touch them.
/// Implementations must be thread-safe when attached to a
/// ThreadedTransport (concurrent senders call OnSend concurrently).
class MessageInterceptor {
 public:
  virtual ~MessageInterceptor() = default;

  /// Everything the wire knows about one message at send time.
  struct WireContext {
    size_t from = 0;
    size_t to = 0;
    uint64_t round = 0;  ///< Communication rounds completed at send time.
    std::string phase;   ///< Transport phase label ("input", "mul", ...).
  };

  /// What the interceptor decided for this message. The (possibly
  /// mutated) payload is delivered unless `swallow` is set; `replays`
  /// are extra copies enqueued right behind it (message duplication).
  struct SendVerdict {
    bool swallow = false;
    std::vector<std::vector<uint64_t>> replays;
  };

  /// Called once per cross-party Send. May mutate `payload` in place.
  virtual SendVerdict OnSend(const WireContext& context,
                             std::vector<uint64_t>& payload) = 0;
};

/// Abstract pairwise message transport between `num_parties` parties.
///
/// This is the seam between protocol logic (BgwProtocol, SecAgg, the SQM
/// pipeline) and the execution model. The same protocol code runs over
///  - LockstepTransport: the paper's single-machine simulation — queues in
///    program order, a simulated clock advancing per round,
///  - ThreadedTransport: concurrent parties, lossy/delayed links, blocking
///    receives with retry — the stepping stone to a real socket backend.
///
/// Accounting is uniform across implementations: global totals
/// (NetworkStats), per-directed-channel counters, and per-phase counters
/// keyed by the label set via SetPhase. All accounting methods are
/// thread-safe; Send/Receive thread-safety is implementation-defined
/// (lock-step is single-threaded only).
class Transport {
 public:
  using Payload = std::vector<uint64_t>;

  /// `element_wire_bytes` is the serialized width of one payload element on
  /// the wire (for the 61-bit field, Field::kWireBytes), used for byte
  /// accounting.
  Transport(size_t num_parties, double per_round_latency_seconds,
            size_t element_wire_bytes);
  virtual ~Transport();

  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  size_t num_parties() const { return num_parties_; }
  double per_round_latency() const { return per_round_latency_; }
  size_t element_wire_bytes() const { return element_wire_bytes_; }

  /// Enqueues `payload` on the (from -> to) channel. Self-sends are allowed
  /// (parties keep their own sub-shares) and are delivered, but count in no
  /// traffic statistic — see the convention in net/stats.h.
  virtual void Send(size_t from, size_t to, Payload payload) = 0;

  /// Takes the oldest deliverable message on (from -> to). Lock-step
  /// implementations fail immediately when nothing is pending; threaded
  /// implementations block up to their configured timeout and may retry.
  virtual Result<Payload> Receive(size_t from, size_t to) = 0;

  /// True if a message is ready for delivery on (from -> to).
  virtual bool HasPending(size_t from, size_t to) const = 0;

  /// Marks the end of a synchronous round: advances the simulated clock and
  /// the round counter. In threaded per-party execution use a round barrier
  /// (ThreadedTransport::ArriveRound) instead of calling this from every
  /// party.
  virtual void EndRound();

  /// Drops undelivered messages and zeroes all counters; returns how many
  /// messages were dropped (logging a warning when nonzero). The dropped
  /// count uniformly includes every undelivered message — queued entries
  /// plus any retransmission buffers — across implementations, and the
  /// drain + counter reset is atomic with respect to concurrent senders:
  /// a message is either counted in pre-reset traffic and dropped, or
  /// lands after the reset with fresh accounting, never half of each.
  virtual size_t Reset() = 0;

  /// Simulated communication time so far (rounds * per-round latency).
  double SimulatedSeconds() const;

  /// Snapshot of the global traffic totals (thread-safe copy).
  NetworkStats stats() const;

  /// Full accounting snapshot: totals, per-channel, per-phase, fault and
  /// reliability counters, simulated and wall clocks.
  TransportStats Snapshot() const;

  /// Labels subsequent traffic with `phase` in the per-phase breakdown
  /// (e.g. "input", "mul", "open"). Empty string = unattributed.
  void SetPhase(const std::string& phase);
  std::string phase() const;

  /// Installs a wire interceptor (non-owning; nullptr detaches). The
  /// interceptor must outlive the transport while attached. Interceptors
  /// see every cross-party message before fault injection and accounting;
  /// see MessageInterceptor for the contract.
  void SetInterceptor(MessageInterceptor* interceptor);
  MessageInterceptor* interceptor() const;

  /// Whether this transport mirrors its accounting into the global
  /// obs::Registry ("net.send.*", "net.fault.*", ... — on by default).
  /// Scratch transports (e.g. the SQM driver's noise-injection timing
  /// probe) turn this off so the registry's traffic counters stay exactly
  /// reconcilable with the main transport's TransportStats.
  void set_registry_accounting(bool on) {
    registry_accounting_.store(on, std::memory_order_relaxed);
  }
  bool registry_accounting() const {
    return registry_accounting_.load(std::memory_order_relaxed);
  }

 protected:
  /// Bounds-check helper: aborts on an out-of-range party index.
  void CheckParty(size_t from, size_t to) const;

  size_t ChannelIndex(size_t from, size_t to) const {
    return from * num_parties_ + to;
  }

  // Thread-safe accounting hooks for implementations. Cross-party only;
  // callers skip self-sends.
  void RecordSend(size_t from, size_t to, size_t elements);
  void RecordRound();
  void RecordDrop();
  void RecordDelay();
  void RecordReorder();
  void RecordTimeout();
  void RecordRetry();
  void RecordCrashLoss();

  /// Zeroes every counter and phase (used by Reset implementations).
  void ResetAccounting();

  /// One undelivered-message tally found by a Reset, attributed to its
  /// channel so recovery debugging can tell a partition (one peer's
  /// channels piled up) from a crash (every channel piled up).
  struct ResetDrop {
    size_t from = 0;
    size_t to = 0;
    size_t count = 0;
  };

  /// Emits the single coalesced warning for a Reset that found undelivered
  /// messages: one summary line with the total message count, a per-peer
  /// breakdown (`from->to:count` for every affected channel), and (from
  /// the second occurrence on) the cumulative total across this
  /// transport's lifetime — never one line per channel, so reconnect loops
  /// that Reset repeatedly cannot flood the log. No-op when `dropped` is
  /// zero. The lifetime totals survive ResetAccounting.
  void WarnDroppedOnReset(const char* transport_name, size_t dropped,
                          const std::vector<ResetDrop>& per_channel);

  /// Runs the attached interceptor (if any) on one outgoing message and
  /// returns the payloads to actually enqueue: usually {payload}; empty
  /// when the interceptor swallowed it; more than one when it requested
  /// replays. Self-sends bypass the interceptor. Implementations call
  /// this from Send, then enqueue (and account) each returned payload as
  /// if it were an independently sent message.
  std::vector<Payload> InterceptSend(size_t from, size_t to,
                                     Payload payload);

 private:
  /// Adds to the "net.*" registry counter `name` iff observability is on
  /// and this transport participates in registry accounting.
  void MirrorToRegistry(const char* name, uint64_t n);

  const size_t num_parties_;
  const double per_round_latency_;
  const size_t element_wire_bytes_;
  const std::chrono::steady_clock::time_point start_;
  std::atomic<bool> registry_accounting_{true};

  mutable Mutex mu_;
  MessageInterceptor* interceptor_ SQM_GUARDED_BY(mu_) = nullptr;
  NetworkStats totals_ SQM_GUARDED_BY(mu_);
  // n*n, row-major (from, to).
  std::vector<ChannelStats> channels_ SQM_GUARDED_BY(mu_);
  // First-use order.
  std::vector<PhaseStats> phases_ SQM_GUARDED_BY(mu_);
  // Index into phases_.
  size_t current_phase_ SQM_GUARDED_BY(mu_) = 0;
  uint64_t drops_ SQM_GUARDED_BY(mu_) = 0;
  uint64_t delays_ SQM_GUARDED_BY(mu_) = 0;
  uint64_t reorders_ SQM_GUARDED_BY(mu_) = 0;
  uint64_t timeouts_ SQM_GUARDED_BY(mu_) = 0;
  uint64_t retries_ SQM_GUARDED_BY(mu_) = 0;
  uint64_t crash_losses_ SQM_GUARDED_BY(mu_) = 0;
  // Lifetime Reset-drop telemetry (deliberately not zeroed by
  // ResetAccounting — it summarizes across resets).
  uint64_t reset_warnings_ SQM_GUARDED_BY(mu_) = 0;
  uint64_t reset_dropped_total_ SQM_GUARDED_BY(mu_) = 0;
};

/// RAII phase label: sets the transport's phase on construction and
/// restores the previous label on destruction. Tolerates a null transport
/// so protocol code can run without accounting.
class PhaseScope {
 public:
  PhaseScope(Transport* transport, const std::string& phase);
  ~PhaseScope();

  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  Transport* transport_;
  std::string previous_;
};

}  // namespace sqm

#endif  // SQM_NET_TRANSPORT_H_
