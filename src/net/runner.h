#ifndef SQM_NET_RUNNER_H_
#define SQM_NET_RUNNER_H_

#include <functional>

#include "core/status.h"

namespace sqm {

/// Runs one body per party, each on its own thread, and joins them all —
/// the per-party execution harness for ThreadedTransport. The body receives
/// the party index; it typically loops over rounds, calling Send/Receive on
/// a shared ThreadedTransport and ThreadedTransport::ArriveRound at each
/// round boundary.
///
/// Run returns OK when every party returned OK, else the first failing
/// party's status annotated with its index. All threads are always joined
/// before Run returns, even on failure, so the transport can be torn down
/// safely afterwards.
class PartyRunner {
 public:
  explicit PartyRunner(size_t num_parties);

  Status Run(const std::function<Status(size_t party)>& body) const;

  size_t num_parties() const { return num_parties_; }

 private:
  size_t num_parties_;
};

}  // namespace sqm

#endif  // SQM_NET_RUNNER_H_
