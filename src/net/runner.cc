#include "net/runner.h"

#include <thread>
#include <vector>

#include "core/logging.h"
#include "obs/trace.h"

namespace sqm {

PartyRunner::PartyRunner(size_t num_parties) : num_parties_(num_parties) {
  SQM_CHECK(num_parties >= 1);
}

Status PartyRunner::Run(
    const std::function<Status(size_t party)>& body) const {
  std::vector<Status> statuses(num_parties_);
  std::vector<std::thread> threads;
  threads.reserve(num_parties_);
  if (obs::Enabled()) {
    for (size_t party = 0; party < num_parties_; ++party) {
      obs::Tracer::Global().SetTrackName(static_cast<int32_t>(party),
                                         "party " + std::to_string(party));
    }
  }
  for (size_t party = 0; party < num_parties_; ++party) {
    threads.emplace_back([&body, &statuses, party] {
      // Each party thread claims its own trace track so per-party spans
      // render as separate rows in Perfetto.
      obs::TrackScope track(static_cast<int32_t>(party));
      obs::Span span("party.run", "net");
      span.AddArg("party", static_cast<int64_t>(party));
      statuses[party] = body(party);
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (size_t party = 0; party < num_parties_; ++party) {
    if (!statuses[party].ok()) {
      return Status(statuses[party].code(),
                    "party " + std::to_string(party) + ": " +
                        statuses[party].message());
    }
  }
  return Status::OK();
}

}  // namespace sqm
