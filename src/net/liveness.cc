#include "net/liveness.h"

#include "core/logging.h"

namespace sqm {

const char* PartyLivenessToString(PartyLiveness state) {
  switch (state) {
    case PartyLiveness::kAlive:
      return "alive";
    case PartyLiveness::kSuspected:
      return "suspected";
    case PartyLiveness::kDead:
      return "dead";
  }
  return "unknown";
}

LivenessTracker::LivenessTracker(size_t num_parties, LivenessOptions options)
    : options_(options), num_parties_(num_parties), states_(num_parties) {
  SQM_CHECK(num_parties >= 1);
  SQM_CHECK(options_.suspect_after >= 1);
  SQM_CHECK(options_.dead_after >= options_.suspect_after);
}

PartyLiveness LivenessTracker::state(size_t party) const {
  SQM_CHECK(party < num_parties_);
  MutexLock lock(mu_);
  return states_[party].liveness;
}

bool LivenessTracker::IsDead(size_t party) const {
  return state(party) == PartyLiveness::kDead;
}

void LivenessTracker::RecordFailure(size_t party, StatusCode code) {
  SQM_CHECK(party < num_parties_);
  MutexLock lock(mu_);
  State& s = states_[party];
  if (s.liveness == PartyLiveness::kDead) return;
  if (code == StatusCode::kUnavailable) {
    s.liveness = PartyLiveness::kDead;
    return;
  }
  ++s.consecutive_failures;
  if (s.consecutive_failures >= options_.dead_after) {
    s.liveness = PartyLiveness::kDead;
  } else if (s.consecutive_failures >= options_.suspect_after) {
    s.liveness = PartyLiveness::kSuspected;
  }
}

void LivenessTracker::RecordSuccess(size_t party) {
  SQM_CHECK(party < num_parties_);
  MutexLock lock(mu_);
  State& s = states_[party];
  if (s.liveness == PartyLiveness::kDead) return;
  s.consecutive_failures = 0;
  s.liveness = PartyLiveness::kAlive;
}

void LivenessTracker::MarkDead(size_t party) {
  SQM_CHECK(party < num_parties_);
  MutexLock lock(mu_);
  states_[party].liveness = PartyLiveness::kDead;
}

void LivenessTracker::Revive(size_t party) {
  SQM_CHECK(party < num_parties_);
  MutexLock lock(mu_);
  states_[party] = State{};
}

std::vector<size_t> LivenessTracker::Survivors() const {
  MutexLock lock(mu_);
  std::vector<size_t> out;
  out.reserve(states_.size());
  for (size_t j = 0; j < states_.size(); ++j) {
    if (states_[j].liveness != PartyLiveness::kDead) out.push_back(j);
  }
  return out;
}

std::vector<size_t> LivenessTracker::Dead() const {
  MutexLock lock(mu_);
  std::vector<size_t> out;
  for (size_t j = 0; j < states_.size(); ++j) {
    if (states_[j].liveness == PartyLiveness::kDead) out.push_back(j);
  }
  return out;
}

size_t LivenessTracker::num_alive() const {
  MutexLock lock(mu_);
  size_t alive = 0;
  for (const State& s : states_) {
    if (s.liveness != PartyLiveness::kDead) ++alive;
  }
  return alive;
}

size_t LivenessTracker::num_dead() const {
  return num_parties_ - num_alive();
}

void LivenessTracker::Reset() {
  MutexLock lock(mu_);
  for (State& s : states_) s = State{};
}

}  // namespace sqm
