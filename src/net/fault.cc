#include "net/fault.h"

#include <algorithm>
#include <cmath>

#include "core/logging.h"

namespace sqm {

bool FaultOptions::any() const {
  if (all_links.any() || crash_party != kNoCrash || !crashes.empty()) {
    return true;
  }
  for (const auto& [from, to, faults] : per_link) {
    (void)from;
    (void)to;
    if (faults.any()) return true;
  }
  return false;
}

std::vector<CrashEvent> FaultOptions::EffectiveCrashes() const {
  std::vector<CrashEvent> merged = crashes;
  if (crash_party != kNoCrash) {
    merged.push_back(CrashEvent{crash_party, crash_after_rounds});
  }
  // Deduplicate per party, keeping the earliest crash round.
  std::vector<CrashEvent> out;
  for (const CrashEvent& event : merged) {
    bool found = false;
    for (CrashEvent& existing : out) {
      if (existing.party == event.party) {
        existing.after_rounds =
            std::min(existing.after_rounds, event.after_rounds);
        found = true;
        break;
      }
    }
    if (!found) out.push_back(event);
  }
  return out;
}

FaultInjector::FaultInjector(size_t num_parties, FaultOptions options)
    : num_parties_(num_parties),
      options_(std::move(options)),
      crashes_(options_.EffectiveCrashes()),
      link_faults_(num_parties * num_parties, options_.all_links) {
  SQM_CHECK(num_parties >= 1);
  for (const CrashEvent& event : crashes_) {
    SQM_CHECK(event.party < num_parties);
  }
  for (const auto& [from, to, faults] : options_.per_link) {
    SQM_CHECK(from < num_parties && to < num_parties);
    link_faults_[from * num_parties + to] = faults;
  }
  Rng root(options_.seed);
  link_rngs_.reserve(num_parties * num_parties);
  for (size_t link = 0; link < num_parties * num_parties; ++link) {
    link_rngs_.push_back(root.Split(link));
  }
}

FaultInjector::SendFate FaultInjector::OnSend(size_t from, size_t to) {
  SendFate fate;
  if (from == to) return fate;
  const size_t link = from * num_parties_ + to;
  const LinkFaults& faults = link_faults_[link];
  if (!faults.any()) return fate;
  MutexLock lock(mu_);
  Rng& rng = link_rngs_[link];
  fate.drop = rng.NextBernoulli(faults.drop_probability);
  fate.reorder = rng.NextBernoulli(faults.reorder_probability);
  if (faults.delay_mean_seconds > 0.0) {
    // Inverse-CDF exponential draw; 1 - u in (0, 1] keeps log finite.
    fate.delay_seconds =
        -faults.delay_mean_seconds * std::log(1.0 - rng.NextDouble());
  }
  return fate;
}

bool FaultInjector::HasCrashed(size_t party,
                               uint64_t completed_rounds) const {
  for (const CrashEvent& event : crashes_) {
    if (event.party == party && completed_rounds >= event.after_rounds) {
      return true;
    }
  }
  return false;
}

}  // namespace sqm
