#ifndef SQM_NET_THREADED_H_
#define SQM_NET_THREADED_H_

#include <atomic>
#include <chrono>
#include <deque>
#include <memory>

#include "core/sync.h"
#include "net/fault.h"
#include "net/transport.h"

namespace sqm {

/// Configuration of a ThreadedTransport.
struct ThreadedTransportOptions {
  /// Added to the simulated clock per completed round (same meaning as in
  /// the lock-step transport, so the two report comparable numbers).
  double per_round_latency_seconds = 0.0;
  /// Serialized element width for byte accounting (Field::kWireBytes for
  /// the 61-bit field).
  size_t element_wire_bytes = kDefaultElementWireBytes;
  /// Bounded mailbox depth per directed channel; Send blocks while the
  /// channel already holds this many undelivered messages (backpressure).
  size_t mailbox_capacity = 256;
  /// How long one blocking Receive waits (wall-clock) before declaring a
  /// timeout. Messages known to be in flight (delayed by fault injection)
  /// extend the wait — a timeout means "nothing is coming".
  double receive_timeout_seconds = 0.25;
  /// Retry budget per Receive after a timeout. A retry first asks for a
  /// retransmission of a dropped message if one exists; otherwise it waits
  /// another timeout window.
  size_t max_retries = 3;
  /// Backoff before a retry completes, doubled per attempt.
  double retry_backoff_seconds = 0.001;
  /// Fault injection; default-constructed = reliable links, no crash.
  FaultOptions faults;
};

/// Concurrent multi-party transport: every directed channel is a bounded
/// MPSC mailbox guarded by a mutex + condition variables, so each party can
/// run on its own thread. Receive blocks until a message is deliverable,
/// with timeout, retry/backoff, and retransmission of fault-dropped
/// messages; a FaultInjector decides per-message drops, delays, reordering
/// and party crashes.
///
/// Execution modes:
///  - Driver mode: one thread runs the whole protocol (as the lock-step
///    simulation does) and calls EndRound(). Sends land in mailboxes and
///    receives drain them; faults and retries still apply. This keeps the
///    protocol code identical across transports.
///  - Per-party mode: each party runs on its own thread (see
///    net/runner.h) and calls ArriveRound() instead of EndRound(); the
///    round counter advances once per barrier generation.
///
/// Retransmission model: a message dropped by fault injection is parked on
/// its channel's retransmission buffer. When a Receive times out it
/// "requests retransmission": the parked message is redelivered after the
/// backoff and charged to the traffic counters again, exactly like a resent
/// packet. A crashed sender's messages are swallowed outright — no
/// retransmission — so receives from a crashed party fail with kUnavailable
/// once the retry budget is spent.
class ThreadedTransport : public Transport {
 public:
  ThreadedTransport(size_t num_parties, ThreadedTransportOptions options);
  ~ThreadedTransport() override;

  void Send(size_t from, size_t to, Payload payload) override;
  Result<Payload> Receive(size_t from, size_t to) override;
  bool HasPending(size_t from, size_t to) const override;

  /// Driver-mode round boundary (single protocol-driving thread).
  void EndRound() override;

  /// Per-party round barrier: blocks until all parties have arrived, then
  /// advances the round counter once. Every party thread must call it with
  /// its own index once per round.
  void ArriveRound(size_t party);

  size_t Reset() override;

  const ThreadedTransportOptions& options() const { return options_; }

  /// Rounds completed so far (drives crash-at-round fault decisions).
  uint64_t completed_rounds() const {
    return completed_rounds_.load(std::memory_order_acquire);
  }

 private:
  struct Entry {
    Payload payload;
    std::chrono::steady_clock::time_point deliver_at;
  };
  struct Mailbox {
    mutable Mutex mu;
    CondVar ready;  ///< Signaled on enqueue.
    CondVar space;  ///< Signaled on dequeue.
    std::deque<Entry> queue SQM_GUARDED_BY(mu);
    /// Dropped messages awaiting re-send.
    std::deque<Payload> retransmit SQM_GUARDED_BY(mu);
  };

  /// Post-interceptor delivery of one cross-party payload: draws its
  /// fault fate, accounts it, and lands it in the mailbox.
  void DeliverFaulted(size_t from, size_t to, Payload payload);

  Mailbox& mailbox(size_t from, size_t to) {
    return *mailboxes_[ChannelIndex(from, to)];
  }
  const Mailbox& mailbox(size_t from, size_t to) const {
    return *mailboxes_[ChannelIndex(from, to)];
  }

  ThreadedTransportOptions options_;
  FaultInjector faults_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::atomic<uint64_t> completed_rounds_{0};

  // Round-barrier state for per-party mode.
  Mutex round_mu_;
  CondVar round_cv_;
  size_t arrived_ SQM_GUARDED_BY(round_mu_) = 0;
  uint64_t generation_ SQM_GUARDED_BY(round_mu_) = 0;
};

}  // namespace sqm

#endif  // SQM_NET_THREADED_H_
