// sqm-party: one party of a networked SQM deployment.
//
// Runs party --party of the deployment described by --config: connects the
// TCP mesh, executes this party's side of the full mechanism (quantize own
// columns, sample own noise, BGW over TCP), and writes this party's
// SqmReport as JSON. Every party of a run — and the coordinator's
// in-process comparison — releases bit-identical values.
//
//   sqm-party --config=deploy.json --party=2
//       [--listen-fd=7] [--report=party2.json] [--trace=party2.trace.json]
//       [--crash-at-mul-level=L] [--checkpoint-dir=DIR] [--incarnation=K]
//       [--telemetry-port=P] [--telemetry-host=H] [--flight=FILE]
//
// --listen-fd adopts a pre-bound listening socket (the coordinator binds
// every roster port before forking so no party can lose a bind race).
// --crash-at-mul-level raises SIGKILL when multiplication level L begins —
// a deterministic stand-in for `kill -9` mid-protocol, used by the
// resilience tests.
// --checkpoint-dir enables durable checkpoints (and, with the config's
// recovery fields, supervised rejoin); --incarnation=K marks this process
// as the K-th supervised respawn, making it resume from its checkpoint.
// --telemetry-port connects the live telemetry channel back to the
// coordinator: clock-offset probes, periodic state snapshots, and (via the
// periodic durable trace rewrite) pre-crash spans that survive SIGKILL.
// --flight names the crash flight-recorder dump file, written on fatal
// exits, SIGTERM, and degrade (docs/OBSERVABILITY.md).
// See docs/DEPLOYMENT.md.

#include <csignal>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "core/json.h"
#include "core/party_sqm.h"
#include "core/report_io.h"
#include "core/status.h"
#include "net/tcp/party_config.h"
#include "net/tcp/tcp_transport.h"
#include "net/tcp/telemetry.h"
#include "obs/flight_recorder.h"
#include "obs/ledger.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"

namespace {

struct Args {
  std::string config_path;
  long party = -1;
  int listen_fd = -1;
  std::string report_path;
  std::string trace_path;
  std::string flight_path;
  std::string telemetry_host = "127.0.0.1";
  long telemetry_port = 0;
  long crash_at_mul_level = -1;
  std::string checkpoint_dir;
  long incarnation = 0;
};

bool ParseFlag(const std::string& arg, const std::string& name,
               std::string* out) {
  const std::string prefix = "--" + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *out = arg.substr(prefix.size());
  return true;
}

bool ParseLongFlag(const std::string& arg, const std::string& name,
                   long* out) {
  std::string text;
  if (!ParseFlag(arg, name, &text)) return false;
  *out = std::stol(text);
  return true;
}

int Usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " --config=FILE --party=N [--listen-fd=FD] [--report=FILE]"
               " [--trace=FILE] [--crash-at-mul-level=L]"
               " [--checkpoint-dir=DIR] [--incarnation=K]"
               " [--telemetry-port=P] [--telemetry-host=H]"
               " [--flight=FILE]\n";
  return 2;
}

/// splitmix64 finalizer: spreads (run_id, party, incarnation) into the
/// trace/span-id namespaces.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Trace path for the SIGTERM flush; set once before the handler installs.
std::string* g_term_trace_path = nullptr;

/// Supervisor-initiated shutdown: flush the same artifacts the fatal path
/// would (trace + flight ring), then exit with the conventional 128+15.
/// Not strictly async-signal-safe (the writers allocate), but SIGTERM here
/// only ever means "the supervisor is done with you" — the alternative is
/// losing the timeline of a cleanly-terminated party.
extern "C" void HandleSigTerm(int) {
  if (sqm::obs::Enabled()) {
    if (g_term_trace_path != nullptr && !g_term_trace_path->empty()) {
      sqm::obs::Tracer::Global().WriteChromeTraceFile(*g_term_trace_path);
    }
    sqm::obs::FlightRecorder::Global().DumpForCrash();
  }
  _exit(143);
}

/// The telemetry snapshot document (docs/OBSERVABILITY.md "Snapshot
/// schema"). Live snapshots read the transport's running totals; the final
/// snapshot reads the report's frozen totals so the fleet view reconciles
/// exactly with party_<j>.json.
std::string BuildSnapshot(uint64_t run_id, size_t party,
                          uint32_t incarnation, const std::string& phase,
                          const sqm::NetworkStats& net, bool final_doc) {
  sqm::JsonWriter w;
  w.BeginObject();
  w.Field("run_id", run_id);
  w.Field("party", static_cast<uint64_t>(party));
  w.Field("incarnation", static_cast<uint64_t>(incarnation));
  w.Field("final", final_doc);
  w.Field("phase", phase);
  w.Key("net");
  w.BeginObject();
  w.Field("messages", net.messages);
  w.Field("field_elements", net.field_elements);
  w.Field("wire_bytes", net.wire_bytes);
  w.Field("rounds", net.rounds);
  w.EndObject();
  const std::vector<sqm::obs::LedgerEntry> spends =
      sqm::obs::PrivacyLedger::Global().Entries();
  w.Field("ledger_epsilon",
          spends.empty() ? 0.0 : spends.back().cumulative_epsilon);
  const sqm::obs::Gauge* pool =
      sqm::obs::Registry::Global().FindGauge("mpc.beaver.pool_remaining");
  w.Field("beaver_pool_depth", pool == nullptr ? -1.0 : pool->Get());
  // The metrics registry and the flight ring ride along whole; "flight"
  // stays the LAST member (TelemetryServer::LatestFlightJson relies on the
  // document, not the position, but keeping it last keeps diffs stable).
  w.Key("metrics");
  std::string doc = w.str();
  doc += sqm::obs::Registry::Global().SnapshotJson();
  doc += ",\"flight\":";
  doc += sqm::obs::FlightRecorder::Global().ToJson();
  doc += "}";
  return doc;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    long fd = -1;
    if (ParseFlag(arg, "config", &args.config_path) ||
        ParseLongFlag(arg, "party", &args.party) ||
        ParseFlag(arg, "report", &args.report_path) ||
        ParseFlag(arg, "trace", &args.trace_path) ||
        ParseFlag(arg, "flight", &args.flight_path) ||
        ParseFlag(arg, "telemetry-host", &args.telemetry_host) ||
        ParseLongFlag(arg, "telemetry-port", &args.telemetry_port) ||
        ParseLongFlag(arg, "crash-at-mul-level",
                      &args.crash_at_mul_level) ||
        ParseFlag(arg, "checkpoint-dir", &args.checkpoint_dir) ||
        ParseLongFlag(arg, "incarnation", &args.incarnation)) {
      continue;
    }
    if (ParseLongFlag(arg, "listen-fd", &fd)) {
      args.listen_fd = static_cast<int>(fd);
      continue;
    }
    std::cerr << "unknown flag: " << arg << "\n";
    return Usage(argv[0]);
  }
  if (args.config_path.empty() || args.party < 0 || args.incarnation < 0) {
    return Usage(argv[0]);
  }

  std::ifstream config_file(args.config_path);
  if (!config_file) {
    std::cerr << "cannot read config " << args.config_path << "\n";
    return 1;
  }
  std::stringstream buffer;
  buffer << config_file.rdbuf();

  sqm::Result<sqm::DeploymentConfig> parsed =
      sqm::ParseDeploymentConfig(buffer.str());
  if (!parsed.ok()) {
    std::cerr << parsed.status().ToString() << "\n";
    return 1;
  }
  const sqm::DeploymentConfig& config = parsed.ValueOrDie();
  const size_t me = static_cast<size_t>(args.party);
  const auto incarnation = static_cast<uint32_t>(args.incarnation);

  // The fleet-wide runtime kill switch: with obs_enabled=false this
  // process runs with zero observability (no spans, no metrics, no flight
  // ring, no telemetry stream, context-free frames) and must release
  // bit-identical values.
  if (!config.obs_enabled) sqm::obs::SetEnabled(false);

  if (sqm::obs::Enabled()) {
    // Span ids must stay unique across the fleet AND across supervised
    // restarts: merged traces key their flow arrows by id. Each
    // (party, incarnation) gets its own 2^40-id slab.
    sqm::obs::Tracer::SetSpanIdNamespace(
        ((static_cast<uint64_t>(me) + 1) << 48) |
        (static_cast<uint64_t>(incarnation & 0xFF) << 40) | 1);
    sqm::obs::Tracer::SetTraceId(Mix64(config.run_id) | 1);
    sqm::obs::FlightRecorder::Global().SetIdentity(config.run_id,
                                                   static_cast<uint32_t>(me),
                                                   incarnation);
    if (!args.flight_path.empty()) {
      sqm::obs::FlightRecorder::Global().SetDumpPath(args.flight_path);
    }
    if (!args.trace_path.empty()) {
      // Fatal exits and SIGTERM flush to the SAME file the coordinator
      // merges, so a crashed incarnation still contributes its spans.
      sqm::obs::Tracer::Global().SetCrashDumpPath(args.trace_path);
    }
  }
  g_term_trace_path = new std::string(args.trace_path);
  std::signal(SIGTERM, HandleSigTerm);

  sqm::Result<std::unique_ptr<sqm::net::TcpTransport>> transport =
      sqm::net::TcpTransport::Create(sqm::TcpOptionsFromDeployment(
          config, me, args.listen_fd, incarnation));
  if (!transport.ok()) {
    std::cerr << "party " << me
              << ": transport setup failed: " << transport.status().ToString()
              << "\n";
    return 1;
  }
  sqm::net::TcpTransport* wire = transport.ValueOrDie().get();

  // Live telemetry channel back to the coordinator (observational only: a
  // refused connection or a dead coordinator never stops the protocol).
  sqm::net::TelemetryClient* telemetry = nullptr;
  if (sqm::obs::Enabled() && args.telemetry_port > 0) {
    sqm::net::TelemetryClientOptions opts;
    opts.host = args.telemetry_host;
    opts.port = static_cast<uint16_t>(args.telemetry_port);
    opts.session_key = config.session_key;
    opts.run_id = config.run_id;
    opts.party = static_cast<uint32_t>(me);
    opts.incarnation = incarnation;
    opts.snapshot_interval_seconds =
        config.telemetry_snapshot_interval_seconds;
    const uint64_t run_id = config.run_id;
    opts.build_snapshot = [wire, run_id, me, incarnation] {
      return BuildSnapshot(run_id, me, incarnation, wire->phase(),
                           wire->stats(), /*final_doc=*/false);
    };
    if (!args.trace_path.empty()) {
      const std::string trace_path = args.trace_path;
      opts.on_tick = [trace_path] {
        // Durable trace: rewrite every interval so a SIGKILL mid-protocol
        // still leaves this incarnation's pre-crash spans on disk for the
        // coordinator's merge.
        sqm::obs::Tracer::Global().WriteChromeTraceFile(trace_path);
      };
    }
    telemetry = new sqm::net::TelemetryClient(std::move(opts));
    const sqm::Status started = telemetry->Start();
    if (!started.ok()) {
      std::cerr << "party " << me << ": telemetry disabled: "
                << started.ToString() << "\n";
    }
  }

  // Baseline durable trace before any protocol work: even a party killed
  // in its very first phase leaves this incarnation's file for the
  // coordinator's merge (the telemetry tick keeps rewriting it after).
  if (sqm::obs::Enabled() && !args.trace_path.empty()) {
    sqm::obs::Tracer::Global().WriteChromeTraceFile(args.trace_path);
  }

  sqm::PartySqmHooks hooks;
  hooks.checkpoint_dir = args.checkpoint_dir;
  hooks.incarnation = incarnation;
  if (args.crash_at_mul_level >= 0) {
    const size_t crash_level = static_cast<size_t>(args.crash_at_mul_level);
    hooks.mul_level_hook = [crash_level](size_t level) {
      if (level == crash_level) {
        // The resilience tests' deterministic `kill -9`: die mid-protocol
        // with sub-shares half-sent, no goodbye frame, no cleanup.
        std::raise(SIGKILL);
      }
    };
  }

  sqm::Result<sqm::SqmReport> report =
      sqm::RunPartySqm(config, me, wire, hooks);
  wire->Shutdown();

  if (!args.trace_path.empty() && sqm::obs::Enabled()) {
    if (!sqm::obs::Tracer::Global().WriteChromeTraceFile(args.trace_path)) {
      std::cerr << "party " << me << ": cannot write trace "
                << args.trace_path << "\n";
    }
  }
  if (telemetry != nullptr) {
    // Final snapshot from the report's FROZEN totals (the transport is
    // shut down), so fleet_metrics.json reconciles byte-for-byte with
    // this party's own report.
    telemetry->Stop(BuildSnapshot(
        config.run_id, me, incarnation, "done",
        report.ok() ? report.ValueOrDie().transport.totals : wire->stats(),
        /*final_doc=*/true));
    delete telemetry;
  }
  if (sqm::obs::Enabled() && report.ok() &&
      report.ValueOrDie().dropout.num_dropped > 0) {
    // A degraded run is a post-mortem-worthy event even though the
    // process survives: dump the ring alongside the report.
    sqm::obs::FlightRecorder::Global().DumpForCrash();
  }
  if (!report.ok()) {
    std::cerr << "party " << me << ": " << report.status().ToString()
              << "\n";
    return 1;
  }

  const std::string json = sqm::SqmReportToJson(report.ValueOrDie());
  if (args.report_path.empty()) {
    std::cout << json << "\n";
  } else {
    std::ofstream out(args.report_path, std::ios::trunc);
    out << json;
    if (!out) {
      std::cerr << "party " << me << ": cannot write report "
                << args.report_path << "\n";
      return 1;
    }
  }
  return 0;
}
