// sqm-party: one party of a networked SQM deployment.
//
// Runs party --party of the deployment described by --config: connects the
// TCP mesh, executes this party's side of the full mechanism (quantize own
// columns, sample own noise, BGW over TCP), and writes this party's
// SqmReport as JSON. Every party of a run — and the coordinator's
// in-process comparison — releases bit-identical values.
//
//   sqm-party --config=deploy.json --party=2
//       [--listen-fd=7] [--report=party2.json] [--trace=party2.trace.json]
//       [--crash-at-mul-level=L] [--checkpoint-dir=DIR] [--incarnation=K]
//
// --listen-fd adopts a pre-bound listening socket (the coordinator binds
// every roster port before forking so no party can lose a bind race).
// --crash-at-mul-level raises SIGKILL when multiplication level L begins —
// a deterministic stand-in for `kill -9` mid-protocol, used by the
// resilience tests.
// --checkpoint-dir enables durable checkpoints (and, with the config's
// recovery fields, supervised rejoin); --incarnation=K marks this process
// as the K-th supervised respawn, making it resume from its checkpoint.
// See docs/DEPLOYMENT.md.

#include <csignal>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "core/party_sqm.h"
#include "core/report_io.h"
#include "core/status.h"
#include "net/tcp/party_config.h"
#include "net/tcp/tcp_transport.h"
#include "obs/obs.h"
#include "obs/trace.h"

namespace {

struct Args {
  std::string config_path;
  long party = -1;
  int listen_fd = -1;
  std::string report_path;
  std::string trace_path;
  long crash_at_mul_level = -1;
  std::string checkpoint_dir;
  long incarnation = 0;
};

bool ParseFlag(const std::string& arg, const std::string& name,
               std::string* out) {
  const std::string prefix = "--" + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *out = arg.substr(prefix.size());
  return true;
}

bool ParseLongFlag(const std::string& arg, const std::string& name,
                   long* out) {
  std::string text;
  if (!ParseFlag(arg, name, &text)) return false;
  *out = std::stol(text);
  return true;
}

int Usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " --config=FILE --party=N [--listen-fd=FD] [--report=FILE]"
               " [--trace=FILE] [--crash-at-mul-level=L]"
               " [--checkpoint-dir=DIR] [--incarnation=K]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    long fd = -1;
    if (ParseFlag(arg, "config", &args.config_path) ||
        ParseLongFlag(arg, "party", &args.party) ||
        ParseFlag(arg, "report", &args.report_path) ||
        ParseFlag(arg, "trace", &args.trace_path) ||
        ParseLongFlag(arg, "crash-at-mul-level",
                      &args.crash_at_mul_level) ||
        ParseFlag(arg, "checkpoint-dir", &args.checkpoint_dir) ||
        ParseLongFlag(arg, "incarnation", &args.incarnation)) {
      continue;
    }
    if (ParseLongFlag(arg, "listen-fd", &fd)) {
      args.listen_fd = static_cast<int>(fd);
      continue;
    }
    std::cerr << "unknown flag: " << arg << "\n";
    return Usage(argv[0]);
  }
  if (args.config_path.empty() || args.party < 0 || args.incarnation < 0) {
    return Usage(argv[0]);
  }

  std::ifstream config_file(args.config_path);
  if (!config_file) {
    std::cerr << "cannot read config " << args.config_path << "\n";
    return 1;
  }
  std::stringstream buffer;
  buffer << config_file.rdbuf();

  sqm::Result<sqm::DeploymentConfig> config =
      sqm::ParseDeploymentConfig(buffer.str());
  if (!config.ok()) {
    std::cerr << config.status().ToString() << "\n";
    return 1;
  }
  const size_t me = static_cast<size_t>(args.party);

  sqm::Result<std::unique_ptr<sqm::net::TcpTransport>> transport =
      sqm::net::TcpTransport::Create(sqm::TcpOptionsFromDeployment(
          config.ValueOrDie(), me, args.listen_fd,
          static_cast<uint32_t>(args.incarnation)));
  if (!transport.ok()) {
    std::cerr << "party " << me
              << ": transport setup failed: " << transport.status().ToString()
              << "\n";
    return 1;
  }

  sqm::PartySqmHooks hooks;
  hooks.checkpoint_dir = args.checkpoint_dir;
  hooks.incarnation = static_cast<uint32_t>(args.incarnation);
  if (args.crash_at_mul_level >= 0) {
    const size_t crash_level = static_cast<size_t>(args.crash_at_mul_level);
    hooks.mul_level_hook = [crash_level](size_t level) {
      if (level == crash_level) {
        // The resilience tests' deterministic `kill -9`: die mid-protocol
        // with sub-shares half-sent, no goodbye frame, no cleanup.
        std::raise(SIGKILL);
      }
    };
  }

  sqm::Result<sqm::SqmReport> report = sqm::RunPartySqm(
      config.ValueOrDie(), me, transport.ValueOrDie().get(), hooks);
  transport.ValueOrDie()->Shutdown();

  if (!args.trace_path.empty() && sqm::obs::Enabled()) {
    if (!sqm::obs::Tracer::Global().WriteChromeTraceFile(args.trace_path)) {
      std::cerr << "party " << me << ": cannot write trace "
                << args.trace_path << "\n";
    }
  }
  if (!report.ok()) {
    std::cerr << "party " << me << ": " << report.status().ToString()
              << "\n";
    return 1;
  }

  const std::string json = sqm::SqmReportToJson(report.ValueOrDie());
  if (args.report_path.empty()) {
    std::cout << json << "\n";
  } else {
    std::ofstream out(args.report_path, std::ios::trunc);
    out << json;
    if (!out) {
      std::cerr << "party " << me << ": cannot write report "
                << args.report_path << "\n";
      return 1;
    }
  }
  return 0;
}
