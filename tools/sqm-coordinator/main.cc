// sqm-coordinator: launches an N-process SQM run from one deployment
// config and collects the results.
//
//   sqm-coordinator --config=deploy.json --out-dir=/tmp/run
//       [--compare-lockstep] [--crash-party=N --crash-at-mul-level=L]
//       [--party-bin=PATH] [--timeout-seconds=S] [--stats-interval=S]
//   sqm-coordinator --trace-validate=merged_trace.json
//
// The coordinator pre-binds every roster port (resolving port 0 to an
// ephemeral port), writes the resolved config, forks one sqm-party process
// per roster entry (handing each its own pre-bound listener via
// --listen-fd so no party can lose a bind race), waits for them with a
// watchdog, then:
//   - checks that every surviving party released bit-identical raw values,
//   - merges the per-party, per-incarnation trace files into one
//     clock-aligned Perfetto timeline (<out-dir>/merged_trace.json) using
//     the offsets estimated on the telemetry channel,
//   - aggregates the parties' live telemetry into a fleet view
//     (<out-dir>/fleet_metrics.json; --stats-interval=S prints an
//     sqm-top-style table every S seconds while the run is live),
//   - writes flight_<j>.json for any party that died by signal and never
//     dumped its own flight recorder (from its last telemetry snapshot),
//   - optionally (--compare-lockstep) replays the same config in-process
//     on the deterministic lockstep transport and requires the networked
//     release to match it bit for bit,
//   - writes a run summary (<out-dir>/coordinator.json).
//
// When the config sets max_restarts > 0 the coordinator is also the
// SUPERVISOR: each party gets a durable checkpoint directory
// (<out-dir>/ckpt_<j>), and a party that dies unexpectedly is respawned —
// after restart_backoff_seconds, on its original resolved port, with
// --incarnation bumped — up to max_restarts times, so it can rejoin the
// still-running quorum from its checkpoint (docs/DEPLOYMENT.md "Recovery
// & supervision"). Only when restarts are exhausted does the run fall
// through to the parties' own dropout handling.
//
// --trace-validate=FILE is a standalone mode: it loads a merged trace and
// asserts every per-(pid, tid) track holds properly nested span intervals
// and every flow-arrow finish has a matching start, exiting 0 iff the
// document is a causally consistent timeline.
//
// Exit 0 iff every party that was expected to survive exited cleanly and
// all bit-exactness checks passed. See docs/DEPLOYMENT.md.

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#define SQM_COORDINATOR_SUPPORTED 1
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>
#else
#define SQM_COORDINATOR_SUPPORTED 0
#endif

#include <chrono>
#include <thread>

#include "core/json.h"
#include "core/party_sqm.h"
#include "core/report_io.h"
#include "core/sqm.h"
#include "core/status.h"
#include "net/tcp/party_config.h"
#include "net/tcp/socket.h"
#include "net/tcp/telemetry.h"
#include "obs/trace.h"
#include "poly/parser.h"

#ifndef SQM_PARTY_BIN
#define SQM_PARTY_BIN "sqm-party"
#endif

namespace {

struct Args {
  std::string config_path;
  std::string out_dir = ".";
  std::string party_bin = SQM_PARTY_BIN;
  std::string trace_validate;
  bool compare_lockstep = false;
  long crash_party = -1;
  long crash_at_mul_level = -1;
  /// Re-arm --crash-at-mul-level on every respawn of --crash-party, so a
  /// test can deterministically exhaust the restart budget and exercise
  /// the degrade fallback. Implies the crash party is an expected
  /// casualty even under supervision.
  bool crash_every_incarnation = false;
  double timeout_seconds = 120.0;
  /// > 0: print the live fleet table every this many seconds.
  double stats_interval = 0.0;
};

bool ParseFlag(const std::string& arg, const std::string& name,
               std::string* out) {
  const std::string prefix = "--" + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *out = arg.substr(prefix.size());
  return true;
}

bool ParseLongFlag(const std::string& arg, const std::string& name,
                   long* out) {
  std::string text;
  if (!ParseFlag(arg, name, &text)) return false;
  *out = std::stol(text);
  return true;
}

int Usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " --config=FILE [--out-dir=DIR] [--compare-lockstep]"
               " [--crash-party=N --crash-at-mul-level=L]"
               " [--crash-every-incarnation]"
               " [--party-bin=PATH] [--timeout-seconds=S]"
               " [--stats-interval=S]\n"
               "       "
            << argv0 << " --trace-validate=FILE\n";
  return 2;
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::stringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

bool WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::trunc);
  out << content;
  return static_cast<bool>(out);
}

bool FileExists(const std::string& path) {
  std::ifstream in(path);
  return static_cast<bool>(in);
}

/// --trace-validate: structural checks over a (merged) Chrome trace.
/// Asserts that, per (pid, tid) track, complete spans form properly
/// nested intervals — a child span starts after its parent and ends no
/// later — and that every flow finish ("f") has a flow start ("s") with
/// the same id somewhere in the document. Prints what it checked.
int ValidateTrace(const std::string& path) {
  std::string text;
  if (!ReadFile(path, &text)) {
    std::cerr << "trace-validate: cannot read " << path << "\n";
    return 1;
  }
  sqm::Result<sqm::JsonValue> parsed = sqm::ParseJson(text);
  if (!parsed.ok()) {
    std::cerr << "trace-validate: " << parsed.status().ToString() << "\n";
    return 1;
  }
  const sqm::JsonValue* events = parsed.ValueOrDie().Find("traceEvents");
  if (events == nullptr ||
      events->kind != sqm::JsonValue::Kind::kArray) {
    std::cerr << "trace-validate: no traceEvents array\n";
    return 1;
  }
  struct Interval {
    int64_t ts = 0;
    int64_t end = 0;
  };
  std::map<std::pair<int64_t, int64_t>, std::vector<Interval>> tracks;
  std::map<uint64_t, size_t> flow_starts;
  std::map<uint64_t, size_t> flow_finishes;
  size_t spans = 0;
  auto int_member = [](const sqm::JsonValue& obj, const char* key,
                       int64_t fallback) -> int64_t {
    const sqm::JsonValue* v = obj.Find(key);
    if (v == nullptr || v->kind != sqm::JsonValue::Kind::kNumber ||
        !v->is_integer) {
      return fallback;
    }
    return v->is_negative ? v->int_value
                          : static_cast<int64_t>(v->uint_value);
  };
  for (const sqm::JsonValue& event : events->items) {
    if (event.kind != sqm::JsonValue::Kind::kObject) continue;
    const sqm::JsonValue* ph = event.Find("ph");
    if (ph == nullptr || ph->kind != sqm::JsonValue::Kind::kString) {
      continue;
    }
    const int64_t pid = int_member(event, "pid", 0);
    const int64_t tid = int_member(event, "tid", 0);
    const int64_t ts = int_member(event, "ts", 0);
    if (ph->string_value == "X") {
      ++spans;
      tracks[{pid, tid}].push_back(
          Interval{ts, ts + int_member(event, "dur", 0)});
    } else if (ph->string_value == "s") {
      ++flow_starts[static_cast<uint64_t>(int_member(event, "id", 0))];
    } else if (ph->string_value == "f") {
      ++flow_finishes[static_cast<uint64_t>(int_member(event, "id", 0))];
    }
  }
  size_t violations = 0;
  for (auto& [track, intervals] : tracks) {
    // Parent-before-child at equal start: sort by (ts, longest first).
    std::sort(intervals.begin(), intervals.end(),
              [](const Interval& a, const Interval& b) {
                if (a.ts != b.ts) return a.ts < b.ts;
                return a.end > b.end;
              });
    std::vector<Interval> stack;
    for (const Interval& span : intervals) {
      while (!stack.empty() && stack.back().end <= span.ts) {
        stack.pop_back();
      }
      if (!stack.empty() && span.end > stack.back().end) {
        ++violations;
        std::cerr << "trace-validate: overlapping spans on pid "
                  << track.first << " tid " << track.second << ": ["
                  << span.ts << ", " << span.end << ") is not nested in ["
                  << stack.back().ts << ", " << stack.back().end << ")\n";
      }
      stack.push_back(span);
    }
  }
  size_t dangling = 0;
  for (const auto& [id, count] : flow_finishes) {
    if (flow_starts.find(id) == flow_starts.end()) {
      ++dangling;
      std::cerr << "trace-validate: flow finish id " << id
                << " has no matching start\n";
    }
  }
  std::cout << "trace-validate: " << spans << " spans on "
            << tracks.size() << " tracks, " << flow_starts.size()
            << " flow starts, " << flow_finishes.size()
            << " flow finishes; " << violations << " nesting violations, "
            << dangling << " dangling flows\n";
  return (violations == 0 && dangling == 0) ? 0 : 1;
}

}  // namespace

#if SQM_COORDINATOR_SUPPORTED

namespace {

struct PartyOutcome {
  pid_t pid = -1;
  bool exited = false;     ///< waitpid reaped it before the watchdog fired.
  int exit_code = -1;      ///< Valid when exited normally.
  int term_signal = 0;     ///< Non-zero when killed by a signal.
  size_t restarts = 0;     ///< Supervised respawns consumed.
  bool report_loaded = false;
  sqm::SqmReport report;
};

/// Reaps every child, SIGKILLing stragglers once `deadline` passes — a
/// deployment whose dropout handling works never gets that far; the
/// watchdog turns a regression back into a test failure instead of a hang.
///
/// `try_restart(j)` is consulted when party j is reaped dead (killed by a
/// signal or nonzero exit): returning true means it respawned the party
/// (outcomes[j].pid now names the new incarnation) and supervision
/// continues; false lets the death stand. Never consulted after the
/// watchdog fires — those deaths are the watchdog's own SIGKILLs.
///
/// `on_poll` runs once per supervision loop iteration (~20 ms): the live
/// fleet-table printer hooks in here.
void AwaitChildren(std::vector<PartyOutcome>& outcomes,
                   std::chrono::steady_clock::time_point deadline,
                   const std::function<bool(size_t)>& try_restart,
                   const std::function<void()>& on_poll) {
  size_t remaining = 0;
  for (const PartyOutcome& outcome : outcomes) {
    if (outcome.pid > 0) ++remaining;
  }
  bool killed = false;
  while (remaining > 0) {
    if (on_poll) on_poll();
    bool reaped_one = false;
    for (size_t j = 0; j < outcomes.size(); ++j) {
      PartyOutcome& outcome = outcomes[j];
      if (outcome.pid <= 0 || outcome.exited) continue;
      int status = 0;
      const pid_t rc = ::waitpid(outcome.pid, &status, WNOHANG);
      if (rc == outcome.pid) {
        reaped_one = true;
        outcome.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
        outcome.term_signal = WIFSIGNALED(status) ? WTERMSIG(status) : 0;
        const bool died =
            outcome.term_signal != 0 || outcome.exit_code != 0;
        if (died && !killed && try_restart && try_restart(j)) continue;
        outcome.exited = true;
        --remaining;
      }
    }
    if (remaining == 0) break;
    if (!reaped_one) {
      if (std::chrono::steady_clock::now() >= deadline) {
        if (!killed) {
          killed = true;
          for (const PartyOutcome& outcome : outcomes) {
            if (outcome.pid > 0 && !outcome.exited) {
              std::cerr << "watchdog: killing hung party pid "
                        << outcome.pid << "\n";
              ::kill(outcome.pid, SIGKILL);
            }
          }
        }
        // After SIGKILL the next waitpid pass reaps them; keep looping.
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value_text;
    if (ParseFlag(arg, "config", &args.config_path) ||
        ParseFlag(arg, "out-dir", &args.out_dir) ||
        ParseFlag(arg, "party-bin", &args.party_bin) ||
        ParseFlag(arg, "trace-validate", &args.trace_validate) ||
        ParseLongFlag(arg, "crash-party", &args.crash_party) ||
        ParseLongFlag(arg, "crash-at-mul-level",
                      &args.crash_at_mul_level)) {
      continue;
    }
    if (arg == "--compare-lockstep") {
      args.compare_lockstep = true;
      continue;
    }
    if (arg == "--crash-every-incarnation") {
      args.crash_every_incarnation = true;
      continue;
    }
    if (ParseFlag(arg, "timeout-seconds", &value_text)) {
      args.timeout_seconds = std::stod(value_text);
      continue;
    }
    if (ParseFlag(arg, "stats-interval", &value_text)) {
      args.stats_interval = std::stod(value_text);
      continue;
    }
    std::cerr << "unknown flag: " << arg << "\n";
    return Usage(argv[0]);
  }
  if (!args.trace_validate.empty()) return ValidateTrace(args.trace_validate);
  if (args.config_path.empty()) return Usage(argv[0]);

  std::string config_text;
  if (!ReadFile(args.config_path, &config_text)) {
    std::cerr << "cannot read config " << args.config_path << "\n";
    return 1;
  }
  sqm::Result<sqm::DeploymentConfig> parsed =
      sqm::ParseDeploymentConfig(config_text);
  if (!parsed.ok()) {
    std::cerr << parsed.status().ToString() << "\n";
    return 1;
  }
  sqm::DeploymentConfig config = std::move(parsed).ValueOrDie();
  const size_t n = config.parties.size();

  // Pre-bind every listener so (a) port 0 resolves before the roster is
  // distributed and (b) no party can fail a bind race against a stale
  // process. All listeners are close-on-exec; each child re-enables
  // inheritance for its OWN listener only, so no party holds a sibling's
  // port open after that sibling dies.
  std::vector<sqm::net::Socket> listeners;
  listeners.reserve(n);
  for (size_t j = 0; j < n; ++j) {
    sqm::Result<sqm::net::Socket> listener =
        sqm::net::ListenOn(config.parties[j].host, config.parties[j].port);
    if (!listener.ok()) {
      std::cerr << "cannot bind party " << j << " listener: "
                << listener.status().ToString() << "\n";
      return 1;
    }
    sqm::Result<uint16_t> port =
        sqm::net::LocalPort(listener.ValueOrDie());
    if (!port.ok()) {
      std::cerr << port.status().ToString() << "\n";
      return 1;
    }
    config.parties[j].port = port.ValueOrDie();
    const sqm::Status cloexec =
        sqm::net::SetCloseOnExec(listener.ValueOrDie(), true);
    if (!cloexec.ok()) {
      std::cerr << cloexec.ToString() << "\n";
      return 1;
    }
    listeners.push_back(std::move(listener).ValueOrDie());
  }

  // The telemetry control channel: one extra coordinator-side listener the
  // parties dial back on. Purely observational, so a failed bind degrades
  // to "no fleet view" instead of failing the run. Skipped entirely when
  // the config turns the obs kill switch off.
  std::unique_ptr<sqm::net::TelemetryServer> telemetry;
  uint16_t telemetry_port = 0;
  if (config.obs_enabled) {
    sqm::Result<sqm::net::Socket> listener =
        sqm::net::ListenOn("127.0.0.1", 0);
    if (listener.ok() &&
        sqm::net::SetCloseOnExec(listener.ValueOrDie(), true).ok()) {
      sqm::Result<uint16_t> port =
          sqm::net::LocalPort(listener.ValueOrDie());
      if (port.ok()) {
        telemetry_port = port.ValueOrDie();
        telemetry = std::make_unique<sqm::net::TelemetryServer>(
            config.session_key, config.run_id, n);
        const sqm::Status started =
            telemetry->Start(std::move(listener).ValueOrDie());
        if (!started.ok()) {
          std::cerr << "telemetry disabled: " << started.ToString() << "\n";
          telemetry.reset();
          telemetry_port = 0;
        }
      }
    }
    if (telemetry == nullptr) {
      std::cerr << "telemetry disabled: cannot bind control listener\n";
    }
  }

  const std::string resolved_path = args.out_dir + "/deploy_resolved.json";
  if (!WriteFile(resolved_path, sqm::DeploymentConfigToJson(config))) {
    std::cerr << "cannot write " << resolved_path
              << " (does --out-dir exist?)\n";
    return 1;
  }

  // Supervision: each party gets a durable checkpoint directory, so a
  // respawned incarnation can resume from its last phase boundary.
  const bool supervised = config.max_restarts > 0;
  std::vector<std::string> checkpoint_dirs(n);
  if (supervised) {
    for (size_t j = 0; j < n; ++j) {
      checkpoint_dirs[j] = args.out_dir + "/ckpt_" + std::to_string(j);
      if (::mkdir(checkpoint_dirs[j].c_str(), 0755) != 0 &&
          errno != EEXIST) {
        std::cerr << "cannot create " << checkpoint_dirs[j] << ": "
                  << std::strerror(errno) << "\n";
        return 1;
      }
    }
  }

  std::vector<PartyOutcome> outcomes(n);
  std::vector<std::string> report_paths(n);
  std::vector<std::string> flight_paths(n);
  // One trace file per (party, incarnation): a respawn must never
  // overwrite its pre-crash incarnation's spans — the merge puts both
  // documents on the SAME party track, so a restart reads as a gap.
  auto trace_path = [&](size_t j, size_t incarnation) {
    return args.out_dir + "/party_" + std::to_string(j) + ".inc" +
           std::to_string(incarnation) + ".trace.json";
  };
  for (size_t j = 0; j < n; ++j) {
    report_paths[j] =
        args.out_dir + "/party_" + std::to_string(j) + ".json";
    flight_paths[j] =
        args.out_dir + "/flight_" + std::to_string(j) + ".json";
  }

  // Forks sqm-party j handing it `listener`; incarnation > 0 marks a
  // supervised respawn, which resumes from its checkpoint and must NOT
  // inherit the deterministic crash flag (the crash already happened).
  auto spawn_party = [&](size_t j, sqm::net::Socket listener,
                         size_t incarnation) -> pid_t {
    std::vector<std::string> child_args = {
        args.party_bin,
        "--config=" + resolved_path,
        "--party=" + std::to_string(j),
        "--listen-fd=" + std::to_string(listener.fd()),
        "--report=" + report_paths[j],
        "--trace=" + trace_path(j, incarnation),
        "--flight=" + flight_paths[j],
    };
    if (telemetry_port != 0) {
      child_args.push_back("--telemetry-port=" +
                           std::to_string(telemetry_port));
    }
    if (supervised) {
      child_args.push_back("--checkpoint-dir=" + checkpoint_dirs[j]);
      child_args.push_back("--incarnation=" + std::to_string(incarnation));
    }
    if ((incarnation == 0 || args.crash_every_incarnation) &&
        args.crash_party == static_cast<long>(j) &&
        args.crash_at_mul_level >= 0) {
      child_args.push_back("--crash-at-mul-level=" +
                           std::to_string(args.crash_at_mul_level));
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      std::cerr << "fork failed: " << std::strerror(errno) << "\n";
      return -1;
    }
    if (pid == 0) {
      // Child: hand over only our own listener, then become sqm-party.
      const sqm::Status status = sqm::net::SetCloseOnExec(listener, false);
      if (!status.ok()) _exit(127);
      std::vector<char*> argv_raw;
      argv_raw.reserve(child_args.size() + 1);
      for (std::string& child_arg : child_args) {
        argv_raw.push_back(child_arg.data());
      }
      argv_raw.push_back(nullptr);
      ::execv(args.party_bin.c_str(), argv_raw.data());
      // Only reached when execv failed.
      _exit(127);
    }
    // Parent: `listener` closes on return — the child owns it now.
    return pid;
  };

  // Respawns party j after an unexpected death, if the restart budget
  // allows: back off, rebind the party's original resolved port (the
  // listener died with the process; SO_REUSEADDR makes the rebind
  // immediate), fork the next incarnation.
  auto try_restart = [&](size_t j) -> bool {
    if (!supervised || outcomes[j].restarts >= config.max_restarts) {
      return false;
    }
    std::cerr << "supervisor: party " << j << " died (exit="
              << outcomes[j].exit_code
              << " signal=" << outcomes[j].term_signal << "), restart "
              << (outcomes[j].restarts + 1) << "/" << config.max_restarts
              << "\n";
    // A signal-killed child had no chance to dump its flight ring; write
    // the black box from its last telemetry snapshot NOW, before the
    // respawned incarnation makes the run look healthy again.
    if (outcomes[j].term_signal != 0 && telemetry &&
        !FileExists(flight_paths[j])) {
      sqm::Result<std::string> flight = telemetry->LatestFlightJson(j);
      if (flight.ok() && WriteFile(flight_paths[j], flight.ValueOrDie())) {
        std::cerr << "supervisor: wrote " << flight_paths[j]
                  << " from party " << j << "'s last telemetry snapshot\n";
      }
    }
    std::this_thread::sleep_for(
        std::chrono::duration<double>(config.restart_backoff_seconds));
    sqm::Result<sqm::net::Socket> listener = sqm::net::ListenOn(
        config.parties[j].host, config.parties[j].port);
    for (int attempt = 0; !listener.ok() && attempt < 20; ++attempt) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      listener = sqm::net::ListenOn(config.parties[j].host,
                                    config.parties[j].port);
    }
    if (!listener.ok()) {
      std::cerr << "supervisor: cannot rebind party " << j << " port "
                << config.parties[j].port << ": "
                << listener.status().ToString() << "\n";
      return false;
    }
    const sqm::Status cloexec =
        sqm::net::SetCloseOnExec(listener.ValueOrDie(), true);
    if (!cloexec.ok()) {
      std::cerr << cloexec.ToString() << "\n";
      return false;
    }
    const pid_t pid = spawn_party(j, std::move(listener).ValueOrDie(),
                                  outcomes[j].restarts + 1);
    if (pid < 0) return false;
    ++outcomes[j].restarts;
    outcomes[j].pid = pid;
    outcomes[j].exit_code = -1;
    outcomes[j].term_signal = 0;
    return true;
  };

  // Launch the parties.
  for (size_t j = 0; j < n; ++j) {
    const pid_t pid = spawn_party(j, std::move(listeners[j]), 0);
    if (pid < 0) return 1;
    outcomes[j].pid = pid;
  }
  // Parent: release every listener — the children own them now.
  listeners.clear();

  // The live fleet table (--stats-interval), fed by the telemetry server.
  auto last_stats = std::chrono::steady_clock::now();
  std::function<void()> on_poll;
  if (telemetry != nullptr && args.stats_interval > 0.0) {
    on_poll = [&] {
      const auto now = std::chrono::steady_clock::now();
      if (std::chrono::duration<double>(now - last_stats).count() <
          args.stats_interval) {
        return;
      }
      last_stats = now;
      std::cout << telemetry->RenderFleetTable() << std::flush;
    };
  }

  AwaitChildren(outcomes,
                std::chrono::steady_clock::now() +
                    std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>(
                        std::chrono::duration<double>(
                            args.timeout_seconds)),
                try_restart, on_poll);

  // Every stream has gone quiet (the parties exited); freeze the fleet
  // view before reading offsets out of it.
  if (telemetry != nullptr) {
    telemetry->Stop();
    if (!WriteFile(args.out_dir + "/fleet_metrics.json",
                   telemetry->FleetMetricsJson())) {
      std::cerr << "cannot write fleet_metrics.json\n";
    }
  }

  // Collect reports from the parties that produced one.
  bool ok = true;
  size_t canonical = n;
  for (size_t j = 0; j < n; ++j) {
    std::string report_text;
    if (outcomes[j].exit_code == 0 &&
        ReadFile(report_paths[j], &report_text)) {
      sqm::Result<sqm::SqmReport> report =
          sqm::SqmReportFromJson(report_text);
      if (report.ok()) {
        outcomes[j].report_loaded = true;
        outcomes[j].report = std::move(report).ValueOrDie();
        if (canonical == n) canonical = j;
      } else {
        std::cerr << "party " << j << " report unreadable: "
                  << report.status().ToString() << "\n";
        ok = false;
      }
    }
    // A --crash-party death is only excusable when nothing was supposed
    // to bring it back: under supervision its respawn must finish cleanly
    // — unless the test re-arms the crash on every incarnation precisely
    // to exhaust the restart budget.
    const bool expected_crash =
        args.crash_party == static_cast<long>(j) &&
        (!supervised || args.crash_every_incarnation);
    if (!expected_crash && outcomes[j].exit_code != 0) {
      std::cerr << "party " << j << " failed: exit="
                << outcomes[j].exit_code
                << " signal=" << outcomes[j].term_signal << "\n";
      ok = false;
    }
  }
  if (canonical == n) {
    std::cerr << "no party produced a readable report\n";
    ok = false;
  }

  // Every surviving party must have released the SAME values — the MPC
  // opens to all parties, so a mismatch means a protocol bug.
  bool parties_agree = true;
  if (canonical < n) {
    for (size_t j = 0; j < n; ++j) {
      if (!outcomes[j].report_loaded || j == canonical) continue;
      if (outcomes[j].report.raw != outcomes[canonical].report.raw) {
        std::cerr << "party " << j << " released different raw values than "
                  << "party " << canonical << "\n";
        parties_agree = false;
        ok = false;
      }
    }
  }

  // The telemetry plane must agree with the parties' own accounting: a
  // party that shipped its final snapshot reported its FROZEN transport
  // totals there, so the fleet view reconciles byte-for-byte with the
  // party's report. A divergence means the control stream lost or
  // misattributed data — fail loudly.
  bool telemetry_reconciles = true;
  if (telemetry != nullptr) {
    for (size_t j = 0; j < n; ++j) {
      if (!outcomes[j].report_loaded) continue;
      const sqm::net::PartyTelemetry state = telemetry->Party(j);
      if (!state.final_seen) continue;
      const sqm::NetworkStats& totals = outcomes[j].report.transport.totals;
      if (state.net_wire_bytes != totals.wire_bytes ||
          state.net_messages != totals.messages ||
          state.net_field_elements != totals.field_elements ||
          state.net_rounds != totals.rounds) {
        std::cerr << "party " << j << " telemetry does not reconcile: "
                  << "fleet view has " << state.net_wire_bytes
                  << " wire bytes, report has " << totals.wire_bytes
                  << "\n";
        telemetry_reconciles = false;
        ok = false;
      }
    }
    // A party that died by signal and never dumped its own flight ring
    // still gets a post-mortem: its last telemetry snapshot carried the
    // ring, so the supervisor writes flight_<j>.json on its behalf.
    for (size_t j = 0; j < n; ++j) {
      if (outcomes[j].term_signal == 0 || FileExists(flight_paths[j])) {
        continue;
      }
      sqm::Result<std::string> flight = telemetry->LatestFlightJson(j);
      if (flight.ok()) {
        WriteFile(flight_paths[j], flight.ValueOrDie());
        std::cerr << "supervisor: wrote " << flight_paths[j]
                  << " from party " << j << "'s last telemetry snapshot\n";
      }
    }
  }

  // Merge every (party, incarnation) trace into one clock-aligned
  // timeline: all of a party's incarnations share one pid (one Perfetto
  // process group), and each document's timestamps are shifted by the
  // clock offset estimated for that incarnation on the telemetry channel.
  std::vector<sqm::obs::TraceDoc> traces;
  for (size_t j = 0; j < n; ++j) {
    for (size_t incarnation = 0; incarnation <= outcomes[j].restarts;
         ++incarnation) {
      std::string trace_text;
      if (!ReadFile(trace_path(j, incarnation), &trace_text)) continue;
      sqm::obs::TraceDoc doc;
      doc.name = "party " + std::to_string(j);
      doc.json = std::move(trace_text);
      doc.pid = j + 1;
      if (telemetry != nullptr) {
        sqm::Result<int64_t> offset = telemetry->ClockOffsetMicros(
            j, static_cast<uint32_t>(incarnation));
        if (offset.ok()) {
          doc.clock_offset_micros = offset.ValueOrDie();
        }
      }
      traces.push_back(std::move(doc));
    }
  }
  if (!traces.empty()) {
    sqm::Result<std::string> merged = sqm::obs::MergeChromeTraces(traces);
    if (merged.ok()) {
      WriteFile(args.out_dir + "/merged_trace.json", merged.ValueOrDie());
    } else {
      std::cerr << "trace merge failed: " << merged.status().ToString()
                << "\n";
    }
  }

  // Reference run: the same deployment on the in-process lockstep
  // transport must release bit-identical raw values.
  bool lockstep_match = true;
  if (args.compare_lockstep && canonical < n) {
    sqm::Result<sqm::SqmOptions> options =
        sqm::SqmOptionsFromDeployment(config);
    if (!options.ok()) {
      std::cerr << options.status().ToString() << "\n";
      ok = false;
    } else {
      const size_t cols = sqm::DeploymentCols(config);
      const sqm::Matrix x = sqm::GenerateDeploymentMatrix(
          config.rows, cols, config.data_seed);
      sqm::Result<sqm::PolynomialVector> f =
          sqm::ParsePolynomialVector(config.polynomial);
      if (!f.ok()) {
        std::cerr << f.status().ToString() << "\n";
        ok = false;
      } else {
        sqm::SqmEvaluator evaluator(options.ValueOrDie());
        sqm::Result<sqm::SqmReport> reference =
            evaluator.Evaluate(f.ValueOrDie(), x);
        if (!reference.ok()) {
          std::cerr << "lockstep reference run failed: "
                    << reference.status().ToString() << "\n";
          ok = false;
        } else if (reference.ValueOrDie().raw !=
                   outcomes[canonical].report.raw) {
          std::cerr << "networked release differs from the lockstep "
                       "reference (bit-exactness violated)\n";
          lockstep_match = false;
          ok = false;
        } else {
          std::cout << "lockstep comparison: bit-identical ("
                    << outcomes[canonical].report.raw.size()
                    << " outputs)\n";
        }
      }
    }
  }

  // Run summary.
  sqm::JsonWriter summary;
  summary.BeginObject();
  summary.Field("parties", static_cast<uint64_t>(n));
  summary.Field("ok", ok);
  summary.Field("parties_agree", parties_agree);
  summary.Field("lockstep_compared", args.compare_lockstep);
  summary.Field("lockstep_match", lockstep_match);
  summary.Field("telemetry_enabled", telemetry != nullptr);
  summary.Field("telemetry_reconciles", telemetry_reconciles);
  summary.BeginArray("party_outcomes");
  for (size_t j = 0; j < n; ++j) {
    summary.BeginObject();
    summary.Field("party", static_cast<uint64_t>(j));
    summary.Field("exit_code", static_cast<int64_t>(outcomes[j].exit_code));
    summary.Field("term_signal",
                  static_cast<int64_t>(outcomes[j].term_signal));
    summary.Field("restarts", static_cast<uint64_t>(outcomes[j].restarts));
    summary.Field("report_loaded", outcomes[j].report_loaded);
    summary.EndObject();
  }
  summary.EndArray();
  std::string canonical_text;
  if (canonical < n && ReadFile(report_paths[canonical], &canonical_text)) {
    // Re-embed the canonical party's report verbatim so the summary alone
    // carries the release, dropout accounting and privacy ledger. The
    // report is already a JSON object, so it splices as the value.
    summary.Key("canonical_report");
    std::string doc = summary.str();
    doc += canonical_text;
    doc += "}";
    WriteFile(args.out_dir + "/coordinator.json", doc);
  } else {
    summary.EndObject();
    WriteFile(args.out_dir + "/coordinator.json", summary.str());
  }

  if (canonical < n) {
    const sqm::DropoutReport& dropout = outcomes[canonical].report.dropout;
    std::cout << "run " << (ok ? "OK" : "FAILED") << ": " << n
              << " parties, " << dropout.num_dropped << " dropped, policy "
              << sqm::DropoutPolicyToString(dropout.policy)
              << ", realized_mu " << dropout.realized_mu
              << ", realized_epsilon " << dropout.realized_epsilon << "\n";
  }
  return ok ? 0 : 1;
}

#else  // !SQM_COORDINATOR_SUPPORTED

int main(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (ParseFlag(arg, "trace-validate", &args.trace_validate)) continue;
  }
  if (!args.trace_validate.empty()) return ValidateTrace(args.trace_validate);
  std::cerr << "sqm-coordinator requires POSIX fork/exec\n";
  return 2;
}

#endif  // SQM_COORDINATOR_SUPPORTED
