#include "sqmlint/baseline.h"

#include <algorithm>
#include <map>
#include <sstream>

namespace sqmlint {
namespace {

std::string Trim(const std::string& s) {
  size_t b = 0, e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r')) {
    --e;
  }
  return s.substr(b, e - b);
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

/// Parses the JSON string starting at the opening quote `at`; advances
/// `at` past the closing quote. Handles the escapes JsonEscape emits.
bool ParseJsonString(const std::string& text, size_t* at, std::string* out) {
  if (*at >= text.size() || text[*at] != '"') return false;
  size_t i = *at + 1;
  out->clear();
  while (i < text.size()) {
    const char c = text[i];
    if (c == '"') {
      *at = i + 1;
      return true;
    }
    if (c == '\\' && i + 1 < text.size()) {
      const char e = text[i + 1];
      if (e == 'n') {
        out->push_back('\n');
      } else if (e == 't') {
        out->push_back('\t');
      } else if (e == 'u' && i + 5 < text.size()) {
        const std::string hex = text.substr(i + 2, 4);
        const long code = std::strtol(hex.c_str(), nullptr, 16);
        out->push_back(code > 0 && code < 0x80 ? static_cast<char>(code)
                                               : '?');
        i += 6;
        continue;
      } else {
        out->push_back(e);
      }
      i += 2;
      continue;
    }
    out->push_back(c);
    ++i;
  }
  return false;
}

std::string EntryKey(const BaselineEntry& entry) {
  return entry.check + "\x1f" + entry.path + "\x1f" + entry.fingerprint;
}

}  // namespace

std::string ModuleRelativePath(const std::string& path) {
  std::string normalized = path;
  std::replace(normalized.begin(), normalized.end(), '\\', '/');
  static const char* const kRoots[] = {"src/", "tests/", "tools/", "bench/",
                                       "examples/"};
  size_t best = std::string::npos;
  for (const char* root : kRoots) {
    size_t at = normalized.rfind(std::string("/") + root);
    if (at != std::string::npos) {
      at += 1;  // Past the '/'.
      if (best == std::string::npos || at < best) best = at;
    }
    if (normalized.rfind(root, 0) == 0 && 0 < best) best = 0;
  }
  return best == std::string::npos ? normalized : normalized.substr(best);
}

BaselineEntry FingerprintFinding(const Project& project,
                                 const Finding& finding) {
  BaselineEntry entry;
  entry.check = finding.check;
  entry.path = ModuleRelativePath(finding.path);
  for (const SourceFile& file : project.files) {
    if (file.path != finding.path) continue;
    if (finding.line >= 1 &&
        static_cast<size_t>(finding.line) <= file.lines.size()) {
      entry.fingerprint = Trim(file.lines[finding.line - 1]);
    }
    break;
  }
  return entry;
}

std::string RenderBaseline(const Baseline& baseline) {
  std::vector<BaselineEntry> entries = baseline.entries;
  std::sort(entries.begin(), entries.end(),
            [](const BaselineEntry& a, const BaselineEntry& b) {
              return EntryKey(a) < EntryKey(b);
            });
  std::ostringstream out;
  out << "{\"version\":1,\"entries\":[";
  for (size_t i = 0; i < entries.size(); ++i) {
    if (i > 0) out << ",";
    out << "\n  {\"check\":\"" << JsonEscape(entries[i].check)
        << "\",\"path\":\"" << JsonEscape(entries[i].path)
        << "\",\"fingerprint\":\"" << JsonEscape(entries[i].fingerprint)
        << "\"}";
  }
  out << (entries.empty() ? "" : "\n") << "]}\n";
  return out.str();
}

Baseline BaselineFromFindings(const Project& project,
                              const std::vector<Finding>& findings) {
  Baseline baseline;
  for (const Finding& finding : findings) {
    if (finding.suppressed) continue;
    baseline.entries.push_back(FingerprintFinding(project, finding));
  }
  return baseline;
}

bool ParseBaseline(const std::string& text, Baseline* baseline,
                   std::string* error) {
  baseline->entries.clear();
  const size_t entries_at = text.find("\"entries\"");
  if (entries_at == std::string::npos) {
    *error = "baseline: missing \"entries\" array";
    return false;
  }
  size_t i = text.find('[', entries_at);
  if (i == std::string::npos) {
    *error = "baseline: malformed \"entries\" array";
    return false;
  }
  ++i;
  while (i < text.size()) {
    const size_t open = text.find('{', i);
    const size_t close_array = text.find(']', i);
    if (open == std::string::npos || close_array < open) break;
    BaselineEntry entry;
    size_t j = open + 1;
    bool object_ok = true;
    while (j < text.size() && text[j] != '}') {
      const size_t key_at = text.find('"', j);
      if (key_at == std::string::npos) {
        object_ok = false;
        break;
      }
      size_t at = key_at;
      std::string key, value;
      if (!ParseJsonString(text, &at, &key)) {
        object_ok = false;
        break;
      }
      const size_t colon = text.find(':', at);
      if (colon == std::string::npos) {
        object_ok = false;
        break;
      }
      at = text.find('"', colon);
      if (at == std::string::npos || !ParseJsonString(text, &at, &value)) {
        object_ok = false;
        break;
      }
      if (key == "check") entry.check = value;
      if (key == "path") entry.path = value;
      if (key == "fingerprint") entry.fingerprint = value;
      j = at;
      while (j < text.size() && (text[j] == ',' || text[j] == ' ' ||
                                 text[j] == '\n' || text[j] == '\r')) {
        ++j;
      }
    }
    if (!object_ok || entry.check.empty() || entry.path.empty()) {
      *error = "baseline: malformed entry object";
      return false;
    }
    baseline->entries.push_back(std::move(entry));
    i = text.find('}', open);
    if (i == std::string::npos) break;
    ++i;
  }
  return true;
}

BaselineDelta CompareBaseline(const Project& project,
                              const std::vector<Finding>& findings,
                              const Baseline& baseline) {
  BaselineDelta delta;
  std::map<std::string, int> budget;
  for (const BaselineEntry& entry : baseline.entries) {
    budget[EntryKey(entry)] += 1;
  }
  for (const Finding& finding : findings) {
    if (finding.suppressed) continue;
    const BaselineEntry entry = FingerprintFinding(project, finding);
    auto it = budget.find(EntryKey(entry));
    if (it != budget.end() && it->second > 0) {
      it->second -= 1;
      ++delta.matched;
    } else {
      delta.fresh.push_back(finding);
    }
  }
  for (const BaselineEntry& entry : baseline.entries) {
    auto it = budget.find(EntryKey(entry));
    if (it != budget.end() && it->second > 0) {
      it->second -= 1;
      delta.stale.push_back(entry);
    }
  }
  return delta;
}

}  // namespace sqmlint
