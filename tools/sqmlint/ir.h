#ifndef SQM_TOOLS_SQMLINT_IR_H_
#define SQM_TOOLS_SQMLINT_IR_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "sqmlint/lexer.h"

namespace sqmlint {

struct SourceFile;

/// A half-open token-index range [begin, end) into a file's token vector.
struct TokenRange {
  size_t begin = 0;
  size_t end = 0;
  bool empty() const { return begin >= end; }
};

/// One argument of a call site: its token extent inside the file.
struct CallArg {
  TokenRange range;
};

/// A call expression `callee(args...)` or `obj.callee(args...)`.
struct CallSite {
  std::string callee;     ///< Last identifier before the '('.
  std::string qualifier;  ///< Identifier before '::' / '.' / '->', if any.
  bool member = false;    ///< Reached through '.' or '->'.
  bool scoped = false;    ///< Reached through '::'.
  int line = 0;
  size_t name_token = 0;  ///< Token index of the callee identifier.
  std::vector<CallArg> args;
};

/// One def event inside a function body: `lhs = <range>;`, a declaration
/// with initializer, a range-for binding, or a `return <range>;` (lhs is
/// then the pseudo-variable "@ret").
struct Assign {
  std::string lhs;
  TokenRange rhs;
  int line = 0;
};

/// A function (or method) definition recovered from the token stream:
/// name, owner class for out-of-line `Owner::Name` definitions, parameter
/// names in order, the body's token extent, and the def-use events the
/// taint propagator consumes. This is a heuristic recovery — lambdas fold
/// into their enclosing function, and macro-heavy signatures may be
/// skipped — which is the right failure mode for a linter: unknown code
/// is simply not analyzed, never misreported.
struct FunctionIR {
  std::string name;
  std::string owner;         ///< "ShamirScheme" for ShamirScheme::Share.
  const SourceFile* file = nullptr;
  int line = 0;
  std::vector<std::string> params;  ///< Parameter names, "" when unnamed.
  TokenRange body;                  ///< Inside the braces, exclusive.
  std::vector<Assign> assigns;
  std::vector<CallSite> calls;

  std::string Qualified() const {
    return owner.empty() ? name : owner + "::" + name;
  }
};

/// Recovers every function definition in `file`. Deterministic and pure.
std::vector<FunctionIR> BuildFileIR(const SourceFile& file);

/// Splits the token range of a parenthesized region (excluding the outer
/// parens) into top-level comma-separated argument ranges, tracking
/// nested (), [], {} and template <> depth (so `pair<int,int>` stays one
/// argument).
std::vector<TokenRange> SplitTopLevelArgs(const std::vector<Token>& toks,
                                          TokenRange inside);

/// Index just past the ')' matching the '(' at `open`; toks.size() when
/// unbalanced. Shared by the lexicon checks and the IR builder.
size_t SkipParenGroup(const std::vector<Token>& toks, size_t open);

}  // namespace sqmlint

#endif  // SQM_TOOLS_SQMLINT_IR_H_
