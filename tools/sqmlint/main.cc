// sqmlint — domain-aware static analysis for this repo's MPC/DP invariants.
//
// Usage:
//   sqmlint [--json[=FILE]] [--sarif=FILE] [--baseline=FILE]
//           [--write-baseline=FILE] [--changed-only=GITREF] [--no-flow]
//           [--show-suppressed] [--check=a,b] [--list-checks] PATH...
//
// Exit codes: 0 clean, 1 active findings (or baseline delta), 2 usage or
// I/O error.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "sqmlint/baseline.h"
#include "sqmlint/checker.h"
#include "sqmlint/symbols.h"

namespace {

void PrintUsage(std::FILE* to) {
  std::fprintf(
      to,
      "usage: sqmlint [--json[=FILE]] [--sarif=FILE] [--baseline=FILE]\n"
      "               [--write-baseline=FILE] [--changed-only=GITREF]\n"
      "               [--no-flow] [--show-suppressed] [--check=a,b]\n"
      "               [--list-checks] PATH...\n"
      "Scans C++ sources (.h .hpp .cc .cpp .cxx; directories are walked\n"
      "recursively) for violations of the repo's MPC/DP invariants.\n"
      "Suppress one line with        // sqmlint:allow(<check-name>)\n"
      "Declassify a secret flow with // sqmlint:declassify(<why it is safe>)\n"
      "--baseline gates on the committed ratchet: findings not in the\n"
      "baseline fail, and so do baseline entries that no longer fire (the\n"
      "baseline only shrinks). --changed-only=REF reports only findings in\n"
      "files touched since REF (plus their transitive includers); the whole\n"
      "project is still analyzed so interprocedural results stay exact.\n");
}

bool WriteTextFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << content;
  return static_cast<bool>(out);
}

/// Files changed vs. `ref`, as git-relative paths, C++ sources only.
/// Runs git in the current directory — invoke from the repo root (as
/// scripts/check.sh and the documented pre-commit hook do).
bool GitChangedFiles(const std::string& ref, std::set<std::string>* out,
                     std::string* error) {
  const std::string cmd =
      "git diff --name-only --diff-filter=d " + ref + " -- 2>/dev/null";
  std::FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) {
    *error = "failed to run git diff";
    return false;
  }
  std::string output;
  char buf[4096];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), pipe)) > 0) {
    output.append(buf, got);
  }
  const int status = pclose(pipe);
  if (status != 0) {
    *error = "git diff --name-only " + ref + " failed (bad ref?)";
    return false;
  }
  std::istringstream lines(output);
  std::string line;
  static const char* const kExts[] = {".h", ".hpp", ".cc", ".cpp", ".cxx"};
  while (std::getline(lines, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    for (const char* ext : kExts) {
      const size_t n = std::string(ext).size();
      if (line.size() > n && line.compare(line.size() - n, n, ext) == 0) {
        out->insert(line);
        break;
      }
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  std::string json_file;
  std::string sarif_file;
  std::string baseline_file;
  std::string write_baseline_file;
  std::string changed_ref;
  bool with_flow = true;
  bool show_suppressed = false;
  std::set<std::string> only;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      json = true;
      json_file = arg.substr(7);
    } else if (arg.rfind("--sarif=", 0) == 0) {
      sarif_file = arg.substr(8);
    } else if (arg.rfind("--baseline=", 0) == 0) {
      baseline_file = arg.substr(11);
    } else if (arg.rfind("--write-baseline=", 0) == 0) {
      write_baseline_file = arg.substr(17);
    } else if (arg.rfind("--changed-only=", 0) == 0) {
      changed_ref = arg.substr(15);
    } else if (arg == "--no-flow") {
      with_flow = false;
    } else if (arg == "--show-suppressed") {
      show_suppressed = true;
    } else if (arg == "--list-checks") {
      for (const sqmlint::Check& check : sqmlint::AllChecks()) {
        std::printf("%-18s %s\n", check.name, check.description);
      }
      return 0;
    } else if (arg.rfind("--check=", 0) == 0) {
      std::string name;
      for (char c : arg.substr(8) + ",") {
        if (c == ',') {
          if (!name.empty()) only.insert(name);
          name.clear();
        } else {
          name.push_back(c);
        }
      }
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage(stdout);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "sqmlint: unknown flag '%s'\n", arg.c_str());
      PrintUsage(stderr);
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    PrintUsage(stderr);
    return 2;
  }
  for (const std::string& name : only) {
    bool known = false;
    for (const sqmlint::Check& check : sqmlint::AllChecks()) {
      known = known || name == check.name;
    }
    if (!known) {
      std::fprintf(stderr, "sqmlint: unknown check '%s' (--list-checks)\n",
                   name.c_str());
      return 2;
    }
  }

  std::vector<std::string> errors;
  const auto sources = sqmlint::CollectSources(paths, &errors);
  for (const std::string& error : errors) {
    std::fprintf(stderr, "sqmlint: %s\n", error.c_str());
  }
  if (!errors.empty()) return 2;

  const sqmlint::Project project = sqmlint::BuildProject(sources, with_flow);
  std::vector<sqmlint::Finding> findings = sqmlint::RunChecks(project, only);

  // --changed-only: the analysis above ran over the whole project (so
  // cross-TU taint and coverage are exact); only the *report* narrows to
  // files touched since the ref plus everything that includes them.
  if (!changed_ref.empty()) {
    std::set<std::string> changed;
    std::string error;
    if (!GitChangedFiles(changed_ref, &changed, &error)) {
      std::fprintf(stderr, "sqmlint: %s\n", error.c_str());
      return 2;
    }
    const sqmlint::SymbolTable table = sqmlint::SymbolTable::Build(project);
    const std::set<std::string> closure = table.IncluderClosure(changed);
    std::vector<sqmlint::Finding> kept;
    for (sqmlint::Finding& finding : findings) {
      bool in_scope = false;
      for (const std::string& path : closure) {
        if (finding.path == path ||
            sqmlint::PathEndsWith(finding.path, path)) {
          in_scope = true;
          break;
        }
      }
      if (in_scope) kept.push_back(std::move(finding));
    }
    findings = std::move(kept);
  }

  if (!write_baseline_file.empty()) {
    const sqmlint::Baseline baseline =
        sqmlint::BaselineFromFindings(project, findings);
    const std::string text = sqmlint::RenderBaseline(baseline);
    if (!WriteTextFile(write_baseline_file, text)) {
      std::fprintf(stderr, "sqmlint: cannot write '%s'\n",
                   write_baseline_file.c_str());
      return 2;
    }
    std::fprintf(stderr, "sqmlint: wrote baseline with %zu entries to %s\n",
                 baseline.entries.size(), write_baseline_file.c_str());
  }

  if (json) {
    const std::string rendered = sqmlint::RenderJson(project, findings);
    if (json_file.empty()) {
      std::cout << rendered << "\n";
    } else if (!WriteTextFile(json_file, rendered + "\n")) {
      std::fprintf(stderr, "sqmlint: cannot write '%s'\n", json_file.c_str());
      return 2;
    }
  }
  if (!sarif_file.empty()) {
    const std::string rendered = sqmlint::RenderSarif(project, findings);
    if (!WriteTextFile(sarif_file, rendered + "\n")) {
      std::fprintf(stderr, "sqmlint: cannot write '%s'\n", sarif_file.c_str());
      return 2;
    }
  }
  if (!json) {
    std::cout << sqmlint::RenderHuman(project, findings, show_suppressed);
  }

  // Ratchet mode: active findings are judged against the committed
  // baseline instead of gating directly.
  if (!baseline_file.empty()) {
    std::ifstream in(baseline_file, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "sqmlint: cannot read baseline '%s'\n",
                   baseline_file.c_str());
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    sqmlint::Baseline baseline;
    std::string error;
    if (!sqmlint::ParseBaseline(buf.str(), &baseline, &error)) {
      std::fprintf(stderr, "sqmlint: %s\n", error.c_str());
      return 2;
    }
    const sqmlint::BaselineDelta delta =
        sqmlint::CompareBaseline(project, findings, baseline);
    std::printf(
        "sqmlint baseline: %zu matched, %zu fresh, %zu stale "
        "(baseline entries: %zu)\n",
        delta.matched, delta.fresh.size(), delta.stale.size(),
        baseline.entries.size());
    for (const sqmlint::Finding& finding : delta.fresh) {
      std::printf("  FRESH %s:%d: [%s] %s\n", finding.path.c_str(),
                  finding.line, finding.check.c_str(),
                  finding.message.c_str());
    }
    for (const sqmlint::BaselineEntry& entry : delta.stale) {
      std::printf(
          "  STALE [%s] %s: '%s' no longer fires — remove it from the "
          "baseline (the ratchet only tightens)\n",
          entry.check.c_str(), entry.path.c_str(), entry.fingerprint.c_str());
    }
    return delta.Clean() ? 0 : 1;
  }

  return sqmlint::CountActive(findings) == 0 ? 0 : 1;
}
