// sqmlint — domain-aware static analysis for this repo's MPC/DP invariants.
//
// Usage:
//   sqmlint [--json] [--show-suppressed] [--check=a,b] [--list-checks] PATH...
//
// Exit codes: 0 clean, 1 active findings, 2 usage or I/O error.

#include <cstdio>
#include <iostream>
#include <set>
#include <string>
#include <vector>

#include "sqmlint/checker.h"

namespace {

void PrintUsage(std::FILE* to) {
  std::fprintf(to,
               "usage: sqmlint [--json] [--show-suppressed] [--check=a,b] "
               "[--list-checks] PATH...\n"
               "Scans C++ sources (.h .hpp .cc .cpp .cxx; directories are "
               "walked recursively)\nfor violations of the repo's MPC/DP "
               "invariants. Suppress one line with\n"
               "  // sqmlint:allow(<check-name>)\n");
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool show_suppressed = false;
  std::set<std::string> only;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--show-suppressed") {
      show_suppressed = true;
    } else if (arg == "--list-checks") {
      for (const sqmlint::Check& check : sqmlint::AllChecks()) {
        std::printf("%-18s %s\n", check.name, check.description);
      }
      return 0;
    } else if (arg.rfind("--check=", 0) == 0) {
      std::string name;
      for (char c : arg.substr(8) + ",") {
        if (c == ',') {
          if (!name.empty()) only.insert(name);
          name.clear();
        } else {
          name.push_back(c);
        }
      }
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage(stdout);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "sqmlint: unknown flag '%s'\n", arg.c_str());
      PrintUsage(stderr);
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    PrintUsage(stderr);
    return 2;
  }
  for (const std::string& name : only) {
    bool known = false;
    for (const sqmlint::Check& check : sqmlint::AllChecks()) {
      known = known || name == check.name;
    }
    if (!known) {
      std::fprintf(stderr, "sqmlint: unknown check '%s' (--list-checks)\n",
                   name.c_str());
      return 2;
    }
  }

  std::vector<std::string> errors;
  const auto sources = sqmlint::CollectSources(paths, &errors);
  for (const std::string& error : errors) {
    std::fprintf(stderr, "sqmlint: %s\n", error.c_str());
  }
  if (!errors.empty()) return 2;

  const sqmlint::Project project = sqmlint::BuildProject(sources);
  const std::vector<sqmlint::Finding> findings =
      sqmlint::RunChecks(project, only);
  if (json) {
    std::cout << sqmlint::RenderJson(project, findings) << "\n";
  } else {
    std::cout << sqmlint::RenderHuman(project, findings, show_suppressed);
  }
  return sqmlint::CountActive(findings) == 0 ? 0 : 1;
}
