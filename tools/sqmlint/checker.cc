#include "sqmlint/checker.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "sqmlint/taint.h"

namespace sqmlint {
namespace {

namespace fs = std::filesystem;

std::vector<std::string> SplitLines(const std::string& content) {
  std::vector<std::string> lines;
  std::string current;
  for (char c : content) {
    if (c == '\n') {
      lines.push_back(current);
      current.clear();
    } else if (c != '\r') {
      current.push_back(c);
    }
  }
  lines.push_back(current);
  return lines;
}

/// Parses "sqmlint:allow(a, b)" directives out of one comment. Returns
/// false (malformed) when the marker is present but the check list is
/// missing, unparenthesized or empty.
bool ParseAllowDirective(const std::string& comment,
                         std::set<std::string>* checks) {
  const std::string marker = "sqmlint:allow";
  const size_t at = comment.find(marker);
  if (at == std::string::npos) return true;  // No directive at all.
  size_t i = at + marker.size();
  while (i < comment.size() &&
         std::isspace(static_cast<unsigned char>(comment[i]))) {
    ++i;
  }
  if (i >= comment.size() || comment[i] != '(') return false;
  const size_t close = comment.find(')', i);
  if (close == std::string::npos) return false;
  std::string list = comment.substr(i + 1, close - i - 1);
  std::string name;
  std::set<std::string> parsed;
  for (char c : list + ",") {
    if (c == ',') {
      if (!name.empty()) {
        parsed.insert(name);
        name.clear();
      }
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) continue;
    name.push_back(c);
  }
  if (parsed.empty()) return false;
  checks->insert(parsed.begin(), parsed.end());
  return true;
}

/// Parses "sqmlint:declassify(reason)" out of one comment. Returns false
/// (malformed) when the marker is present but the reason is missing,
/// unparenthesized or empty — a declassification without a justification
/// is exactly the blanket allowlisting the directive replaces.
bool ParseDeclassifyDirective(const std::string& comment,
                              std::string* reason) {
  const std::string marker = "sqmlint:declassify";
  const size_t at = comment.find(marker);
  if (at == std::string::npos) return true;  // No directive at all.
  size_t i = at + marker.size();
  while (i < comment.size() &&
         std::isspace(static_cast<unsigned char>(comment[i]))) {
    ++i;
  }
  if (i >= comment.size() || comment[i] != '(') return false;
  const size_t close = comment.rfind(')');
  if (close == std::string::npos || close <= i) return false;
  std::string text = comment.substr(i + 1, close - i - 1);
  // Trim.
  size_t b = 0, e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) --e;
  if (b >= e) return false;
  *reason = text.substr(b, e - b);
  return true;
}

SourceFile MakeSourceFile(const std::string& path,
                          const std::string& content) {
  SourceFile file;
  file.path = path;
  file.content = content;
  file.lines = SplitLines(content);
  LexResult lexed = Lex(content);
  file.tokens = std::move(lexed.tokens);
  for (const Comment& comment : lexed.comments) {
    if (comment.text.find("sqmlint:declassify") != std::string::npos) {
      std::string reason;
      if (!ParseDeclassifyDirective(comment.text, &reason)) {
        Finding finding;
        finding.check = "declassify-syntax";
        finding.path = path;
        finding.line = comment.begin_line;
        finding.message =
            "malformed declassification: every sqmlint:declassify must "
            "carry a parenthesized, non-empty justification, e.g. "
            "sqmlint:declassify(digest is collision-resistant, reveals "
            "no share bits)";
        file.suppression_errors.push_back(std::move(finding));
      } else {
        for (int l = comment.begin_line; l <= comment.end_line + 1; ++l) {
          file.declassify.emplace(l, reason);
        }
      }
      continue;
    }
    if (comment.text.find("sqmlint:allow") == std::string::npos) continue;
    std::set<std::string> checks;
    if (!ParseAllowDirective(comment.text, &checks)) {
      Finding finding;
      finding.check = "suppression-syntax";
      finding.path = path;
      finding.line = comment.begin_line;
      finding.message =
          "malformed suppression: every sqmlint:allow must carry a "
          "parenthesized, non-empty check-name list, e.g. "
          "sqmlint:allow(rng-discipline)";
      file.suppression_errors.push_back(std::move(finding));
      continue;
    }
    // Cover the directive's own extent plus the next line, so the comment
    // works trailing the offending line or on its own line above it.
    for (int l = comment.begin_line; l <= comment.end_line + 1; ++l) {
      file.allows[l].insert(checks.begin(), checks.end());
    }
  }
  return file;
}

/// Pre-pass: record every function name declared with return type Status
/// or Result<...>. Token shapes matched (optionally with qualifiers):
///   Status Name (            Result < ... > Name (
///   Status Qual::Name (      sqm::Status Name (
/// `other_names` collects names declared with any other identifier-shaped
/// return type ("void Add(", "Element Sub("): a name in both sets is
/// ambiguous without type resolution and is dropped from the lexicon (the
/// [[nodiscard]] attribute still covers those call sites at compile time).
void CollectStatusFunctions(const SourceFile& file,
                            std::set<std::string>* names,
                            std::set<std::string>* other_names) {
  static const std::set<std::string> kNotAReturnType = {
      "return", "co_return", "co_await", "co_yield", "new",  "delete",
      "throw",  "case",      "goto",     "else",     "do",   "if",
      "while",  "for",       "switch",   "sizeof",   "not",  "and",
      "or",     "operator",  "explicit", "typename", "using"};
  const std::vector<Token>& toks = file.tokens;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokenKind::kIdentifier) continue;
    const std::string& t = toks[i].text;
    if (t != "Status" && t != "Result") {
      // `T Name (` with a plain-identifier return type T.
      if (kNotAReturnType.count(t) == 0 && i + 2 < toks.size() &&
          toks[i + 1].kind == TokenKind::kIdentifier &&
          kNotAReturnType.count(toks[i + 1].text) == 0 &&
          toks[i + 2].kind == TokenKind::kPunct && toks[i + 2].text == "(") {
        other_names->insert(toks[i + 1].text);
      }
      continue;
    }
    // Member access like value.Status() is not a return type.
    if (i > 0 && toks[i - 1].kind == TokenKind::kPunct &&
        (toks[i - 1].text == "." || toks[i - 1].text == "->")) {
      continue;
    }
    size_t j = i + 1;
    if (t == "Result") {
      if (j >= toks.size() || toks[j].text != "<") continue;
      int depth = 0;
      while (j < toks.size()) {
        if (toks[j].text == "<") ++depth;
        if (toks[j].text == ">") --depth;
        if (toks[j].text == ">>") depth -= 2;
        ++j;
        if (depth <= 0) break;
      }
    }
    // Optional & / * between type and declarator.
    while (j < toks.size() && toks[j].kind == TokenKind::kPunct &&
           (toks[j].text == "&" || toks[j].text == "*")) {
      ++j;
    }
    // Qualified declarator: Name (:: Name)* then '('.
    if (j >= toks.size() || toks[j].kind != TokenKind::kIdentifier) continue;
    std::string last = toks[j].text;
    ++j;
    while (j + 1 < toks.size() && toks[j].text == "::" &&
           toks[j + 1].kind == TokenKind::kIdentifier) {
      last = toks[j + 1].text;
      j += 2;
    }
    if (j < toks.size() && toks[j].text == "(" && last != "operator") {
      names->insert(last);
    }
  }
}

}  // namespace

bool PathInModule(const std::string& path, const std::string& needle) {
  std::string normalized = path;
  std::replace(normalized.begin(), normalized.end(), '\\', '/');
  size_t at = normalized.find(needle);
  while (at != std::string::npos) {
    if (at == 0 || normalized[at - 1] == '/') return true;
    at = normalized.find(needle, at + 1);
  }
  return false;
}

std::vector<std::string> IdentifierWords(const std::string& identifier) {
  std::vector<std::string> words;
  std::string current;
  auto flush = [&] {
    if (!current.empty()) {
      words.push_back(current);
      current.clear();
    }
  };
  for (size_t i = 0; i < identifier.size(); ++i) {
    const char c = identifier[i];
    if (c == '_') {
      flush();
      continue;
    }
    if (std::isupper(static_cast<unsigned char>(c)) && i > 0 &&
        std::islower(static_cast<unsigned char>(identifier[i - 1]))) {
      flush();
    }
    current.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  flush();
  return words;
}

Project BuildProject(
    const std::vector<std::pair<std::string, std::string>>& files,
    bool with_flow) {
  Project project;
  project.files.reserve(files.size());
  for (const auto& [path, content] : files) {
    project.files.push_back(MakeSourceFile(path, content));
  }
  std::set<std::string> other_names;
  for (const SourceFile& file : project.files) {
    CollectStatusFunctions(file, &project.status_functions, &other_names);
  }
  for (const std::string& name : other_names) {
    project.status_functions.erase(name);
  }
  if (with_flow) {
    project.flow =
        std::make_shared<const FlowAnalysis>(RunFlowAnalysis(project));
  }
  return project;
}

std::vector<std::pair<std::string, std::string>> CollectSources(
    const std::vector<std::string>& paths, std::vector<std::string>* errors) {
  std::vector<std::pair<std::string, std::string>> out;
  auto read_file = [&](const fs::path& p) {
    std::ifstream in(p, std::ios::binary);
    if (!in) {
      errors->push_back("cannot read " + p.string());
      return;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    out.emplace_back(p.generic_string(), buffer.str());
  };
  const std::set<std::string> extensions = {".h", ".hpp", ".cc", ".cpp",
                                            ".cxx"};
  for (const std::string& path : paths) {
    std::error_code ec;
    if (fs::is_directory(path, ec)) {
      for (fs::recursive_directory_iterator it(path, ec), end;
           !ec && it != end; it.increment(ec)) {
        if (!it->is_regular_file()) continue;
        if (extensions.count(it->path().extension().string()) == 0) continue;
        read_file(it->path());
      }
      if (ec) errors->push_back("cannot walk " + path + ": " + ec.message());
    } else if (fs::exists(path, ec)) {
      read_file(path);
    } else {
      errors->push_back("no such path: " + path);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Finding> RunChecks(const Project& project,
                               const std::set<std::string>& only) {
  std::vector<Finding> findings;
  for (const SourceFile& file : project.files) {
    for (const Check& check : AllChecks()) {
      if (!only.empty() && only.count(check.name) == 0) continue;
      check.run(project, file, &findings);
    }
    for (const Finding& error : file.suppression_errors) {
      findings.push_back(error);  // Never suppressible.
    }
  }
  // Resolve suppressions. Directive-syntax findings are never
  // suppressible — a malformed suppression cannot silence itself.
  for (Finding& finding : findings) {
    if (finding.check == "suppression-syntax" ||
        finding.check == "declassify-syntax") {
      continue;
    }
    for (const SourceFile& file : project.files) {
      if (file.path != finding.path) continue;
      auto it = file.allows.find(finding.line);
      if (it != file.allows.end() && it->second.count(finding.check) > 0) {
        finding.suppressed = true;
      }
      break;
    }
  }
  std::stable_sort(findings.begin(), findings.end(),
                   [](const Finding& a, const Finding& b) {
                     if (a.path != b.path) return a.path < b.path;
                     return a.line < b.line;
                   });
  return findings;
}

size_t CountActive(const std::vector<Finding>& findings) {
  size_t active = 0;
  for (const Finding& finding : findings) {
    if (!finding.suppressed) ++active;
  }
  return active;
}

std::string RenderHuman(const Project& project,
                        const std::vector<Finding>& findings,
                        bool show_suppressed) {
  std::ostringstream out;
  for (const Finding& finding : findings) {
    if (finding.suppressed && !show_suppressed) continue;
    out << finding.path << ":" << finding.line << ": ["
        << finding.check << "] " << finding.message;
    if (finding.suppressed) out << " (suppressed)";
    out << "\n";
    for (const SourceFile& file : project.files) {
      if (file.path != finding.path) continue;
      if (finding.line >= 1 &&
          static_cast<size_t>(finding.line) <= file.lines.size()) {
        out << "  | " << file.lines[finding.line - 1] << "\n";
      }
      break;
    }
  }
  const size_t active = CountActive(findings);
  out << (active == 0 ? "sqmlint: clean" : "sqmlint: FAIL") << " ("
      << active << " finding(s), " << findings.size() - active
      << " suppressed, " << project.files.size() << " file(s))\n";
  return out.str();
}

namespace {
std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}
}  // namespace

std::string RenderJson(const Project& project,
                       const std::vector<Finding>& findings) {
  std::ostringstream out;
  out << "{\"findings\":[";
  for (size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    if (i > 0) out << ",";
    out << "{\"check\":\"" << JsonEscape(f.check) << "\",\"path\":\""
        << JsonEscape(f.path) << "\",\"line\":" << f.line
        << ",\"message\":\"" << JsonEscape(f.message) << "\",\"suppressed\":"
        << (f.suppressed ? "true" : "false") << "}";
  }
  const size_t active = CountActive(findings);
  out << "],\"summary\":{\"files\":" << project.files.size()
      << ",\"active\":" << active
      << ",\"suppressed\":" << findings.size() - active << "}}";
  return out.str();
}

std::string RenderSarif(const Project& project,
                        const std::vector<Finding>& findings) {
  (void)project;
  std::ostringstream out;
  out << "{\"$schema\":"
         "\"https://json.schemastore.org/sarif-2.1.0.json\","
         "\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{"
         "\"name\":\"sqmlint\",\"version\":\"2.0.0\","
         "\"informationUri\":\"docs/STATIC_ANALYSIS.md\",\"rules\":[";
  bool first = true;
  for (const Check& check : AllChecks()) {
    if (!first) out << ",";
    first = false;
    out << "{\"id\":\"" << JsonEscape(check.name)
        << "\",\"shortDescription\":{\"text\":\""
        << JsonEscape(check.description) << "\"}}";
  }
  out << "]}},\"results\":[";
  for (size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    if (i > 0) out << ",";
    out << "{\"ruleId\":\"" << JsonEscape(f.check) << "\",\"level\":\""
        << (f.suppressed ? "note" : "error") << "\",\"message\":{\"text\":\""
        << JsonEscape(f.message) << "\"},\"locations\":[{"
        << "\"physicalLocation\":{\"artifactLocation\":{\"uri\":\""
        << JsonEscape(f.path) << "\"},\"region\":{\"startLine\":"
        << (f.line > 0 ? f.line : 1) << "}}}]";
    if (f.suppressed) {
      out << ",\"suppressions\":[{\"kind\":\"inSource\"}]";
    }
    out << "}";
  }
  out << "]}]}";
  return out.str();
}

}  // namespace sqmlint
