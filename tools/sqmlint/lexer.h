#ifndef SQM_TOOLS_SQMLINT_LEXER_H_
#define SQM_TOOLS_SQMLINT_LEXER_H_

#include <string>
#include <vector>

namespace sqmlint {

/// Token categories sqmlint distinguishes. Comments are not tokens: the
/// lexer consumes them and reports them through the Comment callback list,
/// which is where suppression directives come from. String and char
/// literals are single tokens, so identifier-based checks never fire on
/// text inside a literal (fixture snippets embedded as raw strings in the
/// linter's own tests stay inert).
enum class TokenKind {
  kIdentifier,  ///< Identifiers and keywords; C++ keywords are not split out.
  kNumber,
  kString,  ///< Includes raw strings R"( ... )".
  kChar,
  kPunct,  ///< Operators and punctuation, longest-match ("::", "->", "+=").
};

struct Token {
  TokenKind kind;
  std::string text;
  int line = 0;  ///< 1-based.
  int col = 0;   ///< 1-based.
};

/// A comment the lexer consumed, with its line extent ("//" comments have
/// begin_line == end_line; block comments may span lines).
struct Comment {
  std::string text;  ///< Without the delimiters.
  int begin_line = 0;
  int end_line = 0;
};

struct LexResult {
  std::vector<Token> tokens;
  std::vector<Comment> comments;
};

/// Tokenizes C++ source. This is a lossy, analysis-oriented lexer: it keeps
/// identifiers, numbers, literals and punctuation with line numbers, and
/// routes comments to the side. It understands escapes, raw strings and
/// digit separators well enough to never misparse literal contents as code.
LexResult Lex(const std::string& source);

}  // namespace sqmlint

#endif  // SQM_TOOLS_SQMLINT_LEXER_H_
