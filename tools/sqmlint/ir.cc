#include "sqmlint/ir.h"

#include <set>

#include "sqmlint/checker.h"

namespace sqmlint {
namespace {

bool IsPunct(const Token& t, const char* text) {
  return t.kind == TokenKind::kPunct && t.text == text;
}
bool IsIdent(const Token& t) { return t.kind == TokenKind::kIdentifier; }

const std::set<std::string>& ControlKeywords() {
  static const std::set<std::string> kWords = {
      "if",     "for",    "while",  "switch",   "catch",  "return",
      "sizeof", "co_await", "co_return", "co_yield", "throw", "new",
      "delete", "static_assert", "alignof",  "decltype", "typeid",
      "else",   "do",     "case",   "default",  "goto"};
  return kWords;
}

/// Words that can trail a parameter list before the body brace.
const std::set<std::string>& SignatureTrailerWords() {
  static const std::set<std::string> kWords = {
      "const",   "noexcept", "override", "final",
      "mutable", "volatile", "try",      "requires"};
  return kWords;
}

}  // namespace

size_t SkipParenGroup(const std::vector<Token>& toks, size_t open) {
  int depth = 0;
  for (size_t i = open; i < toks.size(); ++i) {
    if (IsPunct(toks[i], "(")) ++depth;
    if (IsPunct(toks[i], ")")) {
      --depth;
      if (depth == 0) return i + 1;
    }
  }
  return toks.size();
}

std::vector<TokenRange> SplitTopLevelArgs(const std::vector<Token>& toks,
                                          TokenRange inside) {
  std::vector<TokenRange> args;
  if (inside.empty()) return args;
  int paren = 0, bracket = 0, brace = 0, angle = 0;
  size_t start = inside.begin;
  for (size_t i = inside.begin; i < inside.end; ++i) {
    const Token& t = toks[i];
    if (t.kind == TokenKind::kPunct) {
      if (t.text == "(") ++paren;
      if (t.text == ")") --paren;
      if (t.text == "[") ++bracket;
      if (t.text == "]") --bracket;
      if (t.text == "{") ++brace;
      if (t.text == "}") --brace;
      // Heuristic template depth: '<' only counts after an identifier
      // (Foo<...>), so comparisons like `a < b` do not open a level.
      if (t.text == "<" && i > inside.begin && IsIdent(toks[i - 1])) ++angle;
      if (t.text == ">" && angle > 0) --angle;
      if (t.text == ">>" && angle > 0) angle = angle >= 2 ? angle - 2 : 0;
      if (t.text == "," && paren == 0 && bracket == 0 && brace == 0 &&
          angle == 0) {
        args.push_back(TokenRange{start, i});
        start = i + 1;
        continue;
      }
    }
  }
  args.push_back(TokenRange{start, inside.end});
  return args;
}

namespace {

/// Extracts the parameter name of one declaration range: the last
/// identifier that is not part of a template argument and is followed by
/// nothing, '=', or '[' — `const std::vector<Field::Element>& shares`
/// yields "shares", `size_t n = 4` yields "n", an unnamed `Element*`
/// yields "" when the only identifiers look like the type.
std::string ParamName(const std::vector<Token>& toks, TokenRange range) {
  // Trim a default-value suffix.
  size_t end = range.end;
  int depth = 0;
  for (size_t i = range.begin; i < range.end; ++i) {
    const Token& t = toks[i];
    if (t.kind != TokenKind::kPunct) continue;
    if (t.text == "(" || t.text == "[" || t.text == "{") ++depth;
    if (t.text == ")" || t.text == "]" || t.text == "}") --depth;
    if (t.text == "=" && depth == 0) {
      end = i;
      break;
    }
  }
  // Walk back over array brackets.
  while (end > range.begin && IsPunct(toks[end - 1], "]")) {
    size_t j = end - 1;
    int b = 0;
    while (j > range.begin) {
      if (IsPunct(toks[j], "]")) ++b;
      if (IsPunct(toks[j], "[")) {
        --b;
        if (b == 0) break;
      }
      --j;
    }
    end = j;
  }
  if (end == range.begin) return "";
  const Token& last = toks[end - 1];
  if (!IsIdent(last)) return "";
  // `Foo<T> x` is fine; a lone type name (`const Element*`) has its last
  // identifier directly preceded by :: (qualified type) or followed by *
  // or & — those trimmed forms end with punctuation, so the remaining
  // ambiguity (`Element` as the whole declaration) is accepted as a name:
  // a false name on an unnamed parameter is inert unless the body uses
  // the same spelling, which cannot refer to a parameter that has none.
  if (end - 1 > range.begin && IsPunct(toks[end - 2], "::")) return "";
  return last.text;
}

/// True when the identifier at `i` begins a plausible function declarator:
/// it is not a control keyword and not a call-shaped use (preceded by
/// '.', '->', template '<', etc. is handled by the caller's scan).
bool PlausibleName(const std::vector<Token>& toks, size_t i) {
  if (!IsIdent(toks[i])) return false;
  if (ControlKeywords().count(toks[i].text) > 0) return false;
  return true;
}

}  // namespace

std::vector<FunctionIR> BuildFileIR(const SourceFile& file) {
  const std::vector<Token>& toks = file.tokens;
  std::vector<FunctionIR> functions;

  // --- Pass 1: find function definitions: name '(' params ')' trailer '{'.
  for (size_t i = 0; i < toks.size(); ++i) {
    if (!PlausibleName(toks, i)) continue;
    if (i + 1 >= toks.size() || !IsPunct(toks[i + 1], "(")) continue;
    // `operator()` overloads and macro-continuation noise are skipped by
    // requiring the previous token to not be 'operator' or '#'.
    if (i > 0 && IsIdent(toks[i - 1]) &&
        (toks[i - 1].text == "operator" || toks[i - 1].text == "define")) {
      continue;
    }
    // A call used as a value (preceded by '=', '(', ',', 'return', an
    // operator...) is not a definition; definitions are preceded by a
    // type-ish token, '::', '}', ';', '{', or nothing. Cheap filter: the
    // previous token must not be a punct that implies an expression.
    if (i > 0 && toks[i - 1].kind == TokenKind::kPunct) {
      static const std::set<std::string> kDefPreceders = {"}", ";", "{", "::",
                                                          "*", "&", ">"};
      if (kDefPreceders.count(toks[i - 1].text) == 0) continue;
    }
    if (i > 0 && IsIdent(toks[i - 1]) &&
        ControlKeywords().count(toks[i - 1].text) > 0) {
      continue;
    }

    const size_t params_open = i + 1;
    const size_t params_close_past = SkipParenGroup(toks, params_open);
    if (params_close_past >= toks.size()) continue;

    // Scan the signature trailer for the body '{'. Constructor initializer
    // lists contain parenthesized and braced initializers; follow them.
    size_t j = params_close_past;
    bool is_def = false;
    bool in_init_list = false;
    int guard = 0;
    while (j < toks.size() && guard++ < 4096) {
      const Token& t = toks[j];
      if (IsPunct(t, ";")) break;           // Declaration only.
      if (IsPunct(t, "{")) {
        if (in_init_list && j + 0 < toks.size()) {
          // A braced member initializer `field_{x}` — skip the group.
          int depth = 0;
          while (j < toks.size()) {
            if (IsPunct(toks[j], "{")) ++depth;
            if (IsPunct(toks[j], "}")) {
              --depth;
              if (depth == 0) break;
            }
            ++j;
          }
          ++j;
          // After a braced initializer, a ',' continues the list and a
          // '{' begins the body; the loop handles both.
          in_init_list = j < toks.size() && IsPunct(toks[j], ",");
          if (!in_init_list && j < toks.size() && IsPunct(toks[j], "{")) {
            is_def = true;
          }
          if (is_def) break;
          continue;
        }
        is_def = true;
        break;
      }
      if (IsPunct(t, "(")) {                 // Initializer `field_(x)`.
        j = SkipParenGroup(toks, j);
        continue;
      }
      if (IsPunct(t, ":")) {
        in_init_list = true;
        ++j;
        continue;
      }
      if (IsPunct(t, "=")) {
        // `= default` / `= delete` / `= 0`; also rejects assignments,
        // which can never precede a body brace.
        break;
      }
      if (t.kind == TokenKind::kIdentifier || t.kind == TokenKind::kPunct) {
        // const/noexcept/override, '->' trailing return types, '&&'
        // ref-qualifiers, attribute brackets, template arguments.
        if (t.kind == TokenKind::kIdentifier &&
            SignatureTrailerWords().count(t.text) == 0 && !in_init_list &&
            !(j > 0 && (IsPunct(toks[j - 1], "->") ||
                        IsPunct(toks[j - 1], "::") ||
                        IsPunct(toks[j - 1], "<") ||
                        IsPunct(toks[j - 1], ",") ||
                        IsIdent(toks[j - 1])))) {
          break;  // Two adjacent non-trailer identifiers: not a signature.
        }
        ++j;
        continue;
      }
      break;
    }
    if (!is_def || j >= toks.size() || !IsPunct(toks[j], "{")) continue;

    FunctionIR fn;
    fn.name = toks[i].text;
    fn.line = toks[i].line;
    fn.file = &file;
    if (i >= 2 && IsPunct(toks[i - 1], "::") && IsIdent(toks[i - 2])) {
      fn.owner = toks[i - 2].text;
    }
    // Parameters.
    if (params_close_past > params_open + 2) {
      const TokenRange inside{params_open + 1, params_close_past - 1};
      if (!(inside.end - inside.begin == 1 && IsIdent(toks[inside.begin]) &&
            toks[inside.begin].text == "void")) {
        for (const TokenRange& arg : SplitTopLevelArgs(toks, inside)) {
          fn.params.push_back(ParamName(toks, arg));
        }
      }
    }
    // Body extent.
    int depth = 0;
    size_t body_end = j;
    for (size_t k = j; k < toks.size(); ++k) {
      if (IsPunct(toks[k], "{")) ++depth;
      if (IsPunct(toks[k], "}")) {
        --depth;
        if (depth == 0) {
          body_end = k;
          break;
        }
      }
    }
    fn.body = TokenRange{j + 1, body_end};
    functions.push_back(std::move(fn));
    // Continue scanning from inside the body: nested definitions are not
    // recovered (lambdas fold into the enclosing function), but the next
    // top-level definition must not be skipped, so resume after '{'.
    i = j;
  }

  // Functions found inside another function's body range are artifacts of
  // the heuristic (local structs, lambdas assigned through macros): drop
  // any function whose name token lies inside a previously accepted body.
  // The scan order above already avoids most; keep it simple and cheap.

  // --- Pass 2: per function, recover assigns / calls / returns.
  for (FunctionIR& fn : functions) {
    const TokenRange body = fn.body;
    for (size_t k = body.begin; k < body.end; ++k) {
      const Token& t = toks[k];
      // return <expr> ;
      if (IsIdent(t) && t.text == "return") {
        size_t e = k + 1;
        int depth = 0;
        while (e < body.end) {
          if (IsPunct(toks[e], "(") || IsPunct(toks[e], "[") ||
              IsPunct(toks[e], "{")) {
            ++depth;
          }
          if (IsPunct(toks[e], ")") || IsPunct(toks[e], "]") ||
              IsPunct(toks[e], "}")) {
            --depth;
          }
          if (depth <= 0 && IsPunct(toks[e], ";")) break;
          ++e;
        }
        if (e > k + 1) {
          fn.assigns.push_back(Assign{"@ret", TokenRange{k + 1, e}, t.line});
        }
        continue;
      }
      // Range-for binding: for ( decl : container )
      if (IsIdent(t) && t.text == "for" && k + 1 < body.end &&
          IsPunct(toks[k + 1], "(")) {
        const size_t close_past = SkipParenGroup(toks, k + 1);
        int depth = 0;
        size_t colon = 0;
        for (size_t m = k + 1; m + 1 < close_past; ++m) {
          if (IsPunct(toks[m], "(")) ++depth;
          if (IsPunct(toks[m], ")")) --depth;
          if (depth == 1 && IsPunct(toks[m], ":") &&
              !(m > 0 && IsPunct(toks[m - 1], ":")) &&
              !(m + 1 < close_past && IsPunct(toks[m + 1], ":"))) {
            colon = m;
            break;
          }
        }
        if (colon != 0) {
          // Loop variable: last identifier before ':'.
          size_t v = colon;
          while (v > k + 2 && !IsIdent(toks[v - 1])) --v;
          if (v > k + 2 && IsIdent(toks[v - 1])) {
            fn.assigns.push_back(Assign{toks[v - 1].text,
                                        TokenRange{colon + 1, close_past - 1},
                                        toks[v - 1].line});
          }
        }
        continue;
      }
      // Assignment / declaration-with-initializer: ident [indexes] op= rhs ;
      if (t.kind == TokenKind::kPunct &&
          (t.text == "=" || t.text == "+=" || t.text == "-=" ||
           t.text == "*=" || t.text == "/=" || t.text == "%=" ||
           t.text == "|=" || t.text == "&=" || t.text == "^=")) {
        // Find the lhs identifier: either directly before, or before a
        // bracket group `x[i] = ...`, or before a member chain
        // `x.field = ...` (taint the base object conservatively).
        size_t L = k;
        while (L > body.begin && IsPunct(toks[L - 1], "]")) {
          int b = 0;
          size_t m = L - 1;
          while (m > body.begin) {
            if (IsPunct(toks[m], "]")) ++b;
            if (IsPunct(toks[m], "[")) {
              --b;
              if (b == 0) break;
            }
            --m;
          }
          L = m;
        }
        std::string lhs;
        if (L > body.begin && IsIdent(toks[L - 1])) {
          lhs = toks[L - 1].text;
          // Member chain: walk to the base object.
          size_t m = L - 1;
          while (m >= 2 && (IsPunct(toks[m - 1], ".") ||
                            IsPunct(toks[m - 1], "->")) &&
                 IsIdent(toks[m - 2])) {
            m -= 2;
            lhs = toks[m].text;
          }
        }
        if (lhs.empty()) continue;
        size_t e = k + 1;
        int depth = 0;
        while (e < body.end) {
          if (IsPunct(toks[e], "(") || IsPunct(toks[e], "[") ||
              IsPunct(toks[e], "{")) {
            ++depth;
          }
          if (IsPunct(toks[e], ")") || IsPunct(toks[e], "]") ||
              IsPunct(toks[e], "}")) {
            --depth;
          }
          if (depth <= 0 &&
              (IsPunct(toks[e], ";") || IsPunct(toks[e], ","))) {
            break;
          }
          if (depth < 0) break;
          ++e;
        }
        if (e > k + 1) {
          fn.assigns.push_back(Assign{lhs, TokenRange{k + 1, e}, t.line});
        }
        continue;
      }
      // Call site: ident '(' ... ')', excluding control keywords and
      // definitions (we are inside a body, so every ident '(' is a call
      // or a declaration of a local; locals-with-ctor-args are rare in
      // this codebase and read as calls, which only widens analysis).
      if (IsIdent(t) && ControlKeywords().count(t.text) == 0 &&
          k + 1 < body.end && IsPunct(toks[k + 1], "(")) {
        CallSite call;
        call.callee = t.text;
        call.line = t.line;
        call.name_token = k;
        if (k > body.begin) {
          const Token& prev = toks[k - 1];
          call.member = IsPunct(prev, ".") || IsPunct(prev, "->");
          call.scoped = IsPunct(prev, "::");
          if ((call.member || call.scoped) && k >= 2 && IsIdent(toks[k - 2])) {
            call.qualifier = toks[k - 2].text;
          }
        }
        const size_t close_past = SkipParenGroup(toks, k + 1);
        if (close_past > k + 2 && close_past <= body.end + 1) {
          const TokenRange inside{k + 2, close_past - 1};
          if (!inside.empty()) {
            for (const TokenRange& arg : SplitTopLevelArgs(toks, inside)) {
              call.args.push_back(CallArg{arg});
            }
          }
        }
        fn.calls.push_back(std::move(call));
        continue;
      }
    }
  }
  return functions;
}

}  // namespace sqmlint
