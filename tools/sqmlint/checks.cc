#include <array>
#include <set>
#include <string>
#include <vector>

#include "sqmlint/checker.h"

namespace sqmlint {
namespace {

using Tokens = std::vector<Token>;

bool IsPunct(const Token& token, const char* text) {
  return token.kind == TokenKind::kPunct && token.text == text;
}
bool IsIdent(const Token& token) {
  return token.kind == TokenKind::kIdentifier;
}

/// Index just past the ')' matching the '(' at `open`; tokens.size() when
/// unbalanced.
size_t SkipParens(const Tokens& toks, size_t open) {
  int depth = 0;
  for (size_t i = open; i < toks.size(); ++i) {
    if (IsPunct(toks[i], "(")) ++depth;
    if (IsPunct(toks[i], ")")) {
      --depth;
      if (depth == 0) return i + 1;
    }
  }
  return toks.size();
}

void Report(std::vector<Finding>* findings, const char* check,
            const SourceFile& file, int line, std::string message) {
  Finding finding;
  finding.check = check;
  finding.path = file.path;
  finding.line = line;
  finding.message = std::move(message);
  findings->push_back(std::move(finding));
}

// ---------------------------------------------------------------------------
// unchecked-status: a call to a function declared to return Status or
// Result<T>, used as a bare expression statement (its value discarded).
// The compiler-side half of this check is the [[nodiscard]] attribute on
// Status/Result in core/status.h; this pass keeps the rule enforced even
// in builds that swallow warnings, and localizes the diagnostic.
// ---------------------------------------------------------------------------
void CheckUncheckedStatus(const Project& project, const SourceFile& file,
                          std::vector<Finding>* findings) {
  const Tokens& toks = file.tokens;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (!IsIdent(toks[i])) continue;
    // Statement start: after ; { } ), after else/do, or at file start.
    // (':' is deliberately not a start: it is usually the ternary colon,
    // whose value is consumed — label statements are the rare loss.)
    bool starts = i == 0;
    if (i > 0) {
      const Token& prev = toks[i - 1];
      starts = IsPunct(prev, ";") || IsPunct(prev, "{") ||
               IsPunct(prev, "}") || IsPunct(prev, ")") ||
               (IsIdent(prev) && (prev.text == "else" || prev.text == "do"));
      // `(void)Foo();` is an explicit, intentional discard.
      if (IsPunct(prev, ")") && i >= 3 && IsPunct(toks[i - 3], "(") &&
          IsIdent(toks[i - 2]) && toks[i - 2].text == "void") {
        starts = false;
      }
    }
    if (!starts) continue;

    // Identifier chain: id ((:: | . | ->) id)* then '(' args ')' ';'.
    size_t j = i;
    std::string last = toks[j].text;
    while (j + 2 < toks.size() &&
           (IsPunct(toks[j + 1], "::") || IsPunct(toks[j + 1], ".") ||
            IsPunct(toks[j + 1], "->")) &&
           IsIdent(toks[j + 2])) {
      j += 2;
      last = toks[j].text;
    }
    if (j + 1 >= toks.size() || !IsPunct(toks[j + 1], "(")) continue;
    const size_t after = SkipParens(toks, j + 1);
    if (after >= toks.size() || !IsPunct(toks[after], ";")) continue;
    if (project.status_functions.count(last) == 0) continue;
    Report(findings, "unchecked-status", file, toks[j].line,
           "result of '" + last +
               "' (returns Status/Result) is discarded; check it, propagate "
               "it, or make the discard explicit with (void)");
  }
}

// ---------------------------------------------------------------------------
// secret-taint: identifiers from the secret lexicon (shares, sub-shares,
// masks, raw noise samples — values that must stay inside the MPC
// boundary) appearing in the argument region of a logging / tracing /
// serialization sink. src/testing/ is the allowlisted boundary: the
// adversarial harness logs tampered wire payloads by design.
// ---------------------------------------------------------------------------
bool IsSecretIdentifier(const std::string& identifier) {
  static const std::set<std::string> kSecretWords = {
      "share", "shares", "subshare", "subshares", "secret", "secrets",
      "mask",  "masks"};
  const std::vector<std::string> words = IdentifierWords(identifier);
  bool raw = false, noise = false, sample = false;
  for (const std::string& word : words) {
    if (kSecretWords.count(word) > 0) return true;
    raw = raw || word == "raw";
    noise = noise || word == "noise";
    sample = sample || word == "sample" || word == "samples";
  }
  return (raw || noise) && sample;
}

void CheckSecretTaint(const Project& /*project*/, const SourceFile& file,
                      std::vector<Finding>* findings) {
  if (PathInModule(file.path, "src/testing/")) return;
  static const std::set<std::string> kStatementSinks = {
      "SQM_LOG", "SQM_LOG_IF", "SQM_VLOG", "printf", "fprintf",
      "puts",    "fputs",      "cout",     "cerr",   "clog"};
  static const std::set<std::string> kMemberCallSinks = {"AddArg", "Field"};
  static const std::set<std::string> kMacroCallSinks = {
      "SQM_OBS_COUNTER_ADD", "SQM_OBS_COUNTER_INC", "SQM_OBS_GAUGE_SET",
      "SQM_OBS_HISTOGRAM_RECORD"};

  const Tokens& toks = file.tokens;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (!IsIdent(toks[i])) continue;
    const std::string& name = toks[i].text;

    size_t begin = 0, end = 0;  // Argument region [begin, end).
    if (kStatementSinks.count(name) > 0) {
      // Scan to the terminating ';' at the statement's paren depth.
      begin = i + 1;
      int depth = 0;
      size_t j = begin;
      for (; j < toks.size(); ++j) {
        if (IsPunct(toks[j], "(")) ++depth;
        if (IsPunct(toks[j], ")")) --depth;
        if (depth < 0) break;
        if (depth == 0 && IsPunct(toks[j], ";")) break;
      }
      end = j;
    } else if (kMemberCallSinks.count(name) > 0 || kMacroCallSinks.count(name) > 0) {
      if (kMemberCallSinks.count(name) > 0) {
        if (i == 0 || !(IsPunct(toks[i - 1], ".") ||
                        IsPunct(toks[i - 1], "->"))) {
          continue;  // sqm::Field the class, not JsonWriter::Field.
        }
      }
      if (i + 1 >= toks.size() || !IsPunct(toks[i + 1], "(")) continue;
      begin = i + 2;
      end = SkipParens(toks, i + 1);
      if (end > begin) --end;  // Drop the closing ')'.
    } else {
      continue;
    }

    for (size_t j = begin; j < end && j < toks.size(); ++j) {
      if (!IsIdent(toks[j])) continue;
      if (!IsSecretIdentifier(toks[j].text)) continue;
      Report(findings, "secret-taint", file, toks[j].line,
             "secret-lexicon identifier '" + toks[j].text +
                 "' reaches sink '" + name +
                 "'; shares, masks and raw noise samples must not be "
                 "logged or serialized outside the MPC boundary "
                 "(src/testing/ is the allowlisted harness)");
      break;  // One finding per sink region.
    }
  }
}

// ---------------------------------------------------------------------------
// rng-discipline: all randomness flows through sqm::Rng (src/sampling/);
// std engines and libc rand are banned elsewhere, and protocol-
// deterministic modules must not read wall-clock time (same transcript in,
// same transcript out — the replay and fuzz harnesses depend on it).
// ---------------------------------------------------------------------------
void CheckRngDiscipline(const Project& /*project*/, const SourceFile& file,
                        std::vector<Finding>* findings) {
  static const std::set<std::string> kEngines = {
      "mt19937",        "mt19937_64",    "minstd_rand", "minstd_rand0",
      "default_random_engine", "random_device", "ranlux24", "ranlux48",
      "ranlux24_base",  "ranlux48_base", "knuth_b"};
  static const std::set<std::string> kRandCalls = {
      "rand", "srand", "rand_r", "drand48", "lrand48", "mrand48", "random"};
  static const std::set<std::string> kWallClockAnywhere = {"system_clock",
                                                           "gettimeofday"};
  static const std::set<std::string> kWallClockCalls = {
      "time",  "clock",   "localtime", "gmtime",
      "mktime", "ctime",  "asctime",   "strftime"};
  static const char* const kDeterministicModules[] = {
      "src/mpc/",  "src/poly/", "src/dp/",
      "src/math/", "src/vfl/",  "src/core/", "src/sampling/"};

  const bool in_sampling = PathInModule(file.path, "src/sampling/");
  bool deterministic = false;
  for (const char* module : kDeterministicModules) {
    deterministic = deterministic || PathInModule(file.path, module);
  }

  const Tokens& toks = file.tokens;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (!IsIdent(toks[i])) continue;
    const std::string& name = toks[i].text;
    const bool call_form = i + 1 < toks.size() && IsPunct(toks[i + 1], "(");
    const bool member = i > 0 && (IsPunct(toks[i - 1], ".") ||
                                  IsPunct(toks[i - 1], "->"));

    if (!in_sampling && kEngines.count(name) > 0) {
      Report(findings, "rng-discipline", file, toks[i].line,
             "'" + name +
                 "' outside src/sampling/: all randomness must flow "
                 "through sqm::Rng so runs stay seed-reproducible");
      continue;
    }
    if (!in_sampling && kRandCalls.count(name) > 0 && call_form && !member) {
      Report(findings, "rng-discipline", file, toks[i].line,
             "libc '" + name +
                 "()' outside src/sampling/: use sqm::Rng (seeded, "
                 "reproducible, unbiased) instead");
      continue;
    }
    if (kWallClockAnywhere.count(name) > 0) {
      Report(findings, "rng-discipline", file, toks[i].line,
             "wall-clock '" + name +
                 "' is banned: protocol code uses the simulated clock or "
                 "steady_clock; wall time breaks transcript determinism");
      continue;
    }
    if (deterministic && kWallClockCalls.count(name) > 0 && call_form &&
        !member) {
      Report(findings, "rng-discipline", file, toks[i].line,
             "wall-clock call '" + name +
                 "()' in a protocol-deterministic module; the transcript "
                 "replay and schedule-fuzz invariants require identical "
                 "re-runs");
    }
  }
}

// ---------------------------------------------------------------------------
// field-capacity: raw + - * % on values declared Field::Element bypasses
// the checked field ops (Field::Add/Sub/Mul/Neg). p = 2^61 - 1 residues
// wrap silently under native uint64 arithmetic, corrupting results and
// invalidating the sensitivity analysis. src/mpc/field.cc implements the
// checked ops and is the one place raw arithmetic is allowed.
// ---------------------------------------------------------------------------
void CheckFieldCapacity(const Project& /*project*/, const SourceFile& file,
                        std::vector<Finding>* findings) {
  if (PathInModule(file.path, "src/mpc/field.cc")) return;
  const Tokens& toks = file.tokens;

  // File-local alias `using Element = ...` makes bare `Element` a field
  // type; otherwise only the qualified spelling (or mpc sources) count.
  bool element_alias = PathInModule(file.path, "src/mpc/");
  for (size_t i = 0; i + 2 < toks.size() && !element_alias; ++i) {
    element_alias = IsIdent(toks[i]) && toks[i].text == "using" &&
                    IsIdent(toks[i + 1]) && toks[i + 1].text == "Element" &&
                    IsPunct(toks[i + 2], "=");
  }

  std::set<std::string> scalars;
  std::set<std::string> vectors;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (!IsIdent(toks[i])) continue;
    // `Field :: Element name` or (with the alias) `Element name`.
    if (toks[i].text == "Element") {
      const bool qualified = i >= 2 && IsPunct(toks[i - 1], "::") &&
                             IsIdent(toks[i - 2]) &&
                             toks[i - 2].text == "Field";
      const bool bare =
          element_alias && (i == 0 || !IsPunct(toks[i - 1], "::"));
      if (!qualified && !bare) continue;
      size_t j = i + 1;
      while (j < toks.size() && IsPunct(toks[j], "&")) ++j;
      if (j < toks.size() && IsIdent(toks[j]) &&
          (j + 1 >= toks.size() || !IsPunct(toks[j + 1], "("))) {
        scalars.insert(toks[j].text);
      }
      continue;
    }
    // `vector < ... Element ... > name` — skipped when the element type is
    // a pointer ('*' in the template region): indexing those yields
    // pointers, not field values.
    if (toks[i].text == "vector" && i + 1 < toks.size() &&
        IsPunct(toks[i + 1], "<")) {
      int depth = 0;
      bool has_element = false;
      bool has_pointer = false;
      size_t j = i + 1;
      for (; j < toks.size(); ++j) {
        if (IsPunct(toks[j], "<")) ++depth;
        if (IsPunct(toks[j], ">")) --depth;
        if (IsPunct(toks[j], ">>")) depth -= 2;
        if (IsPunct(toks[j], "*")) has_pointer = true;
        if (IsIdent(toks[j]) && toks[j].text == "Element") {
          has_element = true;
        }
        if (depth <= 0 && j > i + 1) break;
      }
      if (!has_element || has_pointer) continue;
      size_t k = j + 1;
      while (k < toks.size() && IsPunct(toks[k], "&")) ++k;
      if (k < toks.size() && IsIdent(toks[k]) &&
          (k + 1 >= toks.size() || !IsPunct(toks[k + 1], "("))) {
        vectors.insert(toks[k].text);
      }
    }
  }
  if (scalars.empty() && vectors.empty()) return;

  // Walks back from `close` (a ']') to the identifier that owns the index
  // expression; empty string when the shape is more complex.
  auto index_base = [&](size_t close) -> std::string {
    int depth = 0;
    size_t i = close;
    while (true) {
      if (IsPunct(toks[i], "]")) ++depth;
      if (IsPunct(toks[i], "[")) {
        --depth;
        if (depth == 0) {
          if (i == 0) return "";
          if (IsIdent(toks[i - 1])) return toks[i - 1].text;
          if (IsPunct(toks[i - 1], "]")) {
            close = i - 1;  // Multi-dimensional: recurse one level out.
            i = close;
            depth = 0;
            continue;
          }
          return "";
        }
      }
      if (i == 0) return "";
      --i;
    }
  };

  static const std::set<std::string> kOps = {"+",  "-",  "*",  "%", "+=",
                                             "-=", "*=", "%=", "++", "--"};
  for (size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokenKind::kPunct || kOps.count(toks[i].text) == 0) {
      continue;
    }
    // A '*' not preceded by a value expression is a unary dereference, not
    // multiplication; only the binary form is field arithmetic.
    const bool deref =
        toks[i].text == "*" &&
        (i == 0 || (toks[i - 1].kind == TokenKind::kPunct &&
                    !IsPunct(toks[i - 1], "]") && !IsPunct(toks[i - 1], ")")));
    if (deref) continue;
    // `Element* a` / `const Element* a` is a pointer declarator: the token
    // to the left is the type name itself, which is never a field value.
    if (toks[i].text == "*" && i > 0 && IsIdent(toks[i - 1]) &&
        toks[i - 1].text == "Element") {
      continue;
    }
    std::string operand;
    if (i > 0) {
      if (IsIdent(toks[i - 1]) && scalars.count(toks[i - 1].text) > 0) {
        operand = toks[i - 1].text;
      } else if (IsPunct(toks[i - 1], "]")) {
        const std::string base = index_base(i - 1);
        if (vectors.count(base) > 0) operand = base + "[...]";
      }
    }
    if (operand.empty() && i + 1 < toks.size() && IsIdent(toks[i + 1])) {
      const std::string& right = toks[i + 1].text;
      if (scalars.count(right) > 0) {
        operand = right;
      } else if (vectors.count(right) > 0 && i + 2 < toks.size() &&
                 IsPunct(toks[i + 2], "[")) {
        operand = right + "[...]";
      }
    }
    if (operand.empty()) continue;
    Report(findings, "field-capacity", file, toks[i].line,
           "raw '" + toks[i].text + "' on Field::Element value '" + operand +
               "' bypasses the checked field ops; use "
               "Field::Add/Sub/Mul/Neg — native arithmetic wraps silently "
               "past p = 2^61 - 1 and breaks the sensitivity analysis");
  }
}

// ---------------------------------------------------------------------------
// mutex-annotation: src/net/ and src/obs/ are the concurrent modules; they
// must use the capability-annotated primitives from core/sync.h (raw std
// sync is invisible to clang's -Wthread-safety proof), and a file that
// declares a Mutex must carry SQM_GUARDED_BY annotations for the state the
// mutex protects.
// ---------------------------------------------------------------------------
void CheckMutexAnnotation(const Project& /*project*/, const SourceFile& file,
                          std::vector<Finding>* findings) {
  if (!PathInModule(file.path, "src/net/") &&
      !PathInModule(file.path, "src/obs/")) {
    return;
  }
  static const std::set<std::string> kRawSync = {
      "mutex",         "recursive_mutex",        "timed_mutex",
      "shared_mutex",  "condition_variable",     "condition_variable_any",
      "lock_guard",    "unique_lock",            "scoped_lock",
      "shared_lock"};

  const Tokens& toks = file.tokens;
  bool has_guarded_by = false;
  std::vector<size_t> mutex_decls;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (!IsIdent(toks[i])) continue;
    const std::string& name = toks[i].text;
    if (name == "SQM_GUARDED_BY" || name == "SQM_PT_GUARDED_BY" ||
        name == "SQM_REQUIRES") {
      has_guarded_by = true;
    }
    if (kRawSync.count(name) > 0 && i >= 2 && IsPunct(toks[i - 1], "::") &&
        IsIdent(toks[i - 2]) && toks[i - 2].text == "std") {
      Report(findings, "mutex-annotation", file, toks[i].line,
             "raw std::" + name +
                 " in an annotated module; use sqm::Mutex / MutexLock / "
                 "CondVar from core/sync.h so -Wthread-safety can prove "
                 "the locking discipline");
    }
    // `Mutex name ;` — a mutex member/variable declaration.
    if (name == "Mutex" && i + 2 < toks.size() && IsIdent(toks[i + 1]) &&
        IsPunct(toks[i + 2], ";")) {
      mutex_decls.push_back(i);
    }
  }
  if (!has_guarded_by) {
    for (size_t i : mutex_decls) {
      Report(findings, "mutex-annotation", file, toks[i].line,
             "Mutex '" + toks[i + 1].text +
                 "' declared but no SQM_GUARDED_BY / SQM_REQUIRES "
                 "annotation in this file; annotate the state the mutex "
                 "guards (core/thread_annotations.h)");
    }
  }
}

// ---------------------------------------------------------------------------
// socket-discipline: src/net/tcp/socket.{h,cc} is the single module allowed
// to issue raw socket syscalls — every other file must go through its
// Status-returning wrappers (TcpTransport never touches an fd directly).
// Inside the wrapper module the errno-returning calls must not be used as
// bare discarded statements: a swallowed setsockopt/shutdown error becomes
// a hung party instead of a diagnosable Status. `close` is exempt — the
// destructor's best-effort close has no caller to report to.
// ---------------------------------------------------------------------------
void CheckSocketDiscipline(const Project& /*project*/, const SourceFile& file,
                           std::vector<Finding>* findings) {
  static const std::set<std::string> kSocketCalls = {
      "socket",     "connect",    "accept",      "accept4",     "bind",
      "listen",     "send",       "sendto",      "sendmsg",     "recv",
      "recvfrom",   "recvmsg",    "setsockopt",  "getsockopt",  "getsockname",
      "getpeername", "shutdown",  "poll",        "select",      "fcntl"};

  const bool in_socket_module = PathInModule(file.path, "src/net/tcp/socket.");
  const Tokens& toks = file.tokens;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (!IsIdent(toks[i]) || kSocketCalls.count(toks[i].text) == 0) continue;
    if (i + 1 >= toks.size() || !IsPunct(toks[i + 1], "(")) continue;
    const std::string& name = toks[i].text;

    // Qualification: `x.send(...)` / `p->poll(...)` are member calls and
    // `std::bind(...)` is a namespaced non-syscall — neither is a raw
    // socket call. A bare global `::send(...)` is exactly the raw form.
    const bool member = i > 0 && (IsPunct(toks[i - 1], ".") ||
                                  IsPunct(toks[i - 1], "->"));
    const bool scoped = i > 0 && IsPunct(toks[i - 1], "::");
    const bool namespaced = scoped && i >= 2 && IsIdent(toks[i - 2]);
    if (member || namespaced) continue;

    if (!in_socket_module) {
      Report(findings, "socket-discipline", file, toks[i].line,
             "raw socket call '" + name +
                 "' outside src/net/tcp/socket.{h,cc}; go through the "
                 "Status-returning wrappers there — they own errno "
                 "translation, deadlines and fd lifetime");
      continue;
    }

    // Inside the wrapper module: the call's int/ssize_t result must be
    // consumed. Bare `::shutdown(fd, ...);` as a statement discards the
    // error. Mirrors the unchecked-status statement-start logic.
    const size_t start = scoped ? i - 1 : i;
    bool starts = start == 0;
    if (start > 0) {
      const Token& prev = toks[start - 1];
      starts = IsPunct(prev, ";") || IsPunct(prev, "{") ||
               IsPunct(prev, "}") || IsPunct(prev, ")") ||
               (IsIdent(prev) && (prev.text == "else" || prev.text == "do"));
      // `(void)::send(...);` is an explicit, intentional discard.
      if (IsPunct(prev, ")") && start >= 3 && IsPunct(toks[start - 3], "(") &&
          IsIdent(toks[start - 2]) && toks[start - 2].text == "void") {
        starts = false;
      }
    }
    if (!starts) continue;
    const size_t after = SkipParens(toks, i + 1);
    if (after >= toks.size() || !IsPunct(toks[after], ";")) continue;
    Report(findings, "socket-discipline", file, toks[i].line,
           "result of '" + name +
               "' is discarded; socket syscalls report failure through "
               "their return value — check it or make the discard "
               "explicit with (void)");
  }
}

// ---------------------------------------------------------------------------
// retry-discipline: a sleep-family call inside a loop in src/net/ must
// consult a backoff/deadline helper. A bare fixed sleep in a retry loop is
// how reconnect storms and unbounded waits are born: the dialer that
// hammers a dead peer every 50 ms forever, or the poll loop that never
// checks its deadline. Pacing is visible lexically — the loop header or
// the sleep statement names a backoff, deadline, remaining-time, window or
// jitter value (InterruptibleSleep, the dialer backoff, the threaded
// transport's exponential retry all do).
// ---------------------------------------------------------------------------
void CheckRetryDiscipline(const Project& /*project*/, const SourceFile& file,
                          std::vector<Finding>* findings) {
  if (!PathInModule(file.path, "src/net/")) return;
  static const std::set<std::string> kSleepCalls = {
      "sleep_for", "sleep_until", "usleep", "nanosleep", "sleep"};
  static const std::set<std::string> kPacingWords = {
      "backoff", "deadline", "remaining", "window", "jitter"};

  const Tokens& toks = file.tokens;
  auto has_pacing_word = [&](size_t begin, size_t end) {
    for (size_t j = begin; j < end && j < toks.size(); ++j) {
      if (!IsIdent(toks[j])) continue;
      for (const std::string& word : IdentifierWords(toks[j].text)) {
        if (kPacingWords.count(word) > 0) return true;
      }
    }
    return false;
  };

  for (size_t i = 0; i < toks.size(); ++i) {
    if (!IsIdent(toks[i]) || kSleepCalls.count(toks[i].text) == 0) continue;
    if (i + 1 >= toks.size() || !IsPunct(toks[i + 1], "(")) continue;

    // Walk the brace structure outward from the sleep; every enclosing
    // block whose owner is for/while/do marks the sleep as loop-resident,
    // and a pacing word in any such loop's header counts as consulted.
    bool in_loop = false;
    bool paced = false;
    int depth = 0;
    for (size_t k = i; k > 0;) {
      --k;
      if (IsPunct(toks[k], "}")) {
        ++depth;
        continue;
      }
      if (!IsPunct(toks[k], "{")) continue;
      if (depth > 0) {
        --depth;
        continue;
      }
      // toks[k] opens a block enclosing the sleep; classify its owner.
      if (k > 0 && IsPunct(toks[k - 1], ")")) {
        int pd = 0;
        size_t open = k - 1;
        while (open > 0) {
          if (IsPunct(toks[open], ")")) ++pd;
          if (IsPunct(toks[open], "(")) {
            --pd;
            if (pd == 0) break;
          }
          --open;
        }
        if (open > 0 && IsIdent(toks[open - 1]) &&
            (toks[open - 1].text == "for" ||
             toks[open - 1].text == "while")) {
          in_loop = true;
          paced = paced || has_pacing_word(open + 1, k - 1);
        }
      } else if (k > 0 && IsIdent(toks[k - 1]) && toks[k - 1].text == "do") {
        in_loop = true;
      }
    }
    if (!in_loop) continue;

    // The sleep's own statement also counts: `sleep_for(backoff)` or the
    // guarded `if (backoff > 0.0) sleep_for(...)` form.
    if (!paced) {
      size_t start = i;
      while (start > 0 && !IsPunct(toks[start - 1], ";") &&
             !IsPunct(toks[start - 1], "{") && !IsPunct(toks[start - 1], "}")) {
        --start;
      }
      size_t end = i;
      while (end < toks.size() && !IsPunct(toks[end], ";")) ++end;
      paced = has_pacing_word(start, end);
    }
    if (paced) continue;
    Report(findings, "retry-discipline", file, toks[i].line,
           "'" + toks[i].text +
               "' inside a loop with no backoff/deadline in sight; retry "
               "loops in src/net/ must pace themselves through a "
               "backoff/deadline/window helper (see InterruptibleSleep) or "
               "they become reconnect storms");
  }
}

// ---------------------------------------------------------------------------
// batch-discipline: the MPC hot paths (circuit evaluation, protocol
// multiply/open, the Beaver pool, the SQM driver) must not loop scalar
// Field::Add/Sub/Mul/Neg over an induction-indexed element — that is the
// pattern the span kernels (Field::AddVec/SubVec/MulVec/ScaleVec/
// MulAddVec/SumVec) and the Shamir *Batch entry points replaced. A scalar
// call in a counted loop whose arguments index by the loop variable is a
// de-vectorization regression; genuinely scalar sites carry
// // sqmlint:allow(batch-discipline).
// ---------------------------------------------------------------------------
void CheckBatchDiscipline(const Project& /*project*/, const SourceFile& file,
                          std::vector<Finding>* findings) {
  static const char* const kHotPaths[] = {
      "src/mpc/bgw.cc", "src/mpc/protocol.cc", "src/mpc/party_protocol.cc",
      "src/mpc/beaver.cc", "src/core/sqm.cc"};
  bool scoped = false;
  for (const char* path : kHotPaths) {
    scoped = scoped || PathInModule(file.path, path);
  }
  if (!scoped) return;

  static const std::set<std::string> kScalarOps = {"Add", "Sub", "Mul",
                                                   "Neg"};
  const Tokens& toks = file.tokens;
  std::set<size_t> reported;  // Token index of the op, to dedupe nesting.
  for (size_t i = 0; i < toks.size(); ++i) {
    if (!IsIdent(toks[i]) || toks[i].text != "for") continue;
    if (i + 1 >= toks.size() || !IsPunct(toks[i + 1], "(")) continue;
    const size_t header_end = SkipParens(toks, i + 1);  // Past ')'.

    // Classic counted for only: the header holds two top-level ';'.
    // Range-fors iterate values, not indices — nothing to flag there.
    size_t first_semi = 0;
    int semis = 0;
    {
      int depth = 0;
      for (size_t j = i + 1; j + 1 < header_end; ++j) {
        if (IsPunct(toks[j], "(")) ++depth;
        if (IsPunct(toks[j], ")")) --depth;
        if (depth == 1 && IsPunct(toks[j], ";")) {
          if (++semis == 1) first_semi = j;
        }
      }
    }
    if (semis != 2) continue;

    // Induction variable: the last identifier before '=' in the init
    // clause (`for (size_t k = 0; ...` -> k).
    std::string loop_var;
    for (size_t j = i + 2; j < first_semi; ++j) {
      if (IsIdent(toks[j]) && j + 1 < first_semi && IsPunct(toks[j + 1], "=")) {
        loop_var = toks[j].text;
      }
    }
    if (loop_var.empty()) continue;

    // Loop body: braced block (or single statement up to ';').
    size_t body_begin = header_end;
    size_t body_end = body_begin;
    if (body_begin < toks.size() && IsPunct(toks[body_begin], "{")) {
      int depth = 0;
      for (size_t j = body_begin; j < toks.size(); ++j) {
        if (IsPunct(toks[j], "{")) ++depth;
        if (IsPunct(toks[j], "}")) {
          if (--depth == 0) {
            body_end = j;
            break;
          }
        }
      }
    } else {
      while (body_end < toks.size() && !IsPunct(toks[body_end], ";")) {
        ++body_end;
      }
    }

    // Field::Op(...) whose argument region indexes by the loop variable.
    for (size_t j = body_begin; j + 3 < body_end; ++j) {
      if (!(IsIdent(toks[j]) && toks[j].text == "Field" &&
            IsPunct(toks[j + 1], "::") && IsIdent(toks[j + 2]) &&
            kScalarOps.count(toks[j + 2].text) > 0 &&
            IsPunct(toks[j + 3], "("))) {
        continue;
      }
      const size_t args_end = SkipParens(toks, j + 3);
      bool indexed = false;
      int brackets = 0;
      for (size_t k = j + 4; k + 1 < args_end; ++k) {
        if (IsPunct(toks[k], "[")) ++brackets;
        if (IsPunct(toks[k], "]")) --brackets;
        if (brackets > 0 && IsIdent(toks[k]) && toks[k].text == loop_var) {
          indexed = true;
          break;
        }
      }
      if (!indexed || reported.count(j + 2) > 0) continue;
      reported.insert(j + 2);
      Report(findings, "batch-discipline", file, toks[j + 2].line,
             "scalar Field::" + toks[j + 2].text + " indexed by loop "
             "variable '" + loop_var + "' in an MPC hot path; use the "
             "span kernels (Field::AddVec/SubVec/MulVec/ScaleVec/"
             "MulAddVec/SumVec) or the Shamir ShareBatch/ReconstructBatch "
             "entry points — element-wise loops forfeit the batched "
             "lazy-reduction fast path");
    }
  }
}

// ---------------------------------------------------------------------------
// obs-discipline: observability names are static identity, not data. The
// tracer and flight recorder buffer `const char*` names raw (no copy), and
// dynamic metric names explode registry cardinality — so the name argument
// of every SQM_OBS_* metric macro, SQM_FLIGHT_EVENT*, and Span declaration
// must be a string literal. Span/flight argument regions are exported into
// traces and telemetry snapshots that leave the process, so secret-lexicon
// identifiers must not appear there (the same rule secret-taint enforces
// on the metric macros and AddArg).
// ---------------------------------------------------------------------------
void CheckObsDiscipline(const Project& /*project*/, const SourceFile& file,
                        std::vector<Finding>* findings) {
  if (PathInModule(file.path, "src/testing/")) return;
  static const std::set<std::string> kNameFirstMacros = {
      "SQM_OBS_COUNTER_ADD", "SQM_OBS_COUNTER_INC", "SQM_OBS_GAUGE_SET",
      "SQM_OBS_HISTOGRAM_RECORD", "SQM_FLIGHT_EVENT", "SQM_FLIGHT_EVENT2"};

  // src/obs/ is where the macros and Span are DEFINED: their parameter
  // lists and forwarding bodies are not call sites, so the literal-name
  // rule only applies outside the module (the secret scan stays global).
  const bool in_obs_module = PathInModule(file.path, "src/obs/");

  const Tokens& toks = file.tokens;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (!IsIdent(toks[i])) continue;
    const std::string& name = toks[i].text;
    // The `#define NAME(...)` line itself is never a call site.
    if (i > 0 && IsIdent(toks[i - 1]) && toks[i - 1].text == "define") {
      continue;
    }

    const bool is_macro = kNameFirstMacros.count(name) > 0;
    // Span is only checked in declaration form `Span ident(...)` (with or
    // without a namespace qualifier before it): matching `Span(` directly
    // would trip on the constructor signatures in obs/trace.h.
    const bool is_span_decl = name == "Span" && i + 2 < toks.size() &&
                              IsIdent(toks[i + 1]) &&
                              IsPunct(toks[i + 2], "(");
    // AddArg member calls: secret scan only (the key is argument 1, and
    // annotation values routinely are variables).
    const bool is_add_arg =
        name == "AddArg" && i > 0 &&
        (IsPunct(toks[i - 1], ".") || IsPunct(toks[i - 1], "->"));

    size_t open;
    if (is_macro && i + 1 < toks.size() && IsPunct(toks[i + 1], "(")) {
      open = i + 1;
    } else if (is_span_decl) {
      open = i + 2;
    } else if (is_add_arg && i + 1 < toks.size() &&
               IsPunct(toks[i + 1], "(")) {
      open = i + 1;
    } else {
      continue;
    }
    const size_t end = SkipParens(toks, open);  // Just past ')'.
    if (end <= open + 1) continue;

    if (!is_add_arg && !in_obs_module && open + 1 < end &&
        toks[open + 1].kind != TokenKind::kString) {
      Report(findings, "obs-discipline", file, toks[i].line,
             "name passed to '" + name +
                 "' is not a string literal; observability names are "
                 "static identity (the tracer/flight buffers keep the "
                 "pointer raw, and dynamic metric names explode "
                 "cardinality)");
    }

    for (size_t j = open + 1; j + 1 < end; ++j) {
      if (!IsIdent(toks[j]) || !IsSecretIdentifier(toks[j].text)) continue;
      Report(findings, "obs-discipline", file, toks[j].line,
             "secret-lexicon identifier '" + toks[j].text +
                 "' reaches the exported argument region of '" + name +
                 "'; span annotations, flight events and metrics leave "
                 "the process via traces and telemetry snapshots");
      break;  // One secret finding per argument region.
    }
  }
}

}  // namespace

// Flow-engine checks, defined in flow_checks.cc over the interprocedural
// analysis that BuildProject precomputes.
void CheckTaintFlow(const Project& project, const SourceFile& file,
                    std::vector<Finding>* findings);
void CheckDpSpendCoverage(const Project& project, const SourceFile& file,
                          std::vector<Finding>* findings);
void CheckSecretBranch(const Project& project, const SourceFile& file,
                       std::vector<Finding>* findings);

const std::vector<Check>& AllChecks() {
  static const std::vector<Check> kChecks = {
      {"taint-flow",
       "interprocedural secret value (share/mask/triple/raw draw) reaching "
       "a log, obs-export or un-MACed wire sink",
       CheckTaintFlow},
      {"dp-spend-coverage",
       "sampler draw reachable from the SQM drivers with no accountant "
       "spend dominating it",
       CheckDpSpendCoverage},
      {"secret-branch",
       "secret-tainted value steering a branch, loop bound or array index "
       "in src/mpc/ outside constant-time helpers",
       CheckSecretBranch},
      {"unchecked-status",
       "discarded call result of a Status/Result-returning function",
       CheckUncheckedStatus},
      {"secret-taint",
       "secret-lexicon identifier flowing into a logging/serialization sink",
       CheckSecretTaint},
      {"rng-discipline",
       "std/libc randomness outside src/sampling/, wall clock in "
       "deterministic modules",
       CheckRngDiscipline},
      {"field-capacity",
       "raw arithmetic on Field::Element values bypassing checked field ops",
       CheckFieldCapacity},
      {"mutex-annotation",
       "raw std sync or unannotated Mutex state in src/net/ + src/obs/",
       CheckMutexAnnotation},
      {"socket-discipline",
       "raw socket syscalls outside src/net/tcp/socket.*, or their results "
       "discarded inside it",
       CheckSocketDiscipline},
      {"retry-discipline",
       "sleep inside a src/net/ loop without a backoff/deadline helper",
       CheckRetryDiscipline},
      {"batch-discipline",
       "element-wise scalar Field ops in MPC hot paths that the batched "
       "span kernels replace",
       CheckBatchDiscipline},
      {"obs-discipline",
       "non-literal observability names, or secret-lexicon identifiers in "
       "exported span/flight/metric argument regions",
       CheckObsDiscipline},
  };
  return kChecks;
}

}  // namespace sqmlint
