#include "sqmlint/lexer.h"

#include <cctype>

namespace sqmlint {
namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Multi-character punctuators the checks care about, longest first so the
/// greedy match below is correct.
const char* const kPuncts[] = {
    "<<=", ">>=", "...", "->*", "::", "->", "++", "--", "+=", "-=", "*=",
    "/=",  "%=",  "&=",  "|=",  "^=", "<<", ">>", "<=", ">=", "==", "!=",
    "&&",  "||",
};

}  // namespace

LexResult Lex(const std::string& src) {
  LexResult out;
  size_t i = 0;
  const size_t n = src.size();
  int line = 1;
  int col = 1;

  auto bump = [&](size_t count) {
    for (size_t k = 0; k < count && i < n; ++k, ++i) {
      if (src[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
  };

  while (i < n) {
    const char c = src[i];

    if (c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\f' ||
        c == '\v') {
      bump(1);
      continue;
    }

    // Backslash-newline is a line continuation (the multi-line macro
    // idiom): splice it away so a statement spanning continuations lexes
    // as one token stream and the IR pass sees it whole.
    if (c == '\\' && i + 1 < n &&
        (src[i + 1] == '\n' ||
         (src[i + 1] == '\r' && i + 2 < n && src[i + 2] == '\n'))) {
      bump(src[i + 1] == '\r' ? 3 : 2);
      continue;
    }

    // Line comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      const int begin_line = line;
      size_t j = i + 2;
      while (j < n && src[j] != '\n') ++j;
      out.comments.push_back(
          Comment{src.substr(i + 2, j - (i + 2)), begin_line, begin_line});
      bump(j - i);
      continue;
    }

    // Block comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      const int begin_line = line;
      size_t j = i + 2;
      while (j + 1 < n && !(src[j] == '*' && src[j + 1] == '/')) ++j;
      const size_t body_end = (j + 1 < n) ? j : n;
      const size_t skip = (j + 1 < n) ? j + 2 - i : n - i;
      std::string body = src.substr(i + 2, body_end - (i + 2));
      bump(skip);
      out.comments.push_back(Comment{std::move(body), begin_line, line});
      continue;
    }

    // Identifier — possibly a raw-string prefix (R", u8R", LR", ...).
    if (IsIdentStart(c)) {
      const int tline = line;
      const int tcol = col;
      size_t j = i;
      while (j < n && IsIdentChar(src[j])) ++j;
      std::string text = src.substr(i, j - i);
      const bool raw_prefix =
          j < n && src[j] == '"' && !text.empty() && text.back() == 'R' &&
          (text == "R" || text == "u8R" || text == "uR" || text == "UR" ||
           text == "LR");
      if (raw_prefix) {
        // R"delim( ... )delim"
        size_t k = j + 1;
        std::string delim;
        while (k < n && src[k] != '(') delim.push_back(src[k++]);
        const std::string closer = ")" + delim + "\"";
        size_t end = src.find(closer, k);
        end = (end == std::string::npos) ? n : end + closer.size();
        out.tokens.push_back(
            Token{TokenKind::kString, src.substr(i, end - i), tline, tcol});
        bump(end - i);
        continue;
      }
      out.tokens.push_back(
          Token{TokenKind::kIdentifier, std::move(text), tline, tcol});
      bump(j - i);
      continue;
    }

    // Number (pp-number: digits, letters, ', ., and exponent signs).
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(src[i + 1])))) {
      const int tline = line;
      const int tcol = col;
      size_t j = i;
      while (j < n) {
        const char d = src[j];
        if (IsIdentChar(d) || d == '.' || d == '\'') {
          ++j;
          continue;
        }
        if ((d == '+' || d == '-') && j > i) {
          const char prev = src[j - 1];
          if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
            ++j;
            continue;
          }
        }
        break;
      }
      out.tokens.push_back(
          Token{TokenKind::kNumber, src.substr(i, j - i), tline, tcol});
      bump(j - i);
      continue;
    }

    // String literal.
    if (c == '"') {
      const int tline = line;
      const int tcol = col;
      size_t j = i + 1;
      while (j < n && src[j] != '"') {
        if (src[j] == '\\' && j + 1 < n) ++j;
        ++j;
      }
      if (j < n) ++j;
      out.tokens.push_back(
          Token{TokenKind::kString, src.substr(i, j - i), tline, tcol});
      bump(j - i);
      continue;
    }

    // Char literal.
    if (c == '\'') {
      const int tline = line;
      const int tcol = col;
      size_t j = i + 1;
      while (j < n && src[j] != '\'') {
        if (src[j] == '\\' && j + 1 < n) ++j;
        ++j;
      }
      if (j < n) ++j;
      out.tokens.push_back(
          Token{TokenKind::kChar, src.substr(i, j - i), tline, tcol});
      bump(j - i);
      continue;
    }

    // Punctuator, longest match first.
    {
      const int tline = line;
      const int tcol = col;
      std::string text(1, c);
      for (const char* p : kPuncts) {
        const size_t len = std::char_traits<char>::length(p);
        if (src.compare(i, len, p) == 0) {
          text.assign(p);
          break;
        }
      }
      out.tokens.push_back(
          Token{TokenKind::kPunct, text, tline, tcol});
      bump(text.size());
    }
  }
  return out;
}

}  // namespace sqmlint
