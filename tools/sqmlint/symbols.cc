#include "sqmlint/symbols.h"

#include <algorithm>

#include "sqmlint/checker.h"

namespace sqmlint {

std::vector<std::string> ExtractQuotedIncludes(const std::string& content) {
  std::vector<std::string> includes;
  size_t pos = 0;
  while ((pos = content.find("#include", pos)) != std::string::npos) {
    size_t q1 = content.find_first_of("\"<\n", pos + 8);
    if (q1 == std::string::npos) break;
    if (content[q1] == '"') {
      const size_t q2 = content.find('"', q1 + 1);
      if (q2 != std::string::npos) {
        includes.push_back(content.substr(q1 + 1, q2 - q1 - 1));
        pos = q2 + 1;
        continue;
      }
    }
    pos = q1 + 1;
  }
  return includes;
}

bool PathEndsWith(const std::string& path, const std::string& suffix) {
  if (suffix.empty() || suffix.size() > path.size()) return false;
  if (path.compare(path.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return false;
  }
  if (path.size() == suffix.size()) return true;
  const char before = path[path.size() - suffix.size() - 1];
  return before == '/' || before == '\\';
}

SymbolTable SymbolTable::Build(const Project& project) {
  SymbolTable table;
  for (const SourceFile& file : project.files) {
    std::vector<FunctionIR> fns = BuildFileIR(file);
    for (FunctionIR& fn : fns) {
      table.by_name_[fn.name].push_back(table.functions_.size());
      table.functions_.push_back(std::move(fn));
    }
    for (const std::string& inc : ExtractQuotedIncludes(file.content)) {
      table.included_by_[inc].insert(file.path);
    }
  }
  // Call graph edges by callee name.
  table.callees_.resize(table.functions_.size());
  table.callers_.resize(table.functions_.size());
  for (size_t i = 0; i < table.functions_.size(); ++i) {
    std::set<size_t> out;
    for (const CallSite& call : table.functions_[i].calls) {
      auto it = table.by_name_.find(call.callee);
      if (it == table.by_name_.end()) continue;
      for (size_t j : it->second) {
        if (j != i) out.insert(j);
      }
    }
    table.callees_[i].assign(out.begin(), out.end());
    for (size_t j : table.callees_[i]) table.callers_[j].push_back(i);
  }
  return table;
}

std::vector<const FunctionIR*> SymbolTable::Resolve(
    const std::string& name) const {
  std::vector<const FunctionIR*> out;
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return out;
  for (size_t i : it->second) out.push_back(&functions_[i]);
  return out;
}

size_t SymbolTable::IndexOf(const FunctionIR* fn) const {
  return static_cast<size_t>(fn - functions_.data());
}

std::vector<const FunctionIR*> SymbolTable::Callers(
    const FunctionIR* fn) const {
  std::vector<const FunctionIR*> out;
  for (size_t i : callers_[IndexOf(fn)]) out.push_back(&functions_[i]);
  return out;
}

std::vector<const FunctionIR*> SymbolTable::Callees(
    const FunctionIR* fn) const {
  std::vector<const FunctionIR*> out;
  for (size_t i : callees_[IndexOf(fn)]) out.push_back(&functions_[i]);
  return out;
}

std::set<std::string> SymbolTable::IncluderClosure(
    const std::set<std::string>& roots) const {
  std::set<std::string> closure = roots;
  std::vector<std::string> worklist(roots.begin(), roots.end());
  while (!worklist.empty()) {
    const std::string current = worklist.back();
    worklist.pop_back();
    for (const auto& [inc, includers] : included_by_) {
      if (!PathEndsWith(current, inc)) continue;
      for (const std::string& includer : includers) {
        if (closure.insert(includer).second) worklist.push_back(includer);
      }
    }
  }
  return closure;
}

}  // namespace sqmlint
