#ifndef SQM_TOOLS_SQMLINT_SYMBOLS_H_
#define SQM_TOOLS_SQMLINT_SYMBOLS_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "sqmlint/ir.h"

namespace sqmlint {

struct Project;

/// Cross-translation-unit view of the project: every recovered function
/// definition, indexed by name, plus the call graph between them and the
/// include graph between files. Function resolution is name-based (the
/// lexer has no types): a call site resolves to every definition sharing
/// its name, and analyses union the candidates — the conservative choice
/// for a linter.
class SymbolTable {
 public:
  /// Builds the IR for every file and indexes it. The returned table
  /// keeps pointers into `project`; the project must outlive it.
  static SymbolTable Build(const Project& project);

  const std::vector<FunctionIR>& functions() const { return functions_; }

  /// All definitions named `name` (unqualified).
  std::vector<const FunctionIR*> Resolve(const std::string& name) const;

  /// Functions whose body contains a call site resolving to `fn`.
  std::vector<const FunctionIR*> Callers(const FunctionIR* fn) const;

  /// Direct callees of `fn` (resolved definitions only; calls into code
  /// the project does not contain have no edge).
  std::vector<const FunctionIR*> Callees(const FunctionIR* fn) const;

  /// Stable index of a function within functions().
  size_t IndexOf(const FunctionIR* fn) const;

  /// Files that (transitively) include any file in `roots`, plus the
  /// roots themselves. Paths are matched by suffix: git reports
  /// "src/mpc/field.h" while the scan may hold "/abs/src/mpc/field.h".
  std::set<std::string> IncluderClosure(
      const std::set<std::string>& roots) const;

 private:
  std::vector<FunctionIR> functions_;
  std::map<std::string, std::vector<size_t>> by_name_;
  std::vector<std::vector<size_t>> callees_;  ///< fn index -> fn indices.
  std::vector<std::vector<size_t>> callers_;
  std::map<std::string, std::set<std::string>> included_by_;  ///< hdr -> incs.
};

/// The `#include "..."` targets of one file's content (quoted includes
/// only; system headers are outside the project by definition).
std::vector<std::string> ExtractQuotedIncludes(const std::string& content);

/// True when `path` ends with `suffix` at a path-component boundary.
bool PathEndsWith(const std::string& path, const std::string& suffix);

}  // namespace sqmlint

#endif  // SQM_TOOLS_SQMLINT_SYMBOLS_H_
