#ifndef SQM_TOOLS_SQMLINT_TAINT_H_
#define SQM_TOOLS_SQMLINT_TAINT_H_

#include <map>
#include <string>
#include <vector>

namespace sqmlint {

struct Project;

/// One diagnostic produced by the flow engine, before suppression
/// resolution. `declassified` marks a finding covered by a
/// `sqmlint:declassify(reason)` directive — reported but not gating.
struct FlowFinding {
  std::string check;
  std::string path;
  int line = 0;
  std::string message;
  bool declassified = false;
};

/// Results of the interprocedural analysis over a whole project:
/// secret-taint flows (`taint-flow`), accountant-coverage gaps
/// (`dp-spend-coverage`), and secret-dependent control flow in src/mpc/
/// (`secret-branch`), keyed by (check, file path).
///
/// The engine is a worklist propagator over the per-file IR and the
/// cross-TU symbol table:
///   1. *Summaries*: for every function, a bitmask describing whose taint
///      its return value carries — bit 0 for "derived from a secret
///      source inside the callee (or below)", bit i+1 for "flows from
///      parameter i". Computed to a global fixpoint.
///   2. *Real taint*: sources (ShamirScheme::Share*, Beaver deals, SecAgg
///      pair masks, sampler draws) seed concrete taint, which flows
///      through assignments, call returns (via the summaries) and call
///      arguments (marking callee parameters tainted, with provenance),
///      again to a fixpoint.
///   3. *Checks* read the converged state: sink regions (logging, obs
///      export, un-MACed wire sends) holding real taint, secret values
///      steering control flow or indexing in src/mpc/, and sampler draws
///      reachable from the SQM drivers with no accountant spend on the
///      path.
struct FlowAnalysis {
  /// check name -> path -> findings, pre-sorted by line.
  std::map<std::string, std::map<std::string, std::vector<FlowFinding>>>
      findings;

  std::vector<const FlowFinding*> For(const std::string& check,
                                      const std::string& path) const;
};

/// Runs the full flow analysis. Pure function of the project contents.
FlowAnalysis RunFlowAnalysis(const Project& project);

}  // namespace sqmlint

#endif  // SQM_TOOLS_SQMLINT_TAINT_H_
