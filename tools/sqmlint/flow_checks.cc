// Registration shims for the flow-engine checks: the heavy lifting
// (IR, symbol graph, worklist taint propagation) runs once per project in
// BuildProject (taint.cc); these per-file check functions just surface the
// precomputed findings through the same Check interface the lexicon
// checks use, so suppression resolution, rendering, JSON/SARIF output and
// the baseline ratchet treat both engines identically.

#include "sqmlint/checker.h"
#include "sqmlint/taint.h"

namespace sqmlint {
namespace {

void SurfaceFlowFindings(const char* check, const Project& project,
                         const SourceFile& file,
                         std::vector<Finding>* findings) {
  if (project.flow == nullptr) return;  // --no-flow fast fallback.
  for (const FlowFinding* flow : project.flow->For(check, file.path)) {
    Finding finding;
    finding.check = flow->check;
    finding.path = flow->path;
    finding.line = flow->line;
    finding.message = flow->message;
    // A declassify directive downgrades the finding to reported-only;
    // RunChecks may additionally suppress via a plain allow directive.
    finding.suppressed = flow->declassified;
    findings->push_back(std::move(finding));
  }
}

}  // namespace

void CheckTaintFlow(const Project& project, const SourceFile& file,
                    std::vector<Finding>* findings) {
  SurfaceFlowFindings("taint-flow", project, file, findings);
}

void CheckDpSpendCoverage(const Project& project, const SourceFile& file,
                          std::vector<Finding>* findings) {
  SurfaceFlowFindings("dp-spend-coverage", project, file, findings);
}

void CheckSecretBranch(const Project& project, const SourceFile& file,
                       std::vector<Finding>* findings) {
  SurfaceFlowFindings("secret-branch", project, file, findings);
}

}  // namespace sqmlint
