#include "sqmlint/taint.h"

#include <algorithm>
#include <deque>
#include <set>

#include "sqmlint/checker.h"
#include "sqmlint/ir.h"
#include "sqmlint/symbols.h"

namespace sqmlint {
namespace {

using Mask = uint64_t;
constexpr Mask kSourceBit = 1;  ///< Derived from a secret source.
constexpr int kMaxParams = 62;

Mask ParamBit(size_t i) {
  return i < kMaxParams ? (Mask{1} << (i + 1)) : 0;
}

bool IsPunct(const Token& t, const char* text) {
  return t.kind == TokenKind::kPunct && t.text == text;
}
bool IsIdent(const Token& t) { return t.kind == TokenKind::kIdentifier; }

/// Calls whose *name alone* marks the result secret, independent of
/// resolution — the protocol boundary API: Shamir sharing, Beaver triple
/// deals, SecAgg pair masks, sampler draws. Resolution-based sources
/// (anything defined under src/sampling/ whose name starts with Sample)
/// extend this set per project.
const std::set<std::string>& SourceCallNames() {
  static const std::set<std::string> kNames = {
      "Share",     "ShareBatch", "Sample",  "SampleVector",
      "Deal",      "DealBatch",  "PairMask"};
  return kNames;
}

/// Member accessors that launder taint: the *size* of a secret container
/// or the ok-ness of a secret-bearing Result is public metadata.
const std::set<std::string>& PublicAccessors() {
  static const std::set<std::string> kNames = {
      "size",      "empty", "capacity",  "length", "use_count", "ok",
      "has_value", "rows",  "cols",      "status", "num_parties"};
  return kNames;
}

/// Constant-time helpers through which secret-dependent selection is
/// allowed in src/mpc/ (branchless by construction).
const std::set<std::string>& ConstantTimeHelpers() {
  static const std::set<std::string> kNames = {
      "CtSelect", "CtEq", "CtLess", "CtGe", "CtMux", "ConstantTimeSelect",
      "ConstantTimeEq"};
  return kNames;
}

/// Statement-shaped sinks: the tainted value appears anywhere in the
/// statement (stream inserters), not in a parenthesized argument list.
const std::set<std::string>& StatementSinks() {
  static const std::set<std::string> kNames = {
      "SQM_LOG", "SQM_LOG_IF", "SQM_VLOG", "printf", "fprintf",
      "puts",    "fputs",      "cout",     "cerr",   "clog"};
  return kNames;
}

/// Call-shaped sinks whose argument region leaves the process through the
/// observability plane (traces, telemetry snapshots, flight rings, JSON
/// artifacts).
const std::set<std::string>& ObsCallSinks() {
  static const std::set<std::string> kNames = {
      "SQM_OBS_COUNTER_ADD", "SQM_OBS_COUNTER_INC", "SQM_OBS_GAUGE_SET",
      "SQM_OBS_HISTOGRAM_RECORD", "SQM_FLIGHT_EVENT", "SQM_FLIGHT_EVENT2"};
  return kNames;
}

/// Member-call sinks (require '.'/'->'): span annotations and JSON
/// serialization.
const std::set<std::string>& ObsMemberSinks() {
  static const std::set<std::string> kNames = {"AddArg", "Field"};
  return kNames;
}

/// Wire sinks: a transport send outside the MACed protocol seam. The
/// seam — src/mpc/ and src/net/ — ships shares by design and every TCP
/// frame is MACed in src/net/tcp/frame.cc; everywhere else a Send of
/// tainted data is a leak into an unauthenticated side channel.
const std::set<std::string>& WireSinks() {
  static const std::set<std::string> kNames = {"Send", "Broadcast"};
  return kNames;
}

bool InWireSeam(const std::string& path) {
  return PathInModule(path, "src/mpc/") || PathInModule(path, "src/net/") ||
         PathInModule(path, "src/testing/");
}

/// Harness code — tests, benches, examples, chaos tooling — constructs
/// and inspects secret material on purpose. It neither seeds real taint
/// into production callees nor hosts gating sinks; the flow checks are
/// about leak paths that exist in src/ proper.
bool IsHarnessFile(const std::string& path) {
  return PathInModule(path, "tests/") || PathInModule(path, "bench/") ||
         PathInModule(path, "examples/") ||
         PathInModule(path, "src/testing/");
}

struct Engine {
  const Project& project;
  SymbolTable symbols;
  std::vector<Mask> returns_mask;        ///< By function index.
  std::vector<Mask> ext_taint;           ///< Param bits proven tainted.
  std::vector<std::map<int, std::string>> ext_origin;
  std::vector<std::string> local_origin;  ///< First source call, rendered.

  explicit Engine(const Project& p) : project(p), symbols(SymbolTable::Build(p)) {
    const size_t n = symbols.functions().size();
    returns_mask.assign(n, 0);
    ext_taint.assign(n, 0);
    ext_origin.resize(n);
    local_origin.resize(n);
  }

  // ---- source / callee classification ------------------------------------

  bool IsSourceCall(const CallSite& call) const {
    if (SourceCallNames().count(call.callee) > 0) return true;
    for (const FunctionIR* def : symbols.Resolve(call.callee)) {
      if (PathInModule(def->file->path, "src/sampling/") &&
          def->name.rfind("Sample", 0) == 0) {
        return true;
      }
      if (PathInModule(def->file->path, "src/mpc/beaver.cc") &&
          (def->name == "Deal" || def->name == "DealBatch")) {
        return true;
      }
    }
    return false;
  }

  bool IsSamplerDraw(const CallSite& call) const {
    if (call.callee == "Sample" || call.callee == "SampleVector") return true;
    for (const FunctionIR* def : symbols.Resolve(call.callee)) {
      if (PathInModule(def->file->path, "src/sampling/") &&
          def->name.rfind("Sample", 0) == 0) {
        return true;
      }
    }
    return false;
  }

  Mask CalleeReturnsMask(const std::string& name) const {
    Mask mask = 0;
    for (const FunctionIR* def : symbols.Resolve(name)) {
      mask |= returns_mask[symbols.IndexOf(def)];
    }
    return mask;
  }

  // ---- expression taint ---------------------------------------------------

  /// Taint mask of the token range under `vars`, following call returns
  /// through the summaries. `depth` bounds recursion through nested
  /// argument lists.
  Mask EvalRange(const FunctionIR& fn, TokenRange range,
                 const std::map<std::string, Mask>& vars, int depth) const {
    if (depth > 8) return 0;
    const std::vector<Token>& toks = fn.file->tokens;
    Mask mask = 0;
    for (size_t k = range.begin; k < range.end && k < toks.size(); ++k) {
      const Token& t = toks[k];
      if (!IsIdent(t)) continue;
      const bool call_form = k + 1 < range.end && IsPunct(toks[k + 1], "(");
      if (call_form) {
        Mask rm = CalleeReturnsMask(t.text);
        bool is_source = false;
        // Build a one-off CallSite view for source classification.
        CallSite probe;
        probe.callee = t.text;
        if (IsSourceCall(probe)) is_source = true;
        const size_t close_past = SkipParenGroup(toks, k + 1);
        const TokenRange inside{k + 2,
                                close_past > k + 2 ? close_past - 1 : k + 2};
        if (is_source) mask |= kSourceBit;
        if (rm != 0 && !inside.empty()) {
          const std::vector<TokenRange> args =
              SplitTopLevelArgs(toks, inside);
          if (rm & kSourceBit) mask |= kSourceBit;
          for (size_t a = 0; a < args.size(); ++a) {
            if ((rm & ParamBit(a)) == 0) continue;
            mask |= EvalRange(fn, args[a], vars, depth + 1);
          }
        } else if (rm & kSourceBit) {
          mask |= kSourceBit;
        }
        // Even without a resolvable summary, taint reaching any argument
        // of an unknown call conservatively taints the call's value for
        // *expression* purposes only when the callee is a known source;
        // unknown calls otherwise act as sanitizers-by-ignorance, the
        // low-noise default for a linter.
        k = close_past > k ? close_past - 1 : k;
        continue;
      }
      // Accessor exception: `shares.size()` is public metadata.
      if (k + 3 < toks.size() &&
          (IsPunct(toks[k + 1], ".") || IsPunct(toks[k + 1], "->")) &&
          IsIdent(toks[k + 2]) && PublicAccessors().count(toks[k + 2].text) &&
          IsPunct(toks[k + 3], "(")) {
        Mask ignored = 0;
        (void)ignored;
        k += 3;  // Skip past the accessor call's open paren.
        k = SkipParenGroup(toks, k) - 1;
        continue;
      }
      auto it = vars.find(t.text);
      if (it != vars.end()) mask |= it->second;
    }
    return mask;
  }

  /// Local fixpoint over the function's assigns with the given parameter
  /// seed masks; returns the converged variable map.
  std::map<std::string, Mask> Converge(const FunctionIR& fn,
                                       Mask param_seed_mask) const {
    std::map<std::string, Mask> vars;
    for (size_t i = 0; i < fn.params.size(); ++i) {
      if (fn.params[i].empty()) continue;
      const Mask bit = ParamBit(i);
      if (param_seed_mask & bit) vars[fn.params[i]] |= bit;
    }
    for (int pass = 0; pass < 12; ++pass) {
      bool changed = false;
      for (const Assign& assign : fn.assigns) {
        // A declassify directive on the assignment is a flow barrier: the
        // annotated value is vouched public and stops propagating.
        if (fn.file->declassify.count(assign.line) > 0) continue;
        const Mask m = EvalRange(fn, assign.rhs, vars, 0);
        Mask& slot = vars[assign.lhs];
        if ((slot | m) != slot) {
          slot |= m;
          changed = true;
        }
      }
      if (!changed) break;
    }
    return vars;
  }

  // ---- phase 1: return summaries -----------------------------------------

  void ComputeSummaries() {
    const auto& fns = symbols.functions();
    std::deque<size_t> queue;
    for (size_t i = 0; i < fns.size(); ++i) queue.push_back(i);
    std::vector<bool> queued(fns.size(), true);
    int steps = 0;
    const int max_steps = static_cast<int>(fns.size()) * 8 + 1024;
    while (!queue.empty() && steps++ < max_steps) {
      const size_t i = queue.front();
      queue.pop_front();
      queued[i] = false;
      const FunctionIR& fn = fns[i];
      Mask all_params = 0;
      for (size_t p = 0; p < fn.params.size(); ++p) all_params |= ParamBit(p);
      const auto vars = Converge(fn, all_params);
      auto it = vars.find("@ret");
      const Mask ret = it == vars.end() ? 0 : it->second;
      if (ret != returns_mask[i]) {
        returns_mask[i] = returns_mask[i] | ret;
        for (const FunctionIR* caller : symbols.Callers(&fn)) {
          const size_t c = symbols.IndexOf(caller);
          if (!queued[c]) {
            queued[c] = true;
            queue.push_back(c);
          }
        }
      }
    }
  }

  // ---- phase 2: real taint propagation -----------------------------------

  /// Seed mask for the real pass: parameters proven tainted by a caller.
  Mask RealSeed(size_t fn_index) const { return ext_taint[fn_index]; }

  std::string OriginOf(const FunctionIR& fn, Mask mask) const {
    const size_t i = symbols.IndexOf(&fn);
    if ((mask & kSourceBit) && !local_origin[i].empty()) {
      return local_origin[i];
    }
    for (size_t p = 0; p < fn.params.size(); ++p) {
      if ((mask & ParamBit(p)) == 0) continue;
      auto it = ext_origin[i].find(static_cast<int>(p));
      if (it != ext_origin[i].end()) return it->second;
    }
    return "secret source";
  }

  void PropagateRealTaint() {
    const auto& fns = symbols.functions();
    // Record each function's first local source call for provenance.
    for (size_t i = 0; i < fns.size(); ++i) {
      for (const CallSite& call : fns[i].calls) {
        if (!IsSourceCall(call)) continue;
        local_origin[i] = "'" + call.callee + "' at " + fns[i].file->path +
                          ":" + std::to_string(call.line);
        break;
      }
    }
    std::deque<size_t> queue;
    std::vector<bool> queued(fns.size(), true);
    for (size_t i = 0; i < fns.size(); ++i) queue.push_back(i);
    int steps = 0;
    const int max_steps = static_cast<int>(fns.size()) * 8 + 1024;
    while (!queue.empty() && steps++ < max_steps) {
      const size_t i = queue.front();
      queue.pop_front();
      queued[i] = false;
      const FunctionIR& fn = fns[i];
      if (IsHarnessFile(fn.file->path)) continue;
      const auto vars = Converge(fn, RealSeed(i));
      // Push taint into callee parameters.
      for (const CallSite& call : fn.calls) {
        if (call.args.empty()) continue;
        // Declassify on the call line is a flow barrier at this boundary:
        // the caller vouches the values crossing it are public.
        if (fn.file->declassify.count(call.line) > 0) continue;
        for (size_t a = 0; a < call.args.size() && a < kMaxParams; ++a) {
          const Mask m = EvalRange(fn, call.args[a].range, vars, 0);
          if (m == 0) continue;
          for (const FunctionIR* def : symbols.Resolve(call.callee)) {
            const size_t d = symbols.IndexOf(def);
            if (a >= def->params.size()) continue;
            const Mask bit = ParamBit(a);
            if (ext_taint[d] & bit) continue;
            ext_taint[d] |= bit;
            std::string param_name = def->params[a].empty()
                                         ? "#" + std::to_string(a)
                                         : "'" + def->params[a] + "'";
            ext_origin[d][static_cast<int>(a)] =
                "argument " + param_name + " tainted by " + OriginOf(fn, m) +
                " (passed from '" + fn.Qualified() + "', " + fn.file->path +
                ":" + std::to_string(call.line) + ")";
            if (!queued[d]) {
              queued[d] = true;
              queue.push_back(d);
            }
          }
        }
      }
    }
  }
};

// ---- finding emission -----------------------------------------------------

void Emit(FlowAnalysis* out, const SourceFile& file, const char* check,
          int line, std::string message) {
  FlowFinding finding;
  finding.check = check;
  finding.path = file.path;
  finding.line = line;
  // A declassify directive covering the line turns the finding into a
  // reported-but-non-gating record carrying the justification.
  auto it = file.declassify.find(line);
  if (it != file.declassify.end()) {
    finding.declassified = true;
    message += " [declassified: " + it->second + "]";
  }
  finding.message = std::move(message);
  out->findings[check][file.path].push_back(std::move(finding));
}

/// True when the token at `idx` sits inside the argument list of a call
/// to a constant-time helper (walking outward through unmatched '(').
bool InsideConstantTimeHelper(const std::vector<Token>& toks, size_t idx,
                              size_t lower_bound) {
  int depth = 0;
  size_t k = idx;
  while (k > lower_bound) {
    --k;
    if (IsPunct(toks[k], ")")) ++depth;
    if (IsPunct(toks[k], "(")) {
      if (depth > 0) {
        --depth;
        continue;
      }
      if (k > lower_bound && IsIdent(toks[k - 1]) &&
          ConstantTimeHelpers().count(toks[k - 1].text) > 0) {
        return true;
      }
      // Keep walking outward through enclosing groups.
    }
  }
  return false;
}

void CheckTaintToSinks(const Engine& engine, FlowAnalysis* out) {
  for (const FunctionIR& fn : engine.symbols.functions()) {
    const SourceFile& file = *fn.file;
    if (IsHarnessFile(file.path)) continue;
    const size_t i = engine.symbols.IndexOf(&fn);
    const auto vars = engine.Converge(fn, engine.RealSeed(i));
    const std::vector<Token>& toks = file.tokens;

    // Call-shaped sinks from the IR.
    for (const CallSite& call : fn.calls) {
      const bool obs_macro = ObsCallSinks().count(call.callee) > 0;
      const bool obs_member =
          ObsMemberSinks().count(call.callee) > 0 && call.member;
      const bool wire = WireSinks().count(call.callee) > 0 && call.member &&
                        !InWireSeam(file.path);
      if (!obs_macro && !obs_member && !wire) continue;
      for (const CallArg& arg : call.args) {
        const Mask m = engine.EvalRange(fn, arg.range, vars, 0);
        if (m == 0) continue;
        std::string kind =
            wire ? "un-MACed transport send (only the frame.cc MAC path may "
                   "carry secret payloads)"
                 : "observability export";
        Emit(out, file, "taint-flow", call.line,
             "secret value reaches sink '" + call.callee + "' (" + kind +
                 "); origin: " + engine.OriginOf(fn, m));
        break;
      }
    }

    // Statement-shaped sinks: scan the body tokens.
    for (size_t k = fn.body.begin; k < fn.body.end; ++k) {
      if (!IsIdent(toks[k]) || StatementSinks().count(toks[k].text) == 0) {
        continue;
      }
      // Region: to the ';' at this statement's depth.
      int depth = 0;
      size_t e = k + 1;
      for (; e < fn.body.end; ++e) {
        if (IsPunct(toks[e], "(")) ++depth;
        if (IsPunct(toks[e], ")")) --depth;
        if (depth < 0) break;
        if (depth == 0 && IsPunct(toks[e], ";")) break;
      }
      const Mask m = engine.EvalRange(fn, TokenRange{k + 1, e}, vars, 0);
      if (m == 0) {
        k = e;
        continue;
      }
      Emit(out, file, "taint-flow", toks[k].line,
           "secret value reaches sink '" + toks[k].text +
               "' (log/stdio); origin: " + engine.OriginOf(fn, m));
      k = e;
    }
  }
}

void CheckSecretBranch(const Engine& engine, FlowAnalysis* out) {
  for (const FunctionIR& fn : engine.symbols.functions()) {
    const SourceFile& file = *fn.file;
    if (!PathInModule(file.path, "src/mpc/")) continue;
    const size_t i = engine.symbols.IndexOf(&fn);
    const auto vars = engine.Converge(fn, engine.RealSeed(i));
    if (vars.empty()) continue;
    const std::vector<Token>& toks = file.tokens;

    auto report_region = [&](TokenRange region, const char* what) {
      // Find the first genuinely tainted identifier in the region,
      // honoring the accessor and constant-time exceptions.
      for (size_t k = region.begin; k < region.end && k < toks.size(); ++k) {
        if (!IsIdent(toks[k])) continue;
        auto it = vars.find(toks[k].text);
        if (it == vars.end() || it->second == 0) continue;
        // `shares.size()` inside a condition is public metadata.
        if (k + 3 < toks.size() &&
            (IsPunct(toks[k + 1], ".") || IsPunct(toks[k + 1], "->")) &&
            IsIdent(toks[k + 2]) &&
            PublicAccessors().count(toks[k + 2].text) > 0 &&
            IsPunct(toks[k + 3], "(")) {
          k += 3;
          k = SkipParenGroup(toks, k) - 1;
          continue;
        }
        if (InsideConstantTimeHelper(toks, k, fn.body.begin)) continue;
        Emit(out, file, "secret-branch", toks[k].line,
             std::string("secret-tainted value '") + toks[k].text +
                 "' steers " + what +
                 " in src/mpc/ — secret-dependent control flow and "
                 "addressing leak through timing and cache side channels; "
                 "route it through a constant-time helper or declassify "
                 "with justification; origin: " +
                 engine.OriginOf(fn, it->second));
        return;
      }
    };

    for (size_t k = fn.body.begin; k < fn.body.end; ++k) {
      const Token& t = toks[k];
      if (IsIdent(t) &&
          (t.text == "if" || t.text == "while" || t.text == "switch") &&
          k + 1 < fn.body.end && IsPunct(toks[k + 1], "(")) {
        const size_t close_past = SkipParenGroup(toks, k + 1);
        report_region(TokenRange{k + 2, close_past - 1}, "a branch");
        continue;
      }
      if (IsIdent(t) && t.text == "for" && k + 1 < fn.body.end &&
          IsPunct(toks[k + 1], "(")) {
        // Condition clause only: between the first and second top-level ';'.
        const size_t close_past = SkipParenGroup(toks, k + 1);
        int depth = 0, semis = 0;
        size_t c_begin = 0, c_end = 0;
        for (size_t m = k + 1; m + 1 < close_past; ++m) {
          if (IsPunct(toks[m], "(")) ++depth;
          if (IsPunct(toks[m], ")")) --depth;
          if (depth == 1 && IsPunct(toks[m], ";")) {
            ++semis;
            if (semis == 1) c_begin = m + 1;
            if (semis == 2) c_end = m;
          }
        }
        if (semis >= 2 && c_begin < c_end) {
          report_region(TokenRange{c_begin, c_end}, "a loop bound");
        }
        continue;
      }
      // Array index regions: `base [ expr ]` — the *index* must be public.
      if (IsPunct(t, "[") && k > fn.body.begin &&
          (IsIdent(toks[k - 1]) || IsPunct(toks[k - 1], "]") ||
           IsPunct(toks[k - 1], ")"))) {
        int depth = 0;
        size_t e = k;
        for (; e < fn.body.end; ++e) {
          if (IsPunct(toks[e], "[")) ++depth;
          if (IsPunct(toks[e], "]")) {
            --depth;
            if (depth == 0) break;
          }
        }
        if (e > k + 1) {
          report_region(TokenRange{k + 1, e}, "an array index");
        }
      }
    }
  }
}

void CheckDpSpendCoverage(const Engine& engine, FlowAnalysis* out) {
  const auto& fns = engine.symbols.functions();
  const size_t n = fns.size();

  // Spend calls: the accountant's Add* family.
  static const std::set<std::string> kSpendCalls = {
      "AddGaussian", "AddSkellam", "AddSkellamWithDropouts", "AddEvent"};

  std::vector<bool> spends(n, false);
  std::vector<bool> draws(n, false);
  for (size_t i = 0; i < n; ++i) {
    for (const CallSite& call : fns[i].calls) {
      if (kSpendCalls.count(call.callee) > 0) spends[i] = true;
      if (engine.IsSamplerDraw(call)) draws[i] = true;
    }
  }
  // Transitive closure of "spends" over the call graph.
  std::vector<bool> tspends = spends;
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < n; ++i) {
      if (tspends[i]) continue;
      for (const FunctionIR* callee : engine.symbols.Callees(&fns[i])) {
        if (tspends[engine.symbols.IndexOf(callee)]) {
          tspends[i] = true;
          changed = true;
          break;
        }
      }
    }
  }

  // Roots: the SQM drivers.
  std::vector<size_t> roots;
  for (size_t i = 0; i < n; ++i) {
    const FunctionIR& fn = fns[i];
    const bool driver_name = fn.name == "RunSqm" || fn.name == "RunPartySqm";
    const bool evaluator_method = fn.name.rfind("Evaluate", 0) == 0 &&
                                  fn.owner.find("Sqm") != std::string::npos;
    if (driver_name || evaluator_method) roots.push_back(i);
  }

  // DFS carrying a "covered" flag: covered once any function on the path
  // transitively reaches a spend. A draw in an uncovered function is a
  // noise addition the ledger never accounts — the invariant violation.
  std::set<std::pair<size_t, bool>> visited;
  std::set<std::pair<std::string, int>> reported;
  std::vector<std::pair<size_t, bool>> stack;
  std::map<size_t, size_t> root_of;  // fn -> root for the message.
  for (size_t r : roots) {
    stack.push_back({r, false});
    while (!stack.empty()) {
      auto [i, covered] = stack.back();
      stack.pop_back();
      covered = covered || tspends[i];
      if (!visited.insert({i, covered}).second) continue;
      if (draws[i] && !covered && !IsHarnessFile(fns[i].file->path)) {
        for (const CallSite& call : fns[i].calls) {
          if (!engine.IsSamplerDraw(call)) continue;
          const auto key = std::make_pair(fns[i].file->path, call.line);
          if (!reported.insert(key).second) continue;
          Emit(out, *fns[i].file, "dp-spend-coverage", call.line,
               "sampler draw '" + call.callee + "' in '" + fns[i].Qualified() +
                   "' is reachable from the SQM driver '" +
                   fns[r].Qualified() +
                   "' but no PrivacyAccountant spend (AddSkellam/AddGaussian/"
                   "AddEvent) dominates it on this path — every noise draw "
                   "must be accounted in the privacy ledger");
        }
      }
      for (const FunctionIR* callee : engine.symbols.Callees(&fns[i])) {
        stack.push_back({engine.symbols.IndexOf(callee), covered});
      }
    }
  }
}

}  // namespace

std::vector<const FlowFinding*> FlowAnalysis::For(
    const std::string& check, const std::string& path) const {
  std::vector<const FlowFinding*> out;
  auto it = findings.find(check);
  if (it == findings.end()) return out;
  auto jt = it->second.find(path);
  if (jt == it->second.end()) return out;
  for (const FlowFinding& f : jt->second) out.push_back(&f);
  return out;
}

FlowAnalysis RunFlowAnalysis(const Project& project) {
  FlowAnalysis out;
  Engine engine(project);
  engine.ComputeSummaries();
  engine.PropagateRealTaint();
  CheckTaintToSinks(engine, &out);
  CheckSecretBranch(engine, &out);
  CheckDpSpendCoverage(engine, &out);
  for (auto& [check, by_path] : out.findings) {
    for (auto& [path, findings] : by_path) {
      std::stable_sort(findings.begin(), findings.end(),
                       [](const FlowFinding& a, const FlowFinding& b) {
                         return a.line < b.line;
                       });
    }
  }
  return out;
}

}  // namespace sqmlint
