#ifndef SQM_TOOLS_SQMLINT_CHECKER_H_
#define SQM_TOOLS_SQMLINT_CHECKER_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "sqmlint/lexer.h"

namespace sqmlint {

struct FlowAnalysis;

/// One diagnostic produced by a check.
struct Finding {
  std::string check;    ///< Check name ("unchecked-status", ...).
  std::string path;     ///< As the file was given to the tool.
  int line = 0;         ///< 1-based.
  std::string message;  ///< One sentence; no trailing period needed.
  bool suppressed = false;  ///< True when a sqmlint:allow directive covers it.
};

/// A source file after lexing, with its suppression directives resolved.
///
/// Suppression syntax:  // sqmlint:allow(check-a, check-b)
/// A directive covers its own line and the line immediately after it (so it
/// works both trailing the offending line and on its own line above). A
/// "sqmlint:allow" without a parenthesized, non-empty check list is itself
/// reported under the non-suppressible check "suppression-syntax" — every
/// suppression must carry the name of the check it silences.
struct SourceFile {
  std::string path;
  std::string content;
  std::vector<std::string> lines;  ///< For snippet rendering.
  std::vector<Token> tokens;
  std::map<int, std::set<std::string>> allows;  ///< line -> check names.
  /// line -> justification, from `// sqmlint:declassify(reason)`. Unlike a
  /// blanket allow, a declassify names *why* the flow is safe; flow-engine
  /// findings it covers are reported but do not gate. A declassify with an
  /// empty reason is malformed and reported under "declassify-syntax".
  std::map<int, std::string> declassify;
  std::vector<Finding> suppression_errors;
};

/// The whole analysis input plus cross-file facts gathered in a pre-pass.
struct Project {
  std::vector<SourceFile> files;
  /// Names of functions declared (anywhere in the project) with return type
  /// Status or Result<...> — the lexicon behind unchecked-status.
  std::set<std::string> status_functions;
  /// Interprocedural taint / coverage results (taint.h); null when the
  /// flow engine was skipped (--no-flow fast fallback). shared_ptr so
  /// Project copies stay cheap and valid.
  std::shared_ptr<const FlowAnalysis> flow;
};

/// A registered check: a pure function from (project, file) to findings.
struct Check {
  const char* name;
  const char* description;
  void (*run)(const Project& project, const SourceFile& file,
              std::vector<Finding>* findings);
};

/// All built-in checks, in reporting order.
const std::vector<Check>& AllChecks();

/// Builds a Project from in-memory (path, content) pairs: lexes each file,
/// resolves suppressions, runs the cross-file pre-pass, and (unless
/// `with_flow` is false — the fast lexicon-only fallback) the
/// interprocedural flow analysis. The test suite uses this directly with
/// fixture snippets.
Project BuildProject(
    const std::vector<std::pair<std::string, std::string>>& files,
    bool with_flow = true);

/// Recursively collects C++ sources (.h .hpp .cc .cpp .cxx) under each
/// path (files are taken as-is), reads them, and returns (path, content)
/// pairs sorted by path. Unreadable paths are reported through `errors`.
std::vector<std::pair<std::string, std::string>> CollectSources(
    const std::vector<std::string>& paths, std::vector<std::string>* errors);

/// Runs the checks (all of them, or the named subset) over every file.
/// Findings covered by a suppression come back with suppressed = true;
/// malformed suppressions are appended as "suppression-syntax" findings.
/// Order: by file, then line.
std::vector<Finding> RunChecks(const Project& project,
                               const std::set<std::string>& only = {});

/// Number of findings that actually gate (not suppressed).
size_t CountActive(const std::vector<Finding>& findings);

/// Human diff-style rendering: "path:line: [check] message" plus the
/// offending source line. Suppressed findings are shown only when
/// `show_suppressed`.
std::string RenderHuman(const Project& project,
                        const std::vector<Finding>& findings,
                        bool show_suppressed);

/// Machine-readable rendering:
/// {"findings":[{check,path,line,message,suppressed}...],
///  "summary":{files,active,suppressed}}.
std::string RenderJson(const Project& project,
                       const std::vector<Finding>& findings);

/// SARIF 2.1.0 rendering: one run, one rule per registered check, one
/// result per finding (suppressed findings carry a `suppressions` block,
/// so SARIF viewers show them as reviewed). Paths are emitted as given.
std::string RenderSarif(const Project& project,
                        const std::vector<Finding>& findings);

// --- helpers shared by checks (defined in checker.cc) ---

/// True when `path`, normalized to forward slashes, contains `needle`
/// either at the start or preceded by '/'. Used for module scoping, so
/// fixture trees under a temp directory classify the same as the real
/// repo ("src/mpc/" matches both "src/mpc/field.cc" and
/// "/tmp/x/src/mpc/field.cc").
bool PathInModule(const std::string& path, const std::string& needle);

/// Splits an identifier into lowercase words on '_' and camelCase
/// boundaries ("noiseShares" -> {"noise","shares"}).
std::vector<std::string> IdentifierWords(const std::string& identifier);

}  // namespace sqmlint

#endif  // SQM_TOOLS_SQMLINT_CHECKER_H_
