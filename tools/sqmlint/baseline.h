#ifndef SQM_TOOLS_SQMLINT_BASELINE_H_
#define SQM_TOOLS_SQMLINT_BASELINE_H_

#include <string>
#include <vector>

#include "sqmlint/checker.h"

namespace sqmlint {

/// One accepted pre-existing finding. The fingerprint is line-number-free
/// (check + module-relative path + the offending source line, trimmed) so
/// unrelated edits above a baselined finding do not churn the file.
struct BaselineEntry {
  std::string check;
  std::string path;         ///< Module-relative ("src/mpc/field.cc").
  std::string fingerprint;  ///< Trimmed source-line text.
};

/// The committed ratchet file (tools/sqmlint/baseline.json).
struct Baseline {
  std::vector<BaselineEntry> entries;
};

/// Delta between the current scan and the baseline. The ratchet gates on
/// both directions: `fresh` findings fail the scan (the baseline never
/// grows), and `stale` entries fail it too (a fixed finding must be
/// removed from the committed file, so the baseline only shrinks).
struct BaselineDelta {
  std::vector<Finding> fresh;        ///< Active findings not in baseline.
  std::vector<BaselineEntry> stale;  ///< Entries matching no finding.
  size_t matched = 0;
  bool Clean() const { return fresh.empty() && stale.empty(); }
};

/// Strips everything before the repo's top-level module directories so
/// absolute scan paths and repo-relative baseline paths compare equal.
std::string ModuleRelativePath(const std::string& path);

/// Fingerprint of one finding against the file it lives in.
BaselineEntry FingerprintFinding(const Project& project,
                                 const Finding& finding);

/// Serializes a baseline (sorted, deduplicated) as the committed JSON.
std::string RenderBaseline(const Baseline& baseline);

/// Builds the baseline that would accept exactly the current active
/// findings (suppressed/declassified findings are not baselined — they
/// are already annotated in-source).
Baseline BaselineFromFindings(const Project& project,
                              const std::vector<Finding>& findings);

/// Parses the committed JSON. Returns false on malformed input (the
/// parser accepts exactly what RenderBaseline emits).
bool ParseBaseline(const std::string& text, Baseline* baseline,
                   std::string* error);

/// Matches active findings against the baseline. Multiset semantics: two
/// identical findings need two entries.
BaselineDelta CompareBaseline(const Project& project,
                              const std::vector<Finding>& findings,
                              const Baseline& baseline);

}  // namespace sqmlint

#endif  // SQM_TOOLS_SQMLINT_BASELINE_H_
