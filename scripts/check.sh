#!/usr/bin/env sh
# One-shot verification gate: configure, build, run the full test suite
# (which includes the sqmlint repo scan under the `lint` label), then run
# sqmlint once more directly so its diff-style report lands in the log.
#
# Usage: scripts/check.sh [build-dir]    (default: build)
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}

cmake -B "$build_dir" -S "$repo_root"
cmake --build "$build_dir" -j"$(nproc)"

(cd "$build_dir" && ctest --output-on-failure -j"$(nproc)")

"$build_dir"/tools/sqmlint/sqmlint "$repo_root/src" "$repo_root/tests"

# Archive the transport-mode comparison (lockstep vs threaded vs lossy vs
# tcp-localhost) so every gate run leaves a machine-readable record of the
# bit-exactness-across-transports claim next to the build.
"$build_dir"/bench/table2_transport_modes --scale=small \
    --json="$build_dir/BENCH_transport_modes.json"

# Archive the batched-hot-path and Beaver-vs-GRR records alongside it:
# the scalar-vs-batched Shamir sweep (batched must win by d >= 16) and
# the offline/online Beaver split with quorum-path round counts (Beaver
# halves the per-Mul rounds by dropping the census).
"$build_dir"/bench/table1_complexity_scaling --scale=small \
    --json="$build_dir/BENCH_complexity_scaling.json"
"$build_dir"/bench/ablation_beaver_vs_grr --scale=small \
    --json="$build_dir/BENCH_beaver_vs_grr.json"

# Archive the observability-overhead record (in-process collection cost
# plus the tcp-localhost wire path, where the traced leg also carries
# trace context in every frame header): the telemetry-never-changes-
# results invariant and the <= 5% overhead bar, machine-readable.
"$build_dir"/bench/table_obs_overhead --scale=small \
    --json="$build_dir/BENCH_obs_overhead.json"

# Recovery gate under ThreadSanitizer: the deploy + chaos suites exercise
# SIGKILL, reconnect and resume-barrier paths where a data race would be
# silent corruption in the release build, and the batch differential
# suite's threaded/TCP legs put the Beaver + batched hot path under the
# race detector too. A separate build tree keeps the instrumented objects
# out of the primary build.
tsan_dir="$build_dir-tsan"
cmake -B "$tsan_dir" -S "$repo_root" -DSQM_SANITIZE=thread
cmake --build "$tsan_dir" -j"$(nproc)"
(cd "$tsan_dir" && ctest -L 'deploy|chaos|batch' --output-on-failure)

echo "check.sh: all gates passed"
