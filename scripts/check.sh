#!/usr/bin/env sh
# One-shot verification gate: configure, build, run the full test suite
# (which includes the sqmlint repo scan under the `lint` label), then run
# sqmlint once more directly so its diff-style report lands in the log.
#
# Usage: scripts/check.sh [build-dir]    (default: build)
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}

cmake -B "$build_dir" -S "$repo_root"
cmake --build "$build_dir" -j"$(nproc)"

(cd "$build_dir" && ctest --output-on-failure -j"$(nproc)")

"$build_dir"/tools/sqmlint/sqmlint "$repo_root/src" "$repo_root/tests"

echo "check.sh: all gates passed"
