#!/usr/bin/env sh
# One-shot verification gate: configure, build, run the full test suite
# (which includes the sqmlint repo scan under the `lint` label), then run
# sqmlint once more directly — against the committed baseline ratchet —
# so its diff-style report plus the JSON/SARIF artifacts land next to the
# bench records in the build tree.
#
# Usage: scripts/check.sh [--lint-only] [build-dir]   (default: build)
#
#   --lint-only   Fast path for pre-commit: build just the linter, run the
#                 baseline-gated scan (plus JSON/SARIF artifacts), skip
#                 the test suite, benches, tidy and the TSan build.
set -eu

lint_only=0
build_dir=""
for arg in "$@"; do
  case "$arg" in
    --lint-only) lint_only=1 ;;
    *) build_dir="$arg" ;;
  esac
done

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${build_dir:-"$repo_root/build"}
baseline="$repo_root/tools/sqmlint/baseline.json"

cmake -B "$build_dir" -S "$repo_root"

if [ "$lint_only" = 1 ]; then
  cmake --build "$build_dir" -j"$(nproc)" --target sqmlint
else
  cmake --build "$build_dir" -j"$(nproc)"
  (cd "$build_dir" && ctest --output-on-failure -j"$(nproc)")
fi

# The ratcheted scan. A failure here means either a finding missing from
# the committed baseline (fix or declassify it — do not grow the baseline)
# or a stale baseline entry (delete it — the ratchet only tightens). The
# delta summary is archived beside the machine-readable findings. No
# pipeline: POSIX sh has no pipefail and the linter's exit code is the
# gate.
lint_status=0
(cd "$repo_root" && "$build_dir"/tools/sqmlint/sqmlint \
    --baseline="$baseline" \
    --json="$build_dir/sqmlint.json" \
    --sarif="$build_dir/sqmlint.sarif" \
    "$repo_root/src" "$repo_root/tests" \
    > "$build_dir/sqmlint_baseline_delta.txt") || lint_status=$?
cat "$build_dir/sqmlint_baseline_delta.txt"
if [ "$lint_status" != 0 ]; then
  echo "check.sh: sqmlint baseline gate failed (see delta above)"
  exit "$lint_status"
fi

if [ "$lint_only" = 1 ]; then
  echo "check.sh: lint gate passed (artifacts in $build_dir/sqmlint.{json,sarif})"
  exit 0
fi

# Full clang-tidy sweep over src/ (bugprone/performance/concurrency per
# .clang-tidy). Non-fatal: generic C++ hazards are advisory next to the
# domain gates above — but the report is archived so regressions are
# visible in the log. Skipped with a note when the container has no
# clang-tidy (the compile-time enforcement and sqmlint still gate).
if command -v clang-tidy >/dev/null 2>&1; then
  cmake --build "$build_dir" --target tidy 2>&1 \
      | tee "$build_dir/TIDY_report.txt" || true
else
  echo "check.sh: clang-tidy not installed; skipping the tidy sweep" \
      | tee "$build_dir/TIDY_report.txt"
fi

# Archive the transport-mode comparison (lockstep vs threaded vs lossy vs
# tcp-localhost) so every gate run leaves a machine-readable record of the
# bit-exactness-across-transports claim next to the build.
"$build_dir"/bench/table2_transport_modes --scale=small \
    --json="$build_dir/BENCH_transport_modes.json"

# Archive the batched-hot-path and Beaver-vs-GRR records alongside it:
# the scalar-vs-batched Shamir sweep (batched must win by d >= 16) and
# the offline/online Beaver split with quorum-path round counts (Beaver
# halves the per-Mul rounds by dropping the census).
"$build_dir"/bench/table1_complexity_scaling --scale=small \
    --json="$build_dir/BENCH_complexity_scaling.json"
"$build_dir"/bench/ablation_beaver_vs_grr --scale=small \
    --json="$build_dir/BENCH_beaver_vs_grr.json"

# Archive the observability-overhead record (in-process collection cost
# plus the tcp-localhost wire path, where the traced leg also carries
# trace context in every frame header): the telemetry-never-changes-
# results invariant and the <= 5% overhead bar, machine-readable.
"$build_dir"/bench/table_obs_overhead --scale=small \
    --json="$build_dir/BENCH_obs_overhead.json"

# Recovery gate under ThreadSanitizer: the deploy + chaos suites exercise
# SIGKILL, reconnect and resume-barrier paths where a data race would be
# silent corruption in the release build, and the batch differential
# suite's threaded/TCP legs put the Beaver + batched hot path under the
# race detector too. A separate build tree keeps the instrumented objects
# out of the primary build.
tsan_dir="$build_dir-tsan"
cmake -B "$tsan_dir" -S "$repo_root" -DSQM_SANITIZE=thread
cmake --build "$tsan_dir" -j"$(nproc)"
(cd "$tsan_dir" && ctest -L 'deploy|chaos|batch' --output-on-failure)

echo "check.sh: all gates passed"
