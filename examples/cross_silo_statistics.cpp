// Example: the paper's introduction scenario, concretely — an e-commerce
// platform and an online payment service hold complementary attributes of
// a shared user base and want joint statistics without exposing users.
//
//   ./build/examples/cross_silo_statistics
//
// Client 0 (e-commerce)  holds x0 = 1{user browsed electronics this week}
// Client 1 (e-commerce)  holds x1 = normalized basket value
// Client 2 (payments)    holds x2 = 1{user has an installment plan}
// Client 3 (payments)    holds x3 = normalized monthly card spend
//
// Joint statistics, all polynomials over the vertically partitioned data:
//   S1 = sum x0*x2      — co-occurrence count: browsers with installments
//   S2 = sum x1*x3      — cross-silo spend correlation (unnormalized)
//   S3 = sum x0*x3^2    — spend concentration among browsers
// released together under one (epsilon, delta) budget via SQM.

#include <cmath>
#include <cstdio>

#include "core/sqm.h"
#include "dp/skellam.h"
#include "poly/parser.h"
#include "sampling/rng.h"
#include "vfl/dataset.h"

int main() {
  using namespace sqm;

  // --- Synthesize the joint user base (in reality, no party ever holds
  // this matrix; it exists only column-wise across the silos).
  const size_t users = 5000;
  Matrix x(users, 4);
  Rng rng(99);
  for (size_t i = 0; i < users; ++i) {
    const bool browses = rng.NextBernoulli(0.3);
    const double basket = browses ? 0.3 + 0.4 * rng.NextDouble()
                                  : 0.1 * rng.NextDouble();
    // Installment plans correlate with browsing electronics.
    const bool installment = rng.NextBernoulli(browses ? 0.5 : 0.15);
    const double spend = 0.2 * rng.NextDouble() +
                         (installment ? 0.3 : 0.0) +
                         0.3 * basket;
    x(i, 0) = browses ? 1.0 : 0.0;
    x(i, 1) = basket;
    x(i, 2) = installment ? 1.0 : 0.0;
    x(i, 3) = spend;
  }
  NormalizeRecords(x, 1.0);

  // --- The released statistics, written in the text grammar.
  const PolynomialVector f =
      ParsePolynomialVector("x0*x2; x1*x3; x0*x3^2").ValueOrDie();

  // --- Exact values (for the comparison printout only).
  std::vector<std::vector<double>> rows;
  for (size_t i = 0; i < users; ++i) rows.push_back(x.Row(i));
  const std::vector<double> exact = f.EvaluateSum(rows);

  // --- One SQM release covering all three statistics.
  const double gamma = 1024.0;  // Degree-3 statistic: gamma^4 scale, so
                                // stay within the 2^61-1 field (the
                                // capacity guard refuses 4096 here).
  const double epsilon = 1.0;
  const double delta = 1e-5;
  const SensitivityBound sens =
      PolynomialSensitivity(f, gamma, /*record_norm=*/1.0,
                            /*max_f_l2=*/std::sqrt(3.0));
  const double mu =
      CalibrateSkellamMuSingleRelease(epsilon, delta, sens.l1, sens.l2)
          .ValueOrDie();

  SqmOptions options;
  options.gamma = gamma;
  options.mu = mu;
  options.backend = MpcBackend::kBgw;
  options.max_f_l2 = std::sqrt(3.0);
  options.seed = 7;
  const SqmReport report =
      SqmEvaluator(options).Evaluate(f, x).ValueOrDie();

  std::printf("Cross-silo statistics over %zu users, (eps=%.2g, "
              "delta=%.0e), 4 clients, BGW:\n\n",
              users, epsilon, delta);
  const char* labels[3] = {
      "browsers with installment plans (count-like)",
      "basket-value x card-spend correlation",
      "spend concentration among browsers"};
  for (size_t t = 0; t < 3; ++t) {
    std::printf("  %-46s exact %10.4f | released %10.4f\n", labels[t],
                exact[t], report.estimate[t]);
  }
  std::printf("\nNo silo saw the other's columns (BGW: %llu messages, "
              "%llu rounds); the release itself is differentially "
              "private, so even a data-extraction attack on the published "
              "statistics is bounded by (%.2g, %.0e).\n",
              static_cast<unsigned long long>(report.network.messages),
              static_cast<unsigned long long>(report.network.rounds),
              epsilon, delta);
  return 0;
}
