// Example: managing one privacy budget across several SQM workloads with
// the PrivacyAccountant, and auditing a release empirically.
//
//   ./build/examples/privacy_budgeting
//
// Scenario: the consortium wants a total guarantee of (eps = 4, delta =
// 1e-5) against the server across (1) one PCA covariance release and
// (2) as many LR training rounds as the remaining budget affords; then it
// black-box-audits the PCA release on neighboring databases.

#include <cstdio>

#include "core/sensitivity.h"
#include "dp/accountant.h"
#include "dp/audit.h"
#include "dp/skellam.h"
#include "sampling/rng.h"
#include "sampling/skellam_sampler.h"

int main() {
  using namespace sqm;

  const double total_epsilon = 4.0;
  const double delta = 1e-5;
  const double gamma = 4096.0;
  const size_t n = 64;  // Attributes / clients.

  PrivacyAccountant accountant;

  // --- Workload 1: one PCA covariance release, calibrated to spend about
  // half the budget.
  const SensitivityBound pca_sens = PcaSensitivity(gamma, 1.0, n);
  const double pca_mu =
      CalibrateSkellamMuSingleRelease(total_epsilon / 2.0, delta,
                                      pca_sens.l1, pca_sens.l2)
          .ValueOrDie();
  accountant.AddSkellam("pca-covariance", pca_sens.l1, pca_sens.l2, pca_mu);
  std::printf("After PCA release: epsilon = %.4f of %.1f\n",
              accountant.TotalEpsilon(delta).ValueOrDie(), total_epsilon);

  // --- Workload 2: LR training rounds at q = 0.01; ask the accountant how
  // many rounds still fit.
  const SensitivityBound lr_sens = LogisticGradientSensitivity(gamma,
                                                               n - 1);
  const double lr_mu = 2.0 * lr_sens.l2 * lr_sens.l2;  // Chosen noise.
  PrivacyEvent lr_round;
  lr_round.label = "lr-round";
  lr_round.rdp = [&](double alpha) {
    return SkellamRdp(alpha, lr_sens.l1, lr_sens.l2, lr_mu);
  };
  lr_round.sampling_rate = 0.05;
  const size_t affordable =
      accountant
          .RemainingRepetitions(lr_round, total_epsilon, delta,
                                /*max_repetitions=*/50000)
          .ValueOrDie();
  std::printf("LR rounds affordable within the remaining budget: %zu%s\n",
              affordable, affordable == 50000 ? " (search cap)" : "");
  lr_round.count = affordable;
  if (affordable > 0) accountant.AddEvent(lr_round);
  std::printf("After LR training:  epsilon = %.4f of %.1f\n",
              accountant.TotalEpsilon(delta).ValueOrDie(), total_epsilon);

  // --- Empirical audit of the distributed Skellam release: neighboring
  // scalar aggregates differing by the sensitivity, noise split across 8
  // clients. The audited lower bound must stay below the analytic epsilon.
  const double audit_d2 = 8.0;
  const double audit_mu =
      CalibrateSkellamMuSingleRelease(1.0, delta, audit_d2 * audit_d2,
                                      audit_d2)
          .ValueOrDie();
  const auto make_mechanism = [&](int64_t value) {
    return [value, audit_mu](uint64_t seed) {
      Rng rng(seed ^ 0xaad17);
      const SkellamSampler share(audit_mu / 8.0);
      int64_t noise = 0;
      for (int j = 0; j < 8; ++j) noise += share.Sample(rng);
      return static_cast<double>(value + noise);
    };
  };
  AuditOptions audit;
  audit.trials = 20000;
  audit.delta = delta;
  const AuditResult audited =
      AuditEpsilonLowerBound(make_mechanism(1000), make_mechanism(1008),
                             audit)
          .ValueOrDie();
  std::printf(
      "\nEmpirical audit of a (eps=1.0)-calibrated Skellam release over "
      "%zu trials:\n  epsilon lower bound = %.4f (must be <= 1.0 + "
      "sampling slack)\n",
      audit.trials, audited.epsilon_lower_bound);
  return 0;
}
