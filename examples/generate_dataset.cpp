// generate_dataset: write the library's synthetic dataset profiles to CSV,
// so the CLI and the CSV-loading examples have ready-made inputs and so
// users can inspect exactly what the benches run on.
//
//   ./build/examples/generate_dataset <profile> <out.csv> [scale] [seed]
//
// Profiles: kddcup | acsincome-pca | citeseer | gene  (unlabelled, PCA)
//           lr-CA | lr-TX | lr-NY | lr-FL            (labelled, logistic)
//           pca-custom R C K                          (rows cols rank)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "vfl/csv.h"
#include "vfl/synthetic.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: generate_dataset <profile> <out.csv> [scale] "
               "[seed]\n"
               "profiles: kddcup acsincome-pca citeseer gene "
               "lr-CA lr-TX lr-NY lr-FL\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sqm;
  if (argc < 3) return Usage();
  const std::string profile = argv[1];
  const std::string path = argv[2];
  const double scale = argc > 3 ? std::atof(argv[3]) : 0.01;
  const uint64_t seed = argc > 4
                            ? static_cast<uint64_t>(std::atoll(argv[4]))
                            : 11;

  VflDataset data;
  if (profile == "kddcup") {
    data = MakeKddCupLike(scale, seed);
  } else if (profile == "acsincome-pca") {
    data = MakeAcsIncomePcaLike(scale, seed);
  } else if (profile == "citeseer") {
    data = MakeCiteSeerLike(scale, seed);
  } else if (profile == "gene") {
    data = MakeGeneLike(scale, seed);
  } else if (profile.rfind("lr-", 0) == 0) {
    data = MakeAcsIncomeLrLike(profile.substr(3), scale, seed);
  } else {
    return Usage();
  }

  CsvOptions csv;
  if (data.has_labels()) {
    csv.label_column = static_cast<int>(data.num_features());
  }
  const Status status = SaveCsvDataset(data, path, csv);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s: %zu records x %zu features%s (profile %s, "
              "scale %g, seed %llu)\n",
              path.c_str(), data.num_records(), data.num_features(),
              data.has_labels() ? " + label" : "", profile.c_str(), scale,
              static_cast<unsigned long long>(seed));
  return 0;
}
