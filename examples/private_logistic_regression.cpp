// Example: differentially private logistic regression over vertically
// partitioned data (the paper's Section V-B). One client per feature
// column plus a label client; each training round evaluates the
// polynomial-approximated gradient sum with SQM.
//
//   ./build/examples/private_logistic_regression [path/to/data.csv]
//
// The optional CSV must have a header and its *last* column must be the
// 0/1 label.

#include <cstdio>

#include "vfl/csv.h"
#include "vfl/dataset.h"
#include "vfl/logistic.h"
#include "vfl/synthetic.h"

int main(int argc, char** argv) {
  using namespace sqm;

  VflDataset data;
  if (argc > 1) {
    CsvOptions csv;
    // Peek the width by loading unlabelled first is wasteful; instead
    // require the label in the last column and load in two steps.
    auto probe = LoadCsvDataset(argv[1]);
    if (!probe.ok()) {
      std::fprintf(stderr, "failed to load %s: %s\n", argv[1],
                   probe.status().ToString().c_str());
      return 1;
    }
    csv.label_column =
        static_cast<int>(probe.ValueOrDie().num_features()) - 1;
    data = LoadCsvDataset(argv[1], csv).ValueOrDie();
  } else {
    data = MakeAcsIncomeLrLike("CA", /*scale=*/0.03);
  }

  const TrainTestSplit split = SplitTrainTest(data, 0.7, 5).ValueOrDie();
  std::printf("Dataset %s: %zu train / %zu test records, %zu features\n",
              data.name.c_str(), split.train.num_records(),
              split.test.num_records(), split.train.num_features());

  LogisticOptions options;
  options.epsilon = 2.0;
  options.delta = 1e-5;
  options.sample_rate = 0.05;
  options.rounds = 60;
  options.learning_rate = 2.0;
  options.gamma = 8192.0;

  const LogisticResult non_private =
      TrainNonPrivateLogistic(split.train, split.test, options)
          .ValueOrDie();
  const LogisticResult central =
      TrainDpSgd(split.train, split.test, options).ValueOrDie();
  const LogisticResult sqm_result =
      TrainSqmLogistic(split.train, split.test, options).ValueOrDie();
  const LogisticResult local =
      TrainLocalDpLogistic(split.train, split.test, options).ValueOrDie();

  std::printf("\nTest accuracy at (eps=%.2g, delta=%.0e), %zu rounds of "
              "Poisson-sampled SGD (q=%.3g):\n",
              options.epsilon, options.delta, options.rounds,
              options.sample_rate);
  std::printf("  %-28s %7.4f  (ceiling)\n", "Non-private SGD",
              non_private.test_accuracy);
  std::printf("  %-28s %7.4f  (noise std=%.3g)\n", "Central DPSGD",
              central.test_accuracy, central.sigma);
  std::printf("  %-28s %7.4f  (mu=%.3g, gamma=%g)\n",
              "SQM (this paper, VFL)", sqm_result.test_accuracy,
              sqm_result.mu, options.gamma);
  std::printf("  %-28s %7.4f  (sigma=%.3g)\n", "Local-DP baseline",
              local.test_accuracy, local.sigma);

  std::printf("\nEach SQM round: every client quantizes its column of the "
              "sampled batch (gamma=%g), samples a Skellam noise share, "
              "and the clients evaluate Eq. 9's degree-2 gradient "
              "polynomial jointly; the server only ever sees the noisy "
              "de-scaled gradient sum.\n",
              options.gamma);
  return 0;
}
