// Example: the SQM pipeline opened up — every step of Algorithm 3 done
// manually with the library's building blocks, for users who want to embed
// the mechanism in their own protocol stack rather than call SqmEvaluator.
//
//   ./build/examples/custom_polynomial
//
// Steps shown: (1) coefficient quantization with per-degree compensation,
// (2) per-client data quantization, (3) local Skellam noise shares,
// (4) hand-built BGW circuit evaluation, (5) server post-processing,
// (6) RDP -> (eps, delta) accounting for both adversaries.

#include <cstdio>
#include "mpc/network.h"

#include "core/quantize.h"
#include "core/sensitivity.h"
#include "dp/rdp.h"
#include "dp/skellam.h"
#include "mpc/bgw.h"
#include "sampling/rng.h"
#include "sampling/skellam_sampler.h"

int main() {
  using namespace sqm;

  // The paper's running example: f(x) = x0^3 + 1.5 x1 x2 + 2 over three
  // clients, one attribute each.
  PolynomialVector f;
  Polynomial p;
  p.AddTerm(Monomial::Power(1.0, 0, 3));
  p.AddTerm(Monomial(1.5, {{1, 1}, {2, 1}}));
  p.AddTerm(Monomial(2.0));
  f.AddDimension(p);

  Matrix x{{0.31, -0.22, 0.40}, {0.12, 0.55, -0.37}, {-0.45, 0.08, 0.29}};
  const size_t num_clients = 3;
  const double gamma = 256.0;

  Rng rng(2024);

  // (1) Coefficient quantization: the constant 2 has degree 0, the cubic
  // term degree 3 -> scales gamma^4 and gamma^1 respectively, so that every
  // monomial is amplified by gamma^{lambda+1} = gamma^4.
  Rng coeff_rng = rng.Split(1);
  const QuantizedPolynomial qf =
      QuantizePolynomial(f, gamma, coeff_rng).ValueOrDie();
  std::printf("Quantized coefficients (output scale gamma^%u = %.3g):\n",
              qf.degree + 1, qf.output_scale);
  for (const QuantizedMonomial& qm : qf.dims[0]) {
    std::printf("  degree-%zu monomial -> %lld\n", [&] {
      size_t deg = 0;
      for (const auto& [var, e] : qm.exponents) deg += e;
      return deg;
    }(), static_cast<long long>(qm.coefficient));
  }

  // (2) Each client quantizes its own column (Algorithm 2).
  Rng data_rng = rng.Split(2);
  const QuantizedDatabase db = QuantizeDatabase(x, gamma, data_rng);

  // (3) Each client samples its Skellam noise share Sk(mu / n) *before*
  // the protocol starts (timing-attack robustness).
  const SensitivityBound sens = PolynomialSensitivity(f, gamma, 1.0, 2.0);
  const double mu =
      CalibrateSkellamMuSingleRelease(1.0, 1e-5, sens.l1, sens.l2)
          .ValueOrDie();
  const SkellamSampler share_sampler(mu / num_clients);
  std::vector<int64_t> noise_shares(num_clients);
  for (size_t j = 0; j < num_clients; ++j) {
    Rng client_rng = rng.Split(10 + j);
    noise_shares[j] = share_sampler.Sample(client_rng);
  }

  // (4) Build the BGW circuit by hand: inputs are each client's quantized
  // column plus its noise share; output is the noisy aggregate.
  Circuit circuit;
  std::vector<std::vector<Circuit::WireId>> col(3);
  std::vector<std::vector<int64_t>> inputs(num_clients);
  for (size_t j = 0; j < num_clients; ++j) {
    for (size_t i = 0; i < db.rows; ++i) {
      col[j].push_back(circuit.AddInput(j));
      inputs[j].push_back(db.at(i, j));
    }
  }
  std::vector<Circuit::WireId> noise_wires;
  for (size_t j = 0; j < num_clients; ++j) {
    noise_wires.push_back(circuit.AddInput(j));
    inputs[j].push_back(noise_shares[j]);
  }
  Circuit::WireId acc = circuit.AddConstant(0);
  for (size_t i = 0; i < db.rows; ++i) {
    // x0^3 term.
    Circuit::WireId cube =
        circuit.AddMul(circuit.AddMul(col[0][i], col[0][i]), col[0][i]);
    acc = circuit.AddAdd(
        acc, circuit.AddMulConst(cube,
                                 Field::Encode(qf.dims[0][0].coefficient)));
    // 1.5 x1 x2 term.
    Circuit::WireId cross = circuit.AddMul(col[1][i], col[2][i]);
    acc = circuit.AddAdd(
        acc, circuit.AddMulConst(cross,
                                 Field::Encode(qf.dims[0][1].coefficient)));
    // Constant term.
    acc = circuit.AddAdd(
        acc, circuit.AddConstant(Field::Encode(qf.dims[0][2].coefficient)));
  }
  for (Circuit::WireId w : noise_wires) acc = circuit.AddAdd(acc, w);
  circuit.MarkOutput(acc);
  std::printf("\nCircuit: %s\n", circuit.Summary().c_str());

  SimulatedNetwork network(num_clients, /*latency=*/0.1);
  BgwEngine engine(ShamirScheme(num_clients, 1), &network, 99);
  const std::vector<int64_t> raw =
      engine.Evaluate(circuit, inputs).ValueOrDie();

  // (5) Server post-processing: down-scale by gamma^{lambda+1}.
  const double estimate = static_cast<double>(raw[0]) / qf.output_scale;
  std::vector<std::vector<double>> rows;
  for (size_t i = 0; i < x.rows(); ++i) rows.push_back(x.Row(i));
  std::printf("Exact F(X) = %.6f, SQM release = %.6f\n",
              f.EvaluateSum(rows)[0], estimate);
  std::printf("Simulated protocol time: %.1f s over %llu rounds\n",
              network.SimulatedSeconds(),
              static_cast<unsigned long long>(network.stats().rounds));

  // (6) Accounting: RDP curves for both adversaries, converted to
  // (eps, delta).
  const auto server_curve = [&](double alpha) {
    return SkellamRdpServer(alpha, sens.l1, sens.l2, mu);
  };
  const auto client_curve = [&](double alpha) {
    return SkellamRdpClient(alpha, sens.l1, sens.l2, mu, num_clients);
  };
  std::printf("Server-observed epsilon at delta=1e-5: %.4f\n",
              BestEpsilonFromCurve(server_curve, DefaultAlphaGrid(), 1e-5));
  std::printf("Client-observed epsilon at delta=1e-5: %.4f (each client "
              "knows its own noise share)\n",
              BestEpsilonFromCurve(client_curve, DefaultAlphaGrid(), 1e-5));
  return 0;
}
