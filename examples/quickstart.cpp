// Quickstart: evaluate a polynomial over a vertically partitioned database
// with distributed differential privacy, end to end, in ~40 lines of user
// code.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// Scenario: three organizations each hold one attribute of the same user
// base (e.g. a search engine holds x0, a payment provider x1, a retailer
// x2). They want the server to learn F(X) = sum_x (x0 * x1 + 0.5 * x2^2)
// without any party seeing another's column and with the output protected
// by (epsilon, delta)-DP.

#include <cmath>
#include <cstdio>

#include "core/confidence.h"
#include "core/sqm.h"
#include "dp/skellam.h"
#include "sampling/rng.h"
#include "vfl/dataset.h"

int main() {
  using namespace sqm;

  // --- The function of interest: f(x) = x0*x1 + 0.5*x2^2 (degree 2).
  PolynomialVector f;
  Polynomial p;
  p.AddTerm(Monomial(1.0, {{0, 1}, {1, 1}}));
  p.AddTerm(Monomial::Power(0.5, 2, 2));
  f.AddDimension(p);

  // --- A toy database: 200 records, 3 attributes, ||x||_2 <= 1.
  Matrix x(200, 3);
  Rng rng(7);
  for (auto& v : x.data()) v = rng.NextDouble() - 0.5;
  NormalizeRecords(x, 1.0);

  // --- Exact value (for comparison only; never computed in production).
  std::vector<std::vector<double>> rows;
  for (size_t i = 0; i < x.rows(); ++i) rows.push_back(x.Row(i));
  const double exact = f.EvaluateSum(rows)[0];

  // --- Calibrate the total Skellam noise for (eps=1, delta=1e-5) using
  // the generic sensitivity bound of Lemma 4.
  const double gamma = 2048.0;
  const SensitivityBound sens = PolynomialSensitivity(f, gamma,
                                                      /*record_norm=*/1.0,
                                                      /*max_f_l2=*/1.0);
  const double mu =
      CalibrateSkellamMuSingleRelease(/*epsilon=*/1.0, /*delta=*/1e-5,
                                      sens.l1, sens.l2)
          .ValueOrDie();

  // --- Run SQM: each client quantizes its column (Algorithm 2), samples a
  // Sk(mu/3) noise share, and the three clients evaluate the quantized
  // polynomial with aggregate noise Sk(mu) through the BGW protocol.
  SqmOptions options;
  options.gamma = gamma;
  options.mu = mu;
  options.backend = MpcBackend::kBgw;  // Real MPC over a simulated network.
  options.max_f_l2 = 1.0;
  SqmEvaluator evaluator(options);
  const SqmReport report = evaluator.Evaluate(f, x).ValueOrDie();

  std::printf("Exact       F(X) = %.6f\n", exact);
  std::printf("SQM release F(X) = %.6f   (eps=1, delta=1e-5)\n",
              report.estimate[0]);
  const ReleaseInterval ci =
      SkellamReleaseInterval(report.estimate[0], mu,
                             std::pow(gamma, 3.0), 0.95)
          .ValueOrDie();
  std::printf("95%% noise interval: [%.4f, %.4f] (noise std %.4f)\n",
              ci.lower, ci.upper, ci.noise_std);
  std::printf("Noise parameter mu = %.3g; quantization gamma = %g\n", mu,
              gamma);
  std::printf("BGW traffic: %llu messages, %llu field elements, %llu "
              "rounds\n",
              static_cast<unsigned long long>(report.network.messages),
              static_cast<unsigned long long>(
                  report.network.field_elements),
              static_cast<unsigned long long>(report.network.rounds));
  std::printf("Client-observed RDP at alpha=8: tau = %.4g (server: "
              "%.4g)\n",
              SkellamRdpClient(8.0, sens.l1, sens.l2, mu, 3),
              SkellamRdpServer(8.0, sens.l1, sens.l2, mu));
  return 0;
}
