// sqm_cli: run the Skellam Quantization Mechanism on a CSV database from
// the command line — the "downstream user" entry point that needs no C++.
//
//   ./build/examples/sqm_cli --poly "x0*x1; x0^2" --data mydata.csv
//       --epsilon 1 --gamma 2048 --backend bgw
//
// Flags:
//   --poly "<dims>"     required; ';'-separated polynomial dimensions
//                       (grammar in poly/parser.h).
//   --data <path>       CSV of numeric features (header row assumed; use
//                       --no-header otherwise). Without it, a synthetic
//                       database is generated (--rows/--cols).
//   --epsilon/--delta   privacy target (default 1.0 / 1e-5).
//   --gamma <g>         quantization scale (default 2048).
//   --max-f <v>         upper bound on max ||f(x)||_2 over the unit ball
//                       (default 1.0; part of the sensitivity bound —
//                       choose honestly, it is a privacy parameter).
//   --backend bgw|plaintext  (default plaintext).
//   --transport inprocess|tcp  (default inprocess). tcp runs the release
//                       as one TcpTransport per party over loopback
//                       sockets — the sqm-party deployment path in a
//                       single process (implies bgw; synthetic data only,
//                       since networked parties derive their columns from
//                       the shared seed; see docs/DEPLOYMENT.md).
//   --no-noise          skip DP noise (utility debugging only).
//   --rows/--cols       synthetic database shape (default 200 x 3).
//   --seed <s>          RNG seed (default 42).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/party_sqm.h"
#include "core/sqm.h"
#include "dp/rdp.h"
#include "dp/skellam.h"
#include "net/tcp/party_config.h"
#include "net/tcp/socket.h"
#include "net/tcp/tcp_transport.h"
#include "poly/parser.h"
#include "sampling/gaussian_sampler.h"
#include "sampling/rng.h"
#include "vfl/csv.h"
#include "vfl/dataset.h"

namespace {

struct CliArgs {
  std::string poly;
  std::string data_path;
  bool has_header = true;
  double epsilon = 1.0;
  double delta = 1e-5;
  double gamma = 2048.0;
  double max_f = 1.0;
  bool use_bgw = false;
  bool use_tcp = false;
  bool no_noise = false;
  size_t rows = 200;
  size_t cols = 3;
  uint64_t seed = 42;
};

bool ParseFlag(int argc, char** argv, int& i, const char* name,
               std::string* out) {
  if (std::strcmp(argv[i], name) != 0) return false;
  if (i + 1 >= argc) {
    std::fprintf(stderr, "%s needs a value\n", name);
    std::exit(2);
  }
  *out = argv[++i];
  return true;
}

/// Runs every party of `config` as a thread over a real loopback TCP mesh
/// (pre-bound port-0 listeners, the coordinator's race-free handover) and
/// returns party 0's report after checking all parties released the same
/// values. The demo twin of a real deployment: swap threads for processes
/// and loopback for a network and you have sqm-party (docs/DEPLOYMENT.md).
sqm::Result<sqm::SqmReport> RunTcpMesh(sqm::DeploymentConfig config) {
  using sqm::net::ListenOn;
  using sqm::net::LocalPort;
  using sqm::net::Socket;
  if (!sqm::net::TcpSupported()) {
    return sqm::Status::Unimplemented(
        "--transport tcp needs POSIX sockets on this platform");
  }
  const size_t n = config.parties.size();
  std::vector<Socket> listeners;
  for (size_t i = 0; i < n; ++i) {
    sqm::Result<Socket> listener = ListenOn("127.0.0.1", 0);
    if (!listener.ok()) return listener.status();
    sqm::Result<uint16_t> port = LocalPort(listener.ValueOrDie());
    if (!port.ok()) return port.status();
    config.parties[i].port = port.ValueOrDie();
    listeners.push_back(std::move(listener.ValueOrDie()));
  }

  std::vector<sqm::SqmReport> reports(n);
  std::vector<std::string> errors(n);
  std::vector<std::thread> threads;
  for (size_t i = 0; i < n; ++i) {
    const int fd = listeners[i].Release();
    threads.emplace_back([&, i, fd] {
      sqm::Result<std::unique_ptr<sqm::TcpTransport>> transport =
          sqm::TcpTransport::Create(
              sqm::TcpOptionsFromDeployment(config, i, fd));
      if (!transport.ok()) {
        errors[i] = transport.status().ToString();
        return;
      }
      sqm::Result<sqm::SqmReport> report =
          sqm::RunPartySqm(config, i, transport.ValueOrDie().get());
      transport.ValueOrDie()->Shutdown();
      if (!report.ok()) {
        errors[i] = report.status().ToString();
      } else {
        reports[i] = report.ValueOrDie();
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (size_t i = 0; i < n; ++i) {
    if (!errors[i].empty()) {
      return sqm::Status::Internal("party " + std::to_string(i) + ": " +
                                   errors[i]);
    }
    if (reports[i].raw != reports[0].raw) {
      return sqm::Status::IntegrityViolation(
          "party " + std::to_string(i) + " released different values");
    }
  }
  return reports[0];
}

int Usage() {
  std::fprintf(stderr,
               "usage: sqm_cli --poly \"<dims>\" [--data file.csv] "
               "[--epsilon E] [--delta D] [--gamma G] [--max-f V] "
               "[--backend bgw|plaintext] [--transport inprocess|tcp] "
               "[--no-noise] [--no-header] [--rows M] [--cols N] "
               "[--seed S]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sqm;
  CliArgs args;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (ParseFlag(argc, argv, i, "--poly", &value)) {
      args.poly = value;
    } else if (ParseFlag(argc, argv, i, "--data", &value)) {
      args.data_path = value;
    } else if (ParseFlag(argc, argv, i, "--epsilon", &value)) {
      args.epsilon = std::atof(value.c_str());
    } else if (ParseFlag(argc, argv, i, "--delta", &value)) {
      args.delta = std::atof(value.c_str());
    } else if (ParseFlag(argc, argv, i, "--gamma", &value)) {
      args.gamma = std::atof(value.c_str());
    } else if (ParseFlag(argc, argv, i, "--max-f", &value)) {
      args.max_f = std::atof(value.c_str());
    } else if (ParseFlag(argc, argv, i, "--backend", &value)) {
      args.use_bgw = value == "bgw";
    } else if (ParseFlag(argc, argv, i, "--transport", &value)) {
      if (value == "tcp") {
        args.use_tcp = true;
        args.use_bgw = true;  // TCP parties run BGW by construction.
      } else if (value != "inprocess") {
        std::fprintf(stderr, "unknown transport '%s'\n", value.c_str());
        return Usage();
      }
    } else if (ParseFlag(argc, argv, i, "--rows", &value)) {
      args.rows = static_cast<size_t>(std::atoll(value.c_str()));
    } else if (ParseFlag(argc, argv, i, "--cols", &value)) {
      args.cols = static_cast<size_t>(std::atoll(value.c_str()));
    } else if (ParseFlag(argc, argv, i, "--seed", &value)) {
      args.seed = static_cast<uint64_t>(std::atoll(value.c_str()));
    } else if (std::strcmp(argv[i], "--no-noise") == 0) {
      args.no_noise = true;
    } else if (std::strcmp(argv[i], "--no-header") == 0) {
      args.has_header = false;
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", argv[i]);
      return Usage();
    }
  }
  if (args.poly.empty()) return Usage();

  // --- Function of interest.
  auto parsed = ParsePolynomialVector(args.poly);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
    return 1;
  }
  const PolynomialVector f = std::move(parsed).ValueOrDie();

  if (args.use_tcp && !args.data_path.empty()) {
    std::fprintf(stderr,
                 "--transport tcp is incompatible with --data: networked "
                 "parties derive their columns from the shared seed\n");
    return 2;
  }
  if (args.use_tcp && args.cols < 3) {
    std::fprintf(stderr,
                 "--transport tcp needs --cols >= 3 (one party per "
                 "attribute; BGW multiplication needs n >= 2t+1 with "
                 "t >= 1)\n");
    return 2;
  }

  // --- Database.
  Matrix x;
  if (args.use_tcp) {
    // The deployment generator: each party will re-derive exactly these
    // columns from (rows, cols, data_seed) on its own machine.
    x = GenerateDeploymentMatrix(args.rows, args.cols,
                                 args.seed ^ 0xda7a5eedull);
  } else if (!args.data_path.empty()) {
    CsvOptions csv;
    csv.has_header = args.has_header;
    auto loaded = LoadCsvDataset(args.data_path, csv);
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
      return 1;
    }
    x = std::move(loaded).ValueOrDie().features;
  } else {
    x = Matrix(args.rows, args.cols);
    Rng rng(args.seed ^ 0xdada);
    GaussianSampler gaussian(0.5);
    for (auto& v : x.data()) v = gaussian.Sample(rng);
  }
  NormalizeRecords(x, 1.0);
  std::printf("database: %zu records x %zu attributes (normalized to "
              "||x||<=1)\n",
              x.rows(), x.cols());
  std::printf("function: dims=%zu degree=%u\n", f.output_dim(), f.Degree());

  // --- Calibration.
  double mu = 0.0;
  SensitivityBound sens{};
  if (!args.no_noise) {
    sens = PolynomialSensitivity(f, args.gamma, 1.0, args.max_f);
    auto calibrated = CalibrateSkellamMuSingleRelease(
        args.epsilon, args.delta, sens.l1, sens.l2);
    if (!calibrated.ok()) {
      std::fprintf(stderr, "%s\n",
                   calibrated.status().ToString().c_str());
      return 1;
    }
    mu = calibrated.ValueOrDie();
  }

  // --- Run.
  SqmReport report;
  if (args.use_tcp) {
    DeploymentConfig deployment;
    deployment.run_id = args.seed;
    deployment.session_key = args.seed ^ 0x5e55u;
    deployment.parties.assign(x.cols(), {"127.0.0.1", 0});
    deployment.rows = x.rows();
    deployment.cols = x.cols();
    deployment.data_seed = args.seed ^ 0xda7a5eedull;
    deployment.polynomial = args.poly;
    deployment.gamma = args.gamma;
    deployment.mu = mu;
    deployment.seed = args.seed;
    deployment.dp_delta = args.delta;
    deployment.max_f_l2 = args.max_f;
    std::printf("transport: tcp — %zu parties on loopback sockets\n",
                x.cols());
    auto run = RunTcpMesh(deployment);
    if (!run.ok()) {
      std::fprintf(stderr, "%s\n", run.status().ToString().c_str());
      return 1;
    }
    report = std::move(run).ValueOrDie();
    std::printf("all %zu parties released bit-identical values\n", x.cols());
  } else {
    SqmOptions options;
    options.gamma = args.gamma;
    options.mu = mu;
    options.backend =
        args.use_bgw ? MpcBackend::kBgw : MpcBackend::kPlaintext;
    options.seed = args.seed;
    options.max_f_l2 = args.max_f;
    SqmEvaluator evaluator(options);
    auto run = evaluator.Evaluate(f, x);
    if (!run.ok()) {
      std::fprintf(stderr, "%s\n", run.status().ToString().c_str());
      return 1;
    }
    report = std::move(run).ValueOrDie();
  }

  std::printf("\nrelease (gamma=%g, mu=%.4g, backend=%s):\n", args.gamma,
              mu,
              args.use_tcp ? "bgw/tcp"
                           : (args.use_bgw ? "bgw" : "plaintext"));
  for (size_t t = 0; t < report.estimate.size(); ++t) {
    std::printf("  F[%zu] = %.8g\n", t, report.estimate[t]);
  }
  if (!args.no_noise) {
    const auto curve = [&](double alpha) {
      return SkellamRdpServer(alpha, sens.l1, sens.l2, mu);
    };
    std::printf("\nprivacy: (%.4g, %.1e)-DP server-observed (requested "
                "%.4g)\n",
                BestEpsilonFromCurve(curve, DefaultAlphaGrid(), args.delta),
                args.delta, args.epsilon);
  } else {
    std::printf("\nWARNING: --no-noise set, the release is NOT private.\n");
  }
  if (args.use_bgw) {
    std::printf("bgw: %llu messages, %llu field elements, %llu rounds\n",
                static_cast<unsigned long long>(report.network.messages),
                static_cast<unsigned long long>(
                    report.network.field_elements),
                static_cast<unsigned long long>(report.network.rounds));
  }
  return 0;
}
