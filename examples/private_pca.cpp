// Example: differentially private PCA over vertically partitioned data
// (the paper's Section V-A), comparing the four mechanisms the library
// ships on one dataset.
//
//   ./build/examples/private_pca [path/to/data.csv]
//
// Without an argument the example generates a KDDCUP-shaped synthetic
// dataset; with one it loads a numeric CSV (header row, no label column)
// so the paper's real datasets can be dropped in.

#include <cstdio>

#include "vfl/csv.h"
#include "vfl/pca.h"
#include "vfl/synthetic.h"

int main(int argc, char** argv) {
  using namespace sqm;

  VflDataset data;
  if (argc > 1) {
    auto loaded = LoadCsvDataset(argv[1]);
    if (!loaded.ok()) {
      std::fprintf(stderr, "failed to load %s: %s\n", argv[1],
                   loaded.status().ToString().c_str());
      return 1;
    }
    data = std::move(loaded).ValueOrDie();
  } else {
    data = MakeKddCupLike(/*scale=*/0.005);
  }
  std::printf("Dataset %s: %zu records x %zu attributes\n",
              data.name.c_str(), data.num_records(), data.num_features());

  PcaOptions options;
  options.k = 5;
  options.epsilon = 2.0;
  options.delta = 1e-5;
  options.gamma = 8192.0;

  const PcaResult exact =
      NonPrivatePca(data.features, options.k).ValueOrDie();
  const PcaResult central = CentralDpPca(data.features, options).ValueOrDie();
  const PcaResult sqm_result = SqmPca(data.features, options).ValueOrDie();
  const PcaResult local = LocalDpPca(data.features, options).ValueOrDie();

  std::printf("\nUtility ||X V||_F^2 of the rank-%zu subspace at "
              "(eps=%.2g, delta=%.0e):\n",
              options.k, options.epsilon, options.delta);
  std::printf("  %-28s %10.4f  (ceiling)\n", "Non-private PCA",
              exact.utility);
  std::printf("  %-28s %10.4f  (sigma=%.3g)\n",
              "Central DP (Analyze-Gauss)", central.utility, central.sigma);
  std::printf("  %-28s %10.4f  (mu=%.3g, gamma=%g)\n",
              "SQM (this paper, VFL)", sqm_result.utility, sqm_result.mu,
              options.gamma);
  std::printf("  %-28s %10.4f  (sigma=%.3g)\n", "Local-DP baseline",
              local.utility, local.sigma);

  std::printf("\nSQM timing: quantize %.4fs, noise %.4fs, compute %.4fs\n",
              sqm_result.timing.quantize_seconds,
              sqm_result.timing.noise_sampling_seconds,
              sqm_result.timing.mpc_compute_seconds);
  std::printf("\nTakeaway: SQM should land within a few percent of the "
              "central mechanism while the local-DP baseline trails far "
              "behind — without any trusted party.\n");
  return 0;
}
